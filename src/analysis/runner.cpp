#include "analysis/runner.hpp"

#include "obs/flow_trace.hpp"

namespace ipd::analysis {

BinnedRunner::BinnedRunner(core::EngineBase& engine, ValidationRun* validation,
                           RunnerConfig config)
    : engine_(engine), validation_(validation), config_(config) {
  pending_.reserve(config_.ingest_batch);
  // The replay loop is this pipeline's "datagram decode": there is no
  // collector in front to tag sampled flows, so have the engine
  // synthesize the Decode hop as records enter stage 1 — journeys still
  // begin with a decode hop, at no extra hash on the unsampled hot path.
  engine.set_flow_trace_synth_decode(true);
}

std::uint64_t BinnedRunner::bin_buffer_bytes() const noexcept {
  return bin_buffer_.capacity() * sizeof(netflow::FlowRecord) +
         pending_.memory_bytes();
}

void BinnedRunner::flush_pending() {
  if (pending_.empty()) return;
  engine_.apply_batch(pending_);
  pending_.clear();
}

void BinnedRunner::run_one_cycle(util::Timestamp ts) {
  flush_pending();
  // Close the stage-1 batch span before stage 2 runs: one span per cycle's
  // worth of ingest, never one per flow.
  if (obs::Tracer* tracer = engine_.tracer(); tracer && batch_flows_ > 0) {
    tracer->span("stage1.batch", batch_start_us_,
                 tracer->now_us() - batch_start_us_,
                 {{"flows", static_cast<double>(batch_flows_)}});
    batch_flows_ = 0;
  }
  auto stats = engine_.run_cycle(ts);
  // The validation bin buffer is part of the deployment loop's working set;
  // count it so Fig.-20-style memory numbers are honest.
  stats.memory_bytes += bin_buffer_bytes();
  if (config_.keep_cycle_stats) cycles_.push_back(stats);
}

void BinnedRunner::advance_to(util::Timestamp ts) {
  const util::Duration t = engine_.params().t;
  if (!started_) {
    next_cycle_ = util::bucket_start(ts, t) + t;
    next_snapshot_ = util::bucket_start(ts, config_.snapshot_len) +
                     config_.snapshot_len;
    started_ = true;
    return;
  }
  while (next_cycle_ <= ts || next_snapshot_ <= ts) {
    if (next_cycle_ <= next_snapshot_) {
      run_one_cycle(next_cycle_);
      next_cycle_ += t;
    } else {
      take_snapshot(next_snapshot_);
      next_snapshot_ += config_.snapshot_len;
    }
  }
}

void BinnedRunner::take_snapshot(util::Timestamp ts) {
  obs::SpanTimer span(engine_.tracer(), "snapshot");
  const core::Snapshot snapshot = core::take_snapshot(engine_, ts);
  const core::LpmTable table = core::LpmTable::from_snapshot(snapshot);
  span.set_args({{"ranges", static_cast<double>(snapshot.size())}});
  if (validation_) {
    for (const auto& record : bin_buffer_) validation_->observe(table, record);
  }
  bin_buffer_.clear();
  if (on_snapshot) on_snapshot(ts, snapshot, table);
  ++snapshots_;
  if (obs::MetricsRegistry* registry = engine_.metrics_registry()) {
    // Data-time freshness at the publish boundary: how far the newest
    // offered record has run ahead of the table just published. Wall-clock
    // lag is meaningless in replay (timestamps are simulated), so the
    // gauge is defined in data time on both the collector and this path.
    registry
        ->gauge("ipd_freshness_seconds",
                "Pipeline freshness in data time: newest decoded flow "
                "timestamp minus the data time of the last published LPM "
                "table")
        .set(static_cast<double>(newest_ts_ > ts ? newest_ts_ - ts : 0));
    registry
        ->gauge("ipd_runner_bin_buffer_bytes",
                "Heap held by the runner's per-bin validation buffer")
        .set(static_cast<double>(bin_buffer_bytes()));
    registry
        ->counter("ipd_runner_snapshots_total",
                  "Snapshots (5-minute output bins) taken")
        .inc();
    // Per-bin validation accuracy (last *closed* bin — the current bin
    // stays open until its successor's first record arrives). Feeds the
    // health engine's accuracy-regression rule via the TSDB.
    if (validation_ != nullptr && !validation_->bins().empty()) {
      const auto& bin = validation_->bins().back();
      registry
          ->gauge("ipd_validation_accuracy",
                  "Share of validated flows mapped to the correct ingress "
                  "(last closed bin, ALL ASes)")
          .set(bin.all.accuracy());
      registry
          ->gauge("ipd_validation_miss_rate",
                  "Share of validated flows mapped incorrectly or unmapped "
                  "(last closed bin, ALL ASes)")
          .set(bin.all.total ? 1.0 - bin.all.accuracy() : 0.0);
    }
    if (on_metrics) on_metrics(ts, *registry);
  }
}

void BinnedRunner::offer(const netflow::FlowRecord& record) {
  // Boundary crossings flush the pending batch first (every buffered
  // record predates the boundary), so cycles fire over exactly the same
  // ingest state as per-record operation — the original tie-break (cycle
  // before the boundary-crossing record) is preserved.
  if (!started_ || record.ts >= next_cycle_ || record.ts >= next_snapshot_) {
    flush_pending();
    advance_to(record.ts);
  }
  if (record.ts > newest_ts_) newest_ts_ = record.ts;
  resumed_idle_ = false;
  if (engine_.tracer() != nullptr && batch_flows_++ == 0) {
    batch_start_us_ = engine_.tracer()->now_us();
  }
  pending_.push_back(record);
  if (pending_.size() >= config_.ingest_batch) flush_pending();
  if (validation_) bin_buffer_.push_back(record);
}

void BinnedRunner::finish() {
  if (!started_) return;
  // A resumed runner that ingested nothing must leave the engine exactly
  // as the snapshot left it: the donor already ran the trailing cycle
  // before that snapshot was cut, so running another here would
  // synthesize a cycle the donor never saw (restore-at-end-of-trace).
  if (resumed_idle_) return;
  flush_pending();
  // Run the trailing cycle and snapshot so the last bin is validated.
  run_one_cycle(next_cycle_);
  // Keep the "next un-run cycle" invariant so a snapshot_clock() taken in
  // the final on_snapshot still describes a valid continuation point.
  next_cycle_ += engine_.params().t;
  take_snapshot(next_snapshot_);
  if (validation_) validation_->finish();
}

}  // namespace ipd::analysis
