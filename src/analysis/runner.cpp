#include "analysis/runner.hpp"

namespace ipd::analysis {

BinnedRunner::BinnedRunner(core::IpdEngine& engine, ValidationRun* validation,
                           RunnerConfig config)
    : engine_(engine), validation_(validation), config_(config) {}

void BinnedRunner::advance_to(util::Timestamp ts) {
  const util::Duration t = engine_.params().t;
  if (!started_) {
    next_cycle_ = util::bucket_start(ts, t) + t;
    next_snapshot_ = util::bucket_start(ts, config_.snapshot_len) +
                     config_.snapshot_len;
    started_ = true;
    return;
  }
  while (next_cycle_ <= ts || next_snapshot_ <= ts) {
    if (next_cycle_ <= next_snapshot_) {
      const auto stats = engine_.run_cycle(next_cycle_);
      if (config_.keep_cycle_stats) cycles_.push_back(stats);
      next_cycle_ += t;
    } else {
      take_snapshot(next_snapshot_);
      next_snapshot_ += config_.snapshot_len;
    }
  }
}

void BinnedRunner::take_snapshot(util::Timestamp ts) {
  const core::Snapshot snapshot = core::take_snapshot(engine_, ts);
  const core::LpmTable table = core::LpmTable::from_snapshot(snapshot);
  if (validation_) {
    for (const auto& record : bin_buffer_) validation_->observe(table, record);
  }
  bin_buffer_.clear();
  if (on_snapshot) on_snapshot(ts, snapshot, table);
  ++snapshots_;
}

void BinnedRunner::offer(const netflow::FlowRecord& record) {
  advance_to(record.ts);
  engine_.ingest(record);
  if (validation_) bin_buffer_.push_back(record);
}

void BinnedRunner::finish() {
  if (!started_) return;
  // Run the trailing cycle and snapshot so the last bin is validated.
  const auto stats = engine_.run_cycle(next_cycle_);
  if (config_.keep_cycle_stats) cycles_.push_back(stats);
  take_snapshot(next_snapshot_);
  if (validation_) validation_->finish();
}

}  // namespace ipd::analysis
