// Router-level load-balancing detection — the paper's future-work
// extension (§5.8, §7).
//
// IPD deliberately does not classify prefixes whose traffic a neighbor
// balances over two routers ("we have intentionally not considered
// router-level load balancing"); in the deployment such a case surfaced
// once and caused unclassifiable prefixes. The paper suggests handling it
// in future work. This detector provides the diagnostic half of that
// extension without the quadratic (src, dst) state the paper warns about:
// it scans snapshot rows for ranges whose per-ingress breakdown shows a
// persistent near-even split across exactly two routers, so an operator
// can see *why* a range stays unclassified and talk to the neighbor.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/output.hpp"
#include "net/prefix.hpp"
#include "topology/ids.hpp"

namespace ipd::analysis {

struct LbCandidate {
  net::Prefix range;
  topology::RouterId router_a = 0;
  topology::RouterId router_b = 0;
  double share_a = 0.0;
  double share_b = 0.0;
  double samples = 0.0;
  /// Snapshots in a row this range has looked balanced (filled by
  /// LbDetector; single-snapshot scans leave it at 1).
  int persistence = 1;
};

struct LbDetectConfig {
  double min_samples = 50.0;         // ignore thin ranges
  double balance_tolerance = 0.15;   // | share_a - share_b | limit
  double min_combined_share = 0.85;  // the two routers must dominate
  int min_persistence = 3;           // snapshots in a row (LbDetector)
};

/// One-shot scan of a snapshot for balanced two-router ranges.
std::vector<LbCandidate> scan_router_lb(const core::Snapshot& snapshot,
                                        const LbDetectConfig& config = {});

/// Stateful detector: feed successive snapshots; ranges that look balanced
/// for `min_persistence` consecutive snapshots become confirmed findings
/// (filters out transient ingress shifts mid-classification).
class LbDetector {
 public:
  explicit LbDetector(LbDetectConfig config = {}) : config_(config) {}

  void observe(const core::Snapshot& snapshot);

  /// Currently confirmed candidates (persistence >= min_persistence).
  std::vector<LbCandidate> confirmed() const;

  std::size_t tracked() const noexcept { return streaks_.size(); }

 private:
  LbDetectConfig config_;
  struct Streak {
    LbCandidate last;
    int count = 0;
    bool seen_this_round = false;
  };
  std::unordered_map<net::Prefix, Streak, net::PrefixHash> streaks_;
};

}  // namespace ipd::analysis
