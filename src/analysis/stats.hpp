// Statistics toolkit for the evaluation harness.
//
// Provides the machinery the paper's evaluation relies on: empirical CDFs,
// Pearson correlation (flow/byte correlation, miss/traffic correlation),
// the Kolmogorov-Smirnov distance against fitted reference distributions
// (Appendix A stability metric), and one-way ANOVA (Appendix A factor
// screening).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ipd::analysis {

/// Empirical distribution of a sample set.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const noexcept { return mean_; }
  double stddev() const noexcept;

  /// P(X <= x).
  double fraction_below(double x) const noexcept;

  /// Inverse: smallest sample s with P(X <= s) >= q, q in [0,1].
  double quantile(double q) const;

  /// (x, F(x)) pairs at `points` evenly spaced quantiles, for plotting.
  std::vector<std::pair<double, double>> curve(int points = 100) const;

  const std::vector<double>& sorted_samples() const noexcept { return samples_; }

 private:
  std::vector<double> samples_;  // sorted
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations
};

/// Pearson correlation coefficient; returns 0 for degenerate inputs.
double pearson(std::span<const double> x, std::span<const double> y) noexcept;

/// Reference distributions for KS fitting.
enum class DistFamily { Normal, LogNormal, Weibull, Pareto };

const char* to_string(DistFamily family) noexcept;

struct FittedDist {
  DistFamily family = DistFamily::Normal;
  double p1 = 0.0;  // mu / mu-of-log / shape k / scale xm
  double p2 = 1.0;  // sigma / sigma-of-log / scale lambda / shape alpha

  /// CDF value at x.
  double cdf(double x) const noexcept;
};

/// Moment/quantile-based fit of `family` to the samples.
FittedDist fit(DistFamily family, const Cdf& samples);

/// Kolmogorov-Smirnov distance between the empirical CDF and `dist`.
double ks_distance(const Cdf& samples, const FittedDist& dist) noexcept;

/// Fit all four families and return the smallest KS distance
/// (the Appendix-A "distance to the ideal stability distribution").
double best_fit_ks(const Cdf& samples);

/// One-way ANOVA across groups of observations.
struct AnovaResult {
  double f_statistic = 0.0;
  double p_value = 1.0;
  double between_ss = 0.0;
  double within_ss = 0.0;
  std::size_t df_between = 0;
  std::size_t df_within = 0;
  bool significant(double alpha = 0.05) const noexcept { return p_value < alpha; }
};

AnovaResult one_way_anova(const std::vector<std::vector<double>>& groups);

/// Regularized incomplete beta function I_x(a, b) (for the F distribution).
double incomplete_beta(double a, double b, double x) noexcept;

}  // namespace ipd::analysis
