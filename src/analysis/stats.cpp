#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ipd::analysis {

Cdf::Cdf(std::vector<double> samples) : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
  // Welford over the sorted data (order does not matter).
  double mean = 0.0, m2 = 0.0;
  std::size_t n = 0;
  for (const double x : samples_) {
    ++n;
    const double d = x - mean;
    mean += d / static_cast<double>(n);
    m2 += d * (x - mean);
  }
  mean_ = mean;
  m2_ = m2;
}

double Cdf::min() const {
  if (samples_.empty()) throw std::logic_error("Cdf::min on empty set");
  return samples_.front();
}

double Cdf::max() const {
  if (samples_.empty()) throw std::logic_error("Cdf::max on empty set");
  return samples_.back();
}

double Cdf::stddev() const noexcept {
  return samples_.size() > 1
             ? std::sqrt(m2_ / static_cast<double>(samples_.size() - 1))
             : 0.0;
}

double Cdf::fraction_below(double x) const noexcept {
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(std::distance(samples_.begin(), it)) /
         static_cast<double>(samples_.size());
}

double Cdf::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("Cdf::quantile on empty set");
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())) - 1);
  return samples_[std::min(idx, samples_.size() - 1)];
}

std::vector<std::pair<double, double>> Cdf::curve(int points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points <= 0) return out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 1; i <= points; ++i) {
    const double q = static_cast<double>(i) / points;
    out.emplace_back(quantile(q), q);
  }
  return out;
}

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

const char* to_string(DistFamily family) noexcept {
  switch (family) {
    case DistFamily::Normal: return "normal";
    case DistFamily::LogNormal: return "lognormal";
    case DistFamily::Weibull: return "weibull";
    case DistFamily::Pareto: return "pareto";
  }
  return "?";
}

namespace {
double normal_cdf(double z) noexcept { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
}  // namespace

double FittedDist::cdf(double x) const noexcept {
  switch (family) {
    case DistFamily::Normal:
      return p2 > 0.0 ? normal_cdf((x - p1) / p2) : (x >= p1 ? 1.0 : 0.0);
    case DistFamily::LogNormal:
      if (x <= 0.0) return 0.0;
      return p2 > 0.0 ? normal_cdf((std::log(x) - p1) / p2)
                      : (std::log(x) >= p1 ? 1.0 : 0.0);
    case DistFamily::Weibull:
      if (x <= 0.0) return 0.0;
      return 1.0 - std::exp(-std::pow(x / p2, p1));
    case DistFamily::Pareto:
      if (x <= p1) return 0.0;
      return 1.0 - std::pow(p1 / x, p2);
  }
  return 0.0;
}

FittedDist fit(DistFamily family, const Cdf& samples) {
  if (samples.empty()) throw std::invalid_argument("fit: empty sample set");
  FittedDist d;
  d.family = family;
  switch (family) {
    case DistFamily::Normal:
      d.p1 = samples.mean();
      d.p2 = std::max(samples.stddev(), 1e-12);
      break;
    case DistFamily::LogNormal: {
      double sum = 0.0, sum2 = 0.0;
      std::size_t n = 0;
      for (const double x : samples.sorted_samples()) {
        if (x <= 0.0) continue;
        const double lx = std::log(x);
        sum += lx;
        sum2 += lx * lx;
        ++n;
      }
      if (n == 0) throw std::invalid_argument("fit lognormal: no positive samples");
      d.p1 = sum / static_cast<double>(n);
      const double var = sum2 / static_cast<double>(n) - d.p1 * d.p1;
      d.p2 = std::sqrt(std::max(var, 1e-12));
      break;
    }
    case DistFamily::Weibull: {
      // Quantile matching at 30 % / 90 %: closed form for shape and scale.
      const double q30 = std::max(samples.quantile(0.30), 1e-12);
      const double q90 = std::max(samples.quantile(0.90), q30 * (1.0 + 1e-9));
      const double num = std::log(-std::log(1.0 - 0.90)) -
                         std::log(-std::log(1.0 - 0.30));
      d.p1 = std::max(num / (std::log(q90) - std::log(q30)), 1e-3);  // shape k
      d.p2 = q90 / std::pow(-std::log(1.0 - 0.90), 1.0 / d.p1);      // scale
      break;
    }
    case DistFamily::Pareto: {
      double xm = samples.min();
      if (xm <= 0.0) xm = 1e-12;
      double sum_log = 0.0;
      std::size_t n = 0;
      for (const double x : samples.sorted_samples()) {
        if (x < xm) continue;
        sum_log += std::log(std::max(x, xm) / xm);
        ++n;
      }
      d.p1 = xm;
      d.p2 = sum_log > 0.0 ? static_cast<double>(n) / sum_log : 100.0;  // alpha
      break;
    }
  }
  return d;
}

double ks_distance(const Cdf& samples, const FittedDist& dist) noexcept {
  const auto& xs = samples.sorted_samples();
  if (xs.empty()) return 1.0;
  const auto n = static_cast<double>(xs.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double model = dist.cdf(xs[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    worst = std::max(worst, std::max(std::abs(model - lo), std::abs(model - hi)));
  }
  return worst;
}

double best_fit_ks(const Cdf& samples) {
  double best = 1.0;
  for (const auto family : {DistFamily::Normal, DistFamily::LogNormal,
                            DistFamily::Weibull, DistFamily::Pareto}) {
    try {
      best = std::min(best, ks_distance(samples, fit(family, samples)));
    } catch (const std::invalid_argument&) {
      // family not fittable to this sample set (e.g. non-positive data)
    }
  }
  return best;
}

double incomplete_beta(double a, double b, double x) noexcept {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  // Continued fraction (Lentz); use the symmetry relation for convergence.
  const double ln_beta = std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
  const double front = std::exp(std::log(x) * a + std::log1p(-x) * b - ln_beta) / a;
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - incomplete_beta(b, a, 1.0 - x);
  }
  double f = 1.0, c = 1.0, d = 0.0;
  for (int i = 0; i <= 300; ++i) {
    const int m = i / 2;
    double numerator;
    if (i == 0) {
      numerator = 1.0;
    } else if (i % 2 == 0) {
      numerator = (m * (b - m) * x) / ((a + 2.0 * m - 1.0) * (a + 2.0 * m));
    } else {
      numerator = -((a + m) * (a + b + m) * x) /
                  ((a + 2.0 * m) * (a + 2.0 * m + 1.0));
    }
    d = 1.0 + numerator * d;
    if (std::abs(d) < 1e-30) d = 1e-30;
    d = 1.0 / d;
    c = 1.0 + numerator / c;
    if (std::abs(c) < 1e-30) c = 1e-30;
    const double delta = c * d;
    f *= delta;
    if (std::abs(1.0 - delta) < 1e-10) break;
  }
  return front * (f - 1.0);
}

AnovaResult one_way_anova(const std::vector<std::vector<double>>& groups) {
  AnovaResult result;
  std::size_t total_n = 0;
  double grand_sum = 0.0;
  std::size_t k = 0;
  for (const auto& g : groups) {
    if (g.empty()) continue;
    ++k;
    total_n += g.size();
    for (const double x : g) grand_sum += x;
  }
  if (k < 2 || total_n <= k) return result;
  const double grand_mean = grand_sum / static_cast<double>(total_n);

  double ss_between = 0.0, ss_within = 0.0;
  for (const auto& g : groups) {
    if (g.empty()) continue;
    double sum = 0.0;
    for (const double x : g) sum += x;
    const double mean = sum / static_cast<double>(g.size());
    ss_between += static_cast<double>(g.size()) * (mean - grand_mean) *
                  (mean - grand_mean);
    for (const double x : g) ss_within += (x - mean) * (x - mean);
  }
  result.between_ss = ss_between;
  result.within_ss = ss_within;
  result.df_between = k - 1;
  result.df_within = total_n - k;
  if (ss_within <= 0.0) {
    result.f_statistic = ss_between > 0.0 ? 1e12 : 0.0;
    result.p_value = ss_between > 0.0 ? 0.0 : 1.0;
    return result;
  }
  const double ms_between = ss_between / static_cast<double>(result.df_between);
  const double ms_within = ss_within / static_cast<double>(result.df_within);
  result.f_statistic = ms_between / ms_within;
  // p = P(F > f) via the incomplete beta function.
  const double d1 = static_cast<double>(result.df_between);
  const double d2 = static_cast<double>(result.df_within);
  const double x = d2 / (d2 + d1 * result.f_statistic);
  result.p_value = incomplete_beta(d2 / 2.0, d1 / 2.0, x);
  return result;
}

}  // namespace ipd::analysis
