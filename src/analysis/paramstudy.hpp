// Appendix-A parameter study driver: evaluates IPD parameter sets against a
// shared captured trace using the paper's three metrics — accuracy,
// stability duration (KS distance to the best-fitting reference
// distribution), and resource consumption (cycle runtime, memory).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/params.hpp"
#include "netflow/flow_record.hpp"
#include "topology/topology.hpp"
#include "workload/universe.hpp"

namespace ipd::analysis {

struct ParamStudyMetrics {
  core::IpdParams params;
  double accuracy_all = 0.0;    // mean per-bin flow accuracy (ALL)
  double accuracy_top5 = 0.0;
  double ks_distance = 1.0;     // stability-CDF distance to best fit
  double mean_stability_s = 0.0;
  double mean_cycle_ms = 0.0;
  double p95_cycle_ms = 0.0;    // from the cycle-time histogram
  // Mean stage-2 wall time per phase, indexed by core::CyclePhase.
  std::array<double, core::kNumCyclePhases> mean_phase_ms{};
  double peak_memory_mb = 0.0;  // tries + metrics registry + bin buffer
  double mean_ranges = 0.0;     // average partition size
  std::uint64_t final_classified = 0;
};

/// Run one parameter set over a captured trace (records must be in time
/// order; the same trace is reused for every set, like the paper's 25-hour
/// capture). The first `accuracy_skip_bins` 5-minute bins are excluded
/// from the accuracy averages (cold-start: the top-down partition deepens
/// one level per cycle).
ParamStudyMetrics evaluate_params(const std::vector<netflow::FlowRecord>& trace,
                                  const topology::Topology& topo,
                                  const workload::Universe& universe,
                                  const core::IpdParams& params,
                                  std::size_t accuracy_skip_bins = 0);

/// Full factorial expansion over the Table-2 levels. v4/v6 levels are tied
/// index-wise (the paper's "conditional parameter setting" to avoid
/// confounding) — both factor lists must have equal length, likewise the
/// cidr_max lists.
std::vector<core::IpdParams> factorial_design(
    const std::vector<double>& q_levels,
    const std::vector<double>& ncidr4_levels,
    const std::vector<double>& ncidr6_levels,
    const std::vector<int>& cidrmax4_levels,
    const std::vector<int>& cidrmax6_levels);

/// The paper's Table-2 levels (bench-scaled n_cidr factors: the deployment
/// factors 32..80 assume 32M flows/min; we scale by the trace volume while
/// keeping the 4-level spread). `ncidr_floor` guards against single-sample
/// classifications at simulation scale (0 = paper-faithful).
std::vector<core::IpdParams> table2_design(double factor_scale = 1.0,
                                           double ncidr_floor = 0.0);

/// Group metric values by the level of one factor (for effect plots and
/// ANOVA). `factor_of` extracts the factor level from a parameter set.
std::vector<std::vector<double>> group_by_factor(
    const std::vector<ParamStudyMetrics>& results,
    const std::function<double(const core::IpdParams&)>& factor_of,
    const std::function<double(const ParamStudyMetrics&)>& metric_of);

}  // namespace ipd::analysis
