#include "analysis/lb_detect.hpp"

#include <algorithm>

namespace ipd::analysis {

namespace {

/// Aggregate a row's per-link breakdown by router, descending by count.
std::vector<std::pair<topology::RouterId, double>> by_router(
    const core::RangeOutput& row) {
  std::vector<std::pair<topology::RouterId, double>> routers;
  for (const auto& [link, count] : row.breakdown) {
    bool found = false;
    for (auto& [router, total] : routers) {
      if (router == link.router) {
        total += count;
        found = true;
        break;
      }
    }
    if (!found) routers.emplace_back(link.router, count);
  }
  std::sort(routers.begin(), routers.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return routers;
}

bool balanced_pair(const core::RangeOutput& row, const LbDetectConfig& config,
                   LbCandidate& out) {
  if (row.s_ipcount < config.min_samples) return false;
  const auto routers = by_router(row);
  if (routers.size() < 2) return false;
  const double total = row.s_ipcount;
  const double share_a = routers[0].second / total;
  const double share_b = routers[1].second / total;
  if (share_a + share_b < config.min_combined_share) return false;
  if (share_a - share_b > config.balance_tolerance) return false;
  out.range = row.range;
  out.router_a = routers[0].first;
  out.router_b = routers[1].first;
  out.share_a = share_a;
  out.share_b = share_b;
  out.samples = total;
  return true;
}

}  // namespace

std::vector<LbCandidate> scan_router_lb(const core::Snapshot& snapshot,
                                        const LbDetectConfig& config) {
  std::vector<LbCandidate> out;
  for (const auto& row : snapshot) {
    // Classified rows are by definition dominated by one ingress; the
    // interesting cases are the ranges IPD cannot classify.
    if (row.classified) continue;
    LbCandidate candidate;
    if (balanced_pair(row, config, candidate)) out.push_back(candidate);
  }
  return out;
}

void LbDetector::observe(const core::Snapshot& snapshot) {
  for (auto& [prefix, streak] : streaks_) {
    (void)prefix;
    streak.seen_this_round = false;
  }
  for (const auto& candidate : scan_router_lb(snapshot, config_)) {
    auto& streak = streaks_[candidate.range];
    // The same pair of routers must persist for the streak to grow.
    if (streak.count > 0 && (streak.last.router_a != candidate.router_a ||
                             streak.last.router_b != candidate.router_b)) {
      streak.count = 0;
    }
    streak.last = candidate;
    streak.count += 1;
    streak.seen_this_round = true;
  }
  for (auto it = streaks_.begin(); it != streaks_.end();) {
    it = it->second.seen_this_round ? std::next(it) : streaks_.erase(it);
  }
}

std::vector<LbCandidate> LbDetector::confirmed() const {
  std::vector<LbCandidate> out;
  for (const auto& [prefix, streak] : streaks_) {
    (void)prefix;
    if (streak.count >= config_.min_persistence) {
      LbCandidate candidate = streak.last;
      candidate.persistence = streak.count;
      out.push_back(candidate);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LbCandidate& a, const LbCandidate& b) {
              return a.samples > b.samples;
            });
  return out;
}

}  // namespace ipd::analysis
