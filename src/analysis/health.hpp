// Health/SLO engine: declarative rule evaluation over the embedded TSDB.
//
// PR 1/2 left the system observable but not self-judging: counters,
// decision history and live endpoints, with "is this deployment healthy?"
// still an operator exercise. The health engine closes that loop. It
// evaluates a declarative rule table against the windowed history held by
// obs::TimeSeriesStore (plus the engine's per-cycle demotion/
// re-classification deltas) and produces:
//
//   * per-component states — ok / degraded / unhealthy — with reasons,
//   * typed alert events carrying the same "quantities compared"
//     discipline as the decision log: observed value vs. threshold,
//     evaluation window, first/last seen, resolved-at.
//
// Built-in rules (install_default_rules) watch the paper's operational
// failure modes: an ingress shift on a classified range (Figs. 13/14 —
// the range's prevalent ingress vanishes and the range later re-classifies
// elsewhere), a mass-demotion burst, stage-2 cycle duration overrunning
// the t = 60 s budget (§5.7), collector ring drops, and accuracy
// regressing against its own trailing window.
//
// Threading: evaluate() is called from the runner's on_metrics hook (once
// per 5-minute bin, after the TSDB ingest) or ad hoc from tests at cycle
// granularity. All state is behind one internal mutex, so the /health and
// /alerts handlers read without the engine mutex. The on_alert callback is
// invoked *outside* the lock, after the evaluation pass.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "util/time.hpp"

namespace ipd::analysis {

enum class HealthState : std::uint8_t { Ok = 0, Degraded = 1, Unhealthy = 2 };
enum class AlertSeverity : std::uint8_t { Warning, Critical };

const char* to_string(HealthState state) noexcept;
const char* to_string(AlertSeverity severity) noexcept;

/// One typed alert with the quantities that drove it. An alert is live
/// while resolved_at == 0; resolution keeps the record (moved into the
/// recent ring) with resolved_at stamped.
struct Alert {
  std::uint64_t id = 0;  // global sequence, stamped on raise
  std::string rule;
  std::string component;
  std::string subject;  // what fired: a range prefix, a label set, or ""
  AlertSeverity severity = AlertSeverity::Warning;
  double observed = 0.0;   // the measured quantity
  double threshold = 0.0;  // the bound it was compared against
  std::size_t window_points = 0;   // evaluation window (TSDB points)
  util::Timestamp first_seen = 0;  // simulated time
  util::Timestamp last_seen = 0;
  util::Timestamp resolved_at = 0;  // 0 = active
  const char* reason = "";          // static rule description
  std::string detail;               // instance specifics, e.g. "was R10.1"
};

/// Render one alert as a JSON object (used by /alerts and --alerts-out).
std::string to_json(const Alert& alert);

/// A declarative threshold rule over TSDB series. The rule applies to
/// every series of family `series` whose labels contain `labels` as a
/// subset (empty = all), so one rule covers e.g. every collector source.
struct ThresholdRule {
  /// How the observed value is derived from the series window.
  enum class Agg : std::uint8_t {
    Last,       // newest point
    Mean,       // mean over the window
    Max,        // max over the window
    Delta,      // newest - oldest (counter increase over the window)
    DeltaRatio, // delta(series) / delta(ratio_series): per-event average
    DropVsTrailingMean,  // mean(window minus newest) - newest: regression
  };
  enum class Cmp : std::uint8_t { GreaterThan, LessThan };

  std::string name;
  std::string component;
  AlertSeverity severity = AlertSeverity::Warning;
  std::string series;
  obs::Labels labels;         // subset match against series labels
  std::string ratio_series;   // denominator family for Agg::DeltaRatio
  Agg agg = Agg::Last;
  Cmp cmp = Cmp::GreaterThan;
  double threshold = 0.0;
  std::size_t window_points = 3;
  std::size_t clear_after = 1;  // clean evaluations before auto-resolve
  const char* reason = "";
};

struct HealthConfig {
  std::size_t recent_capacity = 256;  // resolved-alert ring
  double cycle_budget_s = 60.0;       // stage-2 must finish inside t
  double demotion_burst = 16.0;       // demotes per window => burst
  double accuracy_drop = 0.05;        // absolute drop vs trailing mean
  std::size_t window_points = 6;      // default rule window
  // Perf-counter rules (no-ops until ipd_perf_* series exist, i.e. a
  // PerfCounters with live hardware events publishes into the TSDB).
  double perf_ipc_drop = 0.5;    // absolute stage-2 IPC drop vs trailing mean
  double perf_llc_spike = 0.2;   // absolute LLC miss-rate rise vs trailing mean
  // Pipeline-freshness SLO: how far the newest decoded record's data time
  // may run ahead of the last published table. Two snapshot bins of slack
  // on the 5-minute publish cadence.
  double freshness_slo_s = 600.0;
  // Ring-residency p99 spike: records sitting in a reader ring for more
  // than this long mean the IPD thread is not keeping up with ingest.
  double ring_residency_p99_s = 1.0;
  // Warm-restart snapshot staleness: how old (in data time) the newest
  // on-disk snapshot may grow before a crash would lose too much state.
  // Six 5-minute bins of slack; the rule is a no-op until a process that
  // takes snapshots publishes ipd_snapshot_age_seconds.
  double snapshot_age_s = 1800.0;
  // Execution-observability rules (no-ops until ipd_lock_* /
  // ipd_thread_* / ipd_watchdog_* series are published into the TSDB).
  double lock_wait_p99_s = 0.010;       // tail wait at any instrumented site
  double involuntary_ctx_burst = 1000;  // preemptions per window across threads
  // Stage-2 shard load skew: hottest slot vs. mean flows per slot
  // (ipd_shard_imbalance_ratio; sharded engine only). 1.0 = perfectly
  // balanced; sustained values above this mean one slot gates the cycle.
  double shard_imbalance_ratio = 4.0;
};

class HealthEngine {
 public:
  /// `store` must outlive the engine; it is read-only from here.
  explicit HealthEngine(const obs::TimeSeriesStore& store,
                        HealthConfig config = {});
  HealthEngine(const HealthEngine&) = delete;
  HealthEngine& operator=(const HealthEngine&) = delete;

  void add_rule(ThresholdRule rule);

  /// Install the standard rule set, thresholds derived from `params`
  /// (cycle budget from t, shift-share threshold from q) and the config.
  void install_default_rules(const core::IpdParams& params);

  /// Consume per-cycle demotion/re-classification deltas from `log` (the
  /// engine's attached CycleDeltaLog) for the ingress-shift rule. The log
  /// must outlive the health engine.
  void attach_cycle_deltas(core::CycleDeltaLog& log);

  /// Publish ipd_health_state{component=...} and ipd_alerts_active gauges
  /// into `registry` on every evaluation. The registry must outlive the
  /// binding.
  void bind_metrics(obs::MetricsRegistry& registry);

  /// One evaluation pass at simulated time `ts`. Call after the TSDB
  /// ingest for the same instant (the runner's on_metrics hook), or per
  /// cycle for finer alert latency.
  void evaluate(util::Timestamp ts);

  /// Fired after each evaluation pass, outside the internal lock, once
  /// per raised alert (resolved_at == 0) and once per resolution
  /// (resolved_at != 0).
  std::function<void(const Alert&)> on_alert;

  struct ComponentStatus {
    std::string name;
    HealthState state = HealthState::Ok;
    std::string reason;  // "ok", or the most severe active alert's rule
  };

  HealthState overall() const;
  std::vector<ComponentStatus> components() const;
  std::vector<Alert> active_alerts() const;   // oldest first
  std::vector<Alert> recent_alerts() const;   // resolved ring, oldest first

  std::uint64_t alerts_raised() const;
  std::uint64_t alerts_resolved() const;
  std::uint64_t evaluations() const;
  std::size_t rule_count() const;

 private:
  struct ActiveEntry {
    Alert alert;
    std::size_t clear_streak = 0;
  };

  void raise_or_refresh(const std::string& key, Alert alert,
                        std::vector<Alert>& fired);
  void resolve(const std::string& key, util::Timestamp ts, std::string detail,
               std::vector<Alert>& fired);
  void note_component(const std::string& component);
  void evaluate_threshold_rules(util::Timestamp ts, std::vector<Alert>& fired);
  void evaluate_shift_rule(util::Timestamp ts, std::vector<Alert>& fired);
  void publish_metrics();

  const obs::TimeSeriesStore* store_;
  HealthConfig config_;
  core::CycleDeltaLog* cycle_deltas_ = nullptr;
  obs::MetricsRegistry* registry_ = nullptr;

  mutable std::mutex mutex_;
  std::vector<ThresholdRule> rules_;
  std::vector<std::string> component_names_;  // registration order
  std::unordered_map<std::string, ActiveEntry> active_;  // key: rule|subject
  std::vector<Alert> recent_;                            // bounded ring
  std::uint64_t next_id_ = 1;
  std::uint64_t raised_ = 0;
  std::uint64_t resolved_ = 0;
  std::uint64_t evaluations_ = 0;
  bool shift_rule_enabled_ = false;
  double shift_q_ = 0.95;  // the q the shift alert reports as threshold
  // Last known classified ingress per range (prefix string -> ingress),
  // feeding the "was X" / "re-classified via Y" alert detail.
  std::unordered_map<std::string, core::IngressId> last_ingress_;
};

}  // namespace ipd::analysis
