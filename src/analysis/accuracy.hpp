// Validation of IPD output against ground truth (paper §5.1).
//
// The validator replays the same flow trace that fed the engine: per 5-min
// bin it resolves each flow's source IP through the LPM table built from
// the latest IPD snapshot and compares the predicted ingress with the
// flow's actual ingress link. Misses follow the paper's taxonomy:
//   interface miss — same router, different interface,
//   router miss    — same PoP, different router,
//   PoP miss       — different site,
//   unmapped       — the address space carries no classified range.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/lpm_table.hpp"
#include "net/lpm_trie.hpp"
#include "netflow/flow_record.hpp"
#include "topology/topology.hpp"
#include "util/time.hpp"
#include "workload/universe.hpp"

namespace ipd::analysis {

/// Fast source-IP -> owning-AS-index resolution.
class OwnerIndex {
 public:
  explicit OwnerIndex(const workload::Universe& universe);

  /// Index into universe.ases(), or Universe::npos.
  std::size_t owner(const net::IpAddress& ip) const noexcept;

 private:
  net::LpmTrie<std::size_t> v4_;
  net::LpmTrie<std::size_t> v6_;
};

enum class Outcome : std::uint8_t {
  Correct,
  MissInterface,
  MissRouter,
  MissPop,
  Unmapped,
};

const char* to_string(Outcome outcome) noexcept;

/// Per-flow check of a prediction table against ground truth.
Outcome check_flow(const topology::Topology& topo, const core::LpmTable& table,
                   const netflow::FlowRecord& record);

/// Aggregated outcome counters.
struct OutcomeCounts {
  std::uint64_t total = 0;
  std::uint64_t correct = 0;
  std::uint64_t miss_interface = 0;
  std::uint64_t miss_router = 0;
  std::uint64_t miss_pop = 0;
  std::uint64_t unmapped = 0;

  void add(Outcome outcome) noexcept;
  double accuracy() const noexcept {
    return total ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
  }
  std::uint64_t misses() const noexcept { return total - correct; }
};

/// Accuracy evaluation over a binned run, for ALL / TOP20 / TOP5 and with
/// per-AS miss detail for the TOP5 ASes (Figs. 6-8).
class ValidationRun {
 public:
  ValidationRun(const topology::Topology& topo,
                const workload::Universe& universe,
                util::Duration bin_len = 300);

  /// Process one flow against the current prediction table. Flows must
  /// arrive in (roughly) increasing bin order; a new bin is opened
  /// automatically.
  void observe(const core::LpmTable& table, const netflow::FlowRecord& record);

  /// Close the current bin (call once after the last flow).
  void finish();

  struct BinRow {
    util::Timestamp bin_start = 0;
    OutcomeCounts all, top20, top5;
    std::uint64_t volume_flows = 0;
    std::uint64_t volume_bytes = 0;
  };

  const std::vector<BinRow>& bins() const noexcept { return bins_; }

  struct PerAsDetail {
    OutcomeCounts counts;
    std::unordered_set<net::IpAddress, net::IpAddressHash> distinct_miss_ips;
    // (bin start, count) timelines: misses and total volume per bin.
    std::vector<std::pair<util::Timestamp, std::uint64_t>> miss_timeline;
    std::vector<std::pair<util::Timestamp, std::uint64_t>> volume_timeline;
    std::uint64_t current_bin_misses = 0;
    std::uint64_t current_bin_total = 0;
  };

  /// Detail per TOP5 AS, keyed by AS index.
  const std::unordered_map<std::size_t, PerAsDetail>& top5_detail() const noexcept {
    return detail_;
  }

  const OwnerIndex& owners() const noexcept { return owners_; }
  bool is_top5(std::size_t as_index) const noexcept;
  bool is_top20(std::size_t as_index) const noexcept;

 private:
  void roll_bin(util::Timestamp bin_start);

  const topology::Topology* topo_;
  OwnerIndex owners_;
  std::vector<bool> top5_mask_, top20_mask_;
  util::Duration bin_len_;
  std::vector<BinRow> bins_;
  BinRow current_;
  bool bin_open_ = false;
  std::unordered_map<std::size_t, PerAsDetail> detail_;
};

}  // namespace ipd::analysis
