// Live introspection endpoints over a running engine.
//
// Binds the embedded HTTP server (obs::HttpServer) to one engine (core::EngineBase) and
// its attached observability surfaces:
//
//   GET /            endpoint index (JSON)
//   GET /healthz     liveness + basic engine counters
//   GET /metrics     Prometheus text exposition of the attached registry
//   GET /ranges      paginated JSON dump of the current range partition
//   GET /explain?ip= covering range for an address + its decision history
//   GET /decisions   tail of the decision audit trail
//   GET /trace       flight-recorder tail as Chrome trace-event JSON
//   GET /health      component states + reasons from the health engine
//   GET /alerts      active alerts + recent resolved ring
//   GET /timeseries  ?name=&from= — TSDB series as JSON for dashboards
//   GET /perf        perf-counter phase totals (IPC, LLC miss rates)
//   GET /profile     ?seconds=&hz=&clock=cpu|wall — sample the process for
//                    `seconds`, return folded flamegraph stacks (text)
//   GET /flows       ?limit=&format=json|text — sampled flow journeys with
//                    per-hop timestamps and correlated stage-2 decisions
//   GET /threads     ?format=json|text — per-thread scheduler stats from
//                    /proc/self/task plus watchdog task/stall state
//   GET /locks       ?limit=&format=json|text — per-site lock contention
//                    (wait/hold p50/p99/max, contention ratio)
//   GET /shards      stage-2 cut + per-shard flow load / imbalance ratio
//                    (503 unless the engine is a core::ShardedEngine)
//   GET /snapshot    warm-restart snapshot state: last save/restore,
//                    bytes, data-time age, configured path
//
// The engine is shared with the ingest thread: every handler takes
// `engine_mutex` around engine access, and the ingest side must hold the
// same mutex around offer()/run_cycle() batches. The mutex is an
// obs::InstrumentedMutex — introspection-vs-ingest contention shows up in
// /locks like every other site. The decision log, tracer, time-series
// store and health engine are internally synchronized and are read without
// the engine mutex, so /trace /decisions /health /alerts /timeseries
// /threads /locks never stall ingest.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "core/engine_base.hpp"
#include "core/snapshot.hpp"
#include "obs/flow_trace.hpp"
#include "obs/http_server.hpp"
#include "obs/lock_stats.hpp"
#include "obs/timeseries.hpp"
#include "obs/watchdog.hpp"

namespace ipd::analysis {

class HealthEngine;

/// Render one sampled flow journey as JSON with its stage-2 decisions
/// correlated through the decision log: every event covering the flow's IP
/// at or after the flow's data time, i.e. the classify/split/demote
/// decisions its range went through after this flow touched it. Shared by
/// the /flows endpoint and `ipd_replay --flow-trace-out` (JSONL).
std::string flow_journey_json(const obs::FlowJourney& journey,
                              const core::DecisionLog* log);

/// One-line operator-readable form (the /flows?format=text surface that
/// ipd_top renders verbatim).
std::string flow_journey_text(const obs::FlowJourney& journey,
                              const core::DecisionLog* log);

struct IntrospectionConfig {
  std::size_t default_page = 100;  // /ranges rows per page by default
  std::size_t max_page = 1000;     // /ranges hard cap on `limit`
  std::size_t trace_tail = 4096;   // /trace events by default
  // /profile bounds: the handler blocks the (single) serving thread for
  // the sampled duration, so cap it; hz defaults prime to avoid
  // phase-locking with periodic work.
  std::size_t profile_max_seconds = 30;
  int profile_default_hz = 97;
};

class IntrospectionServer {
 public:
  /// `engine` and `engine_mutex` must outlive the server. The metrics
  /// registry, decision log and tracer are discovered through the engine's
  /// attachments at request time — attaching them before or after
  /// construction both work.
  IntrospectionServer(core::EngineBase& engine,
                      obs::InstrumentedMutex& engine_mutex,
                      IntrospectionConfig config = {});

  /// Serve /health and /alerts from `health` (must outlive the server;
  /// internally synchronized — handlers bypass the engine mutex).
  void attach_health(const HealthEngine& health) noexcept {
    health_ = &health;
  }

  /// Serve /timeseries from `store` (same lifetime/locking contract).
  void attach_timeseries(const obs::TimeSeriesStore& store) noexcept {
    timeseries_ = &store;
  }

  /// Serve /perf from `perf` (internally synchronized; must outlive the
  /// server). /profile needs no attachment — it samples the process.
  void attach_perf(const obs::PerfCounters& perf) noexcept { perf_ = &perf; }

  /// Serve /flows from `tracer` (internally synchronized; must outlive
  /// the server). Stage-2 correlation uses the engine's decision log when
  /// one is attached.
  void attach_flow_trace(const obs::FlowTracer& tracer) noexcept {
    flow_trace_ = &tracer;
  }

  /// Serve /snapshot from `telemetry` (internally synchronized; must
  /// outlive the server): last save/restore, bytes, data-time age, and
  /// the configured snapshot path.
  void attach_snapshots(const core::SnapshotTelemetry& telemetry) noexcept {
    snapshots_ = &telemetry;
  }

  /// Fold `watchdog` task/stall state into /threads (internally
  /// synchronized; must outlive the server). /threads and /locks work
  /// without any attachment — they read /proc and the process-global lock
  /// registry directly.
  void attach_watchdog(const obs::Watchdog& watchdog) noexcept {
    watchdog_ = &watchdog;
  }

  /// Register a "http.serve" heartbeat on `watchdog` and beat it from the
  /// serve loop. The budget must exceed the longest legitimate handler
  /// (/profile blocks up to profile_max_seconds), so default generously.
  void register_heartbeat(obs::Watchdog& watchdog, std::int64_t budget_ms);

  /// Bind 127.0.0.1:`port` (0 = ephemeral) and serve until stop().
  bool start(std::uint16_t port, std::string* error = nullptr);
  void stop() { server_.stop(); }

  bool running() const noexcept { return server_.running(); }
  std::uint16_t port() const noexcept { return server_.port(); }
  std::uint64_t requests_served() const noexcept {
    return server_.requests_served();
  }

 private:
  obs::HttpResponse handle_index(const obs::HttpRequest& request);
  obs::HttpResponse handle_healthz(const obs::HttpRequest& request);
  obs::HttpResponse handle_metrics(const obs::HttpRequest& request);
  obs::HttpResponse handle_ranges(const obs::HttpRequest& request);
  obs::HttpResponse handle_explain(const obs::HttpRequest& request);
  obs::HttpResponse handle_decisions(const obs::HttpRequest& request);
  obs::HttpResponse handle_trace(const obs::HttpRequest& request);
  obs::HttpResponse handle_health(const obs::HttpRequest& request);
  obs::HttpResponse handle_alerts(const obs::HttpRequest& request);
  obs::HttpResponse handle_timeseries(const obs::HttpRequest& request);
  obs::HttpResponse handle_perf(const obs::HttpRequest& request);
  obs::HttpResponse handle_profile(const obs::HttpRequest& request);
  obs::HttpResponse handle_flows(const obs::HttpRequest& request);
  obs::HttpResponse handle_threads(const obs::HttpRequest& request);
  obs::HttpResponse handle_snapshot(const obs::HttpRequest& request);
  obs::HttpResponse handle_locks(const obs::HttpRequest& request);
  obs::HttpResponse handle_shards(const obs::HttpRequest& request);

  core::EngineBase& engine_;
  obs::InstrumentedMutex& engine_mutex_;
  IntrospectionConfig config_;
  const HealthEngine* health_ = nullptr;
  const obs::TimeSeriesStore* timeseries_ = nullptr;
  const obs::PerfCounters* perf_ = nullptr;
  const obs::FlowTracer* flow_trace_ = nullptr;
  const obs::Watchdog* watchdog_ = nullptr;
  const core::SnapshotTelemetry* snapshots_ = nullptr;
  obs::HttpServer server_;
};

}  // namespace ipd::analysis
