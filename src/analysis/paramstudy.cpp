#include "analysis/paramstudy.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "analysis/runner.hpp"
#include "analysis/stability.hpp"
#include "analysis/stats.hpp"
#include "core/engine.hpp"
#include "obs/metrics.hpp"

namespace ipd::analysis {

ParamStudyMetrics evaluate_params(const std::vector<netflow::FlowRecord>& trace,
                                  const topology::Topology& topo,
                                  const workload::Universe& universe,
                                  const core::IpdParams& params,
                                  std::size_t accuracy_skip_bins) {
  ParamStudyMetrics metrics;
  metrics.params = params;

  core::IpdEngine engine(params);
  // The resource metrics below (cycle time percentiles, per-phase
  // breakdown, honest memory totals) come from the metrics subsystem.
  obs::MetricsRegistry registry;
  engine.attach_metrics(registry);
  ValidationRun validation(topo, universe);
  BinnedRunner runner(engine, &validation);
  StabilityTracker stability;
  util::Timestamp last_ts = 0;
  std::uint64_t final_classified = 0;
  double sum_ranges = 0.0;
  std::uint64_t n_snapshots = 0;
  runner.on_snapshot = [&](util::Timestamp ts, const core::Snapshot& snapshot,
                           const core::LpmTable& table) {
    stability.observe(snapshot);
    last_ts = ts;
    final_classified = table.size();
    sum_ranges += static_cast<double>(snapshot.size());
    ++n_snapshots;
  };

  for (const auto& record : trace) runner.offer(record);
  runner.finish();
  stability.finish(last_ts);

  // Accuracy: mean of per-bin flow accuracy.
  double acc_all = 0.0, acc_top5 = 0.0;
  std::size_t bins = 0;
  for (std::size_t i = accuracy_skip_bins; i < validation.bins().size(); ++i) {
    const auto& bin = validation.bins()[i];
    if (bin.all.total == 0) continue;
    acc_all += bin.all.accuracy();
    acc_top5 += bin.top5.total ? bin.top5.accuracy() : 0.0;
    ++bins;
  }
  if (bins) {
    metrics.accuracy_all = acc_all / static_cast<double>(bins);
    metrics.accuracy_top5 = acc_top5 / static_cast<double>(bins);
  }

  // Stability metrics.
  const auto& durations = stability.durations();
  if (!durations.empty()) {
    Cdf cdf{std::vector<double>(durations)};
    metrics.ks_distance = best_fit_ks(cdf);
    metrics.mean_stability_s = cdf.mean();
  }

  // Resources.
  double cycle_us = 0.0;
  std::uint64_t peak_mem = 0;
  std::array<double, core::kNumCyclePhases> phase_us{};
  for (const auto& cycle : runner.cycles()) {
    cycle_us += static_cast<double>(cycle.cycle_micros);
    peak_mem = std::max(peak_mem, cycle.memory_bytes);
    for (std::size_t p = 0; p < core::kNumCyclePhases; ++p) {
      phase_us[p] += static_cast<double>(cycle.phase_micros[p]);
    }
  }
  if (!runner.cycles().empty()) {
    const auto n = static_cast<double>(runner.cycles().size());
    metrics.mean_cycle_ms = cycle_us / n / 1000.0;
    for (std::size_t p = 0; p < core::kNumCyclePhases; ++p) {
      metrics.mean_phase_ms[p] = phase_us[p] / n / 1000.0;
    }
  }
  metrics.p95_cycle_ms = engine.metrics()->cycle_seconds->quantile(0.95) * 1e3;
  metrics.peak_memory_mb = static_cast<double>(peak_mem) / (1024.0 * 1024.0);
  metrics.mean_ranges = n_snapshots ? sum_ranges / static_cast<double>(n_snapshots) : 0.0;
  metrics.final_classified = final_classified;
  return metrics;
}

std::vector<core::IpdParams> factorial_design(
    const std::vector<double>& q_levels,
    const std::vector<double>& ncidr4_levels,
    const std::vector<double>& ncidr6_levels,
    const std::vector<int>& cidrmax4_levels,
    const std::vector<int>& cidrmax6_levels) {
  if (ncidr4_levels.size() != ncidr6_levels.size()) {
    throw std::invalid_argument("factorial_design: n_cidr level lists must pair up");
  }
  if (cidrmax4_levels.size() != cidrmax6_levels.size()) {
    throw std::invalid_argument("factorial_design: cidr_max level lists must pair up");
  }
  std::vector<core::IpdParams> design;
  for (const double q : q_levels) {
    for (std::size_t f = 0; f < ncidr4_levels.size(); ++f) {
      for (std::size_t c = 0; c < cidrmax4_levels.size(); ++c) {
        core::IpdParams params;
        params.q = q;
        params.ncidr_factor4 = ncidr4_levels[f];
        params.ncidr_factor6 = ncidr6_levels[f];
        params.cidr_max4 = cidrmax4_levels[c];
        params.cidr_max6 = cidrmax6_levels[c];
        params.validate();
        design.push_back(params);
      }
    }
  }
  return design;
}

std::vector<core::IpdParams> table2_design(double factor_scale,
                                           double ncidr_floor) {
  const std::vector<double> q_levels{0.501, 0.7, 0.8, 0.95, 0.99};
  std::vector<double> f4{32, 48, 64, 80};
  std::vector<double> f6{12, 18, 24, 30};
  for (auto& f : f4) f = std::max(1e-4, f * factor_scale);
  for (auto& f : f6) f = std::max(1e-9, f * factor_scale);
  const std::vector<int> c4{20, 21, 22, 23, 24, 25, 26, 27, 28};
  const std::vector<int> c6{32, 34, 36, 38, 40, 42, 44, 46, 48};
  auto design = factorial_design(q_levels, f4, f6, c4, c6);
  for (auto& params : design) params.ncidr_floor = ncidr_floor;
  return design;
}

std::vector<std::vector<double>> group_by_factor(
    const std::vector<ParamStudyMetrics>& results,
    const std::function<double(const core::IpdParams&)>& factor_of,
    const std::function<double(const ParamStudyMetrics&)>& metric_of) {
  std::map<double, std::vector<double>> grouped;
  for (const auto& r : results) {
    grouped[factor_of(r.params)].push_back(metric_of(r));
  }
  std::vector<std::vector<double>> out;
  out.reserve(grouped.size());
  for (auto& [level, values] : grouped) {
    (void)level;
    out.push_back(std::move(values));
  }
  return out;
}

}  // namespace ipd::analysis
