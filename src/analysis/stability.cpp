#include "analysis/stability.hpp"

#include <algorithm>

namespace ipd::analysis {

void StabilityTracker::observe(const core::Snapshot& snapshot) {
  if (snapshot.empty()) return;
  const util::Timestamp now = snapshot.front().ts;

  for (const auto& row : snapshot) {
    if (!row.classified) continue;
    auto [it, inserted] = open_.try_emplace(row.range);
    Stint& stint = it->second;
    if (inserted) {
      stint.ingress = row.ingress;
      stint.since = now;
    } else if (!(stint.ingress == row.ingress)) {
      durations_.push_back(static_cast<double>(now - stint.since));
      stint.ingress = row.ingress;
      stint.since = now;
    }
    stint.last_seen = now;
  }

  // Ranges absent from this snapshot: their stint ended.
  for (auto it = open_.begin(); it != open_.end();) {
    if (it->second.last_seen < now) {
      durations_.push_back(
          static_cast<double>(it->second.last_seen - it->second.since));
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
}

void StabilityTracker::finish(util::Timestamp now) {
  for (auto& [prefix, stint] : open_) {
    (void)prefix;
    durations_.push_back(static_cast<double>(now - stint.since));
  }
  open_.clear();
}

std::vector<double> StabilityTracker::durations_with_open(
    util::Timestamp now) const {
  std::vector<double> out = durations_;
  for (const auto& [prefix, stint] : open_) {
    (void)prefix;
    out.push_back(static_cast<double>(now - stint.since));
  }
  return out;
}

void MonotonicCounterTracker::observe(const core::Snapshot& snapshot) {
  if (snapshot.empty()) return;
  const util::Timestamp now = snapshot.front().ts;

  for (const auto& row : snapshot) {
    if (!row.classified) continue;
    auto [it, inserted] = state_.try_emplace(row.range);
    State& state = it->second;
    if (inserted) {
      state.increase_since = now;
    } else if (row.s_ipcount < state.last_count) {
      // Counter shrank (decay or drop/reclassify): monotonic phase over.
      const double duration = static_cast<double>(state.last_seen - state.increase_since);
      durations_.push_back(duration);
      closed_.emplace_back(state.peak_count, duration);
      state.increase_since = now;
      state.peak_count = 0.0;
    }
    state.last_count = row.s_ipcount;
    state.peak_count = std::max(state.peak_count, row.s_ipcount);
    state.last_seen = now;
  }

  for (auto it = state_.begin(); it != state_.end();) {
    State& state = it->second;
    if (state.last_seen < now) {
      const double duration =
          static_cast<double>(state.last_seen - state.increase_since);
      durations_.push_back(duration);
      closed_.emplace_back(state.peak_count, duration);
      it = state_.erase(it);
    } else {
      ++it;
    }
  }
}

void MonotonicCounterTracker::finish(util::Timestamp now) {
  for (auto& [prefix, state] : state_) {
    (void)prefix;
    const double duration = static_cast<double>(now - state.increase_since);
    durations_.push_back(duration);
    closed_.emplace_back(state.peak_count, duration);
  }
  state_.clear();
}

std::vector<double> MonotonicCounterTracker::elephant_durations(
    double fraction) const {
  if (closed_.empty()) return {};
  auto sorted = closed_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  const auto keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(fraction * static_cast<double>(sorted.size())));
  std::vector<double> out;
  out.reserve(keep);
  for (std::size_t i = 0; i < keep && i < sorted.size(); ++i) {
    out.push_back(sorted[i].second);
  }
  return out;
}

LongitudinalShare compare_snapshots(const core::Snapshot& t1,
                                    const core::LpmTable& t2,
                                    int samples_per_range, net::Family family) {
  LongitudinalShare share;
  double total_weight = 0.0, matching = 0.0, stable = 0.0;
  for (const auto& row : t1) {
    if (!row.classified || row.range.family() != family) continue;
    const double weight = row.range.address_count();
    const double per_sample = weight / samples_per_range;
    for (int k = 0; k < samples_per_range; ++k) {
      // Strided representatives: the k-th of `samples_per_range` equal
      // sub-slices of the range.
      const int probe_len =
          std::min(row.range.width(),
                   row.range.length() + 8);  // probe at /len+8 granularity
      const std::uint64_t slots =
          1ULL << std::min(probe_len - row.range.length(), 62);
      const std::uint64_t idx =
          (static_cast<std::uint64_t>(k) * slots) / samples_per_range;
      const net::IpAddress probe =
          row.range.nth_subprefix(idx, probe_len).address();
      total_weight += per_sample;
      const auto hit = t2.lookup(probe);
      if (!hit) continue;
      matching += per_sample;
      if (*hit == row.ingress) stable += per_sample;
    }
  }
  if (total_weight > 0.0) {
    share.matching = matching / total_weight;
    share.stable = stable / total_weight;
  }
  return share;
}

}  // namespace ipd::analysis
