#include "obs/thread_stats.hpp"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "util/strings.hpp"

namespace ipd::obs {

namespace {

/// Parse a decimal u64 at the front of `s`, advancing it past the number
/// and any leading whitespace. Returns false if no digits are present.
bool eat_u64(std::string_view& s, std::uint64_t& out) {
  std::size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  std::size_t start = i;
  std::uint64_t v = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(s[i] - '0');
    ++i;
  }
  if (i == start) return false;
  out = v;
  s.remove_prefix(i);
  return true;
}

double ticks_to_seconds(std::uint64_t ticks) {
  static const double hz = [] {
    const long v = sysconf(_SC_CLK_TCK);
    return v > 0 ? static_cast<double>(v) : 100.0;
  }();
  return static_cast<double>(ticks) / hz;
}

/// Read a small /proc file fully; returns false on open/read error.
bool slurp(const char* path, std::string& out) {
  FILE* f = std::fopen(path, "r");
  if (f == nullptr) return false;
  out.clear();
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

}  // namespace

bool parse_proc_stat(std::string_view text, ProcStat& out) {
  // "<tid> (<comm>) <state> field4 ... field14=utime field15=stime ..."
  // comm may contain spaces and parens, so split on the LAST ')'.
  std::uint64_t tid = 0;
  std::string_view rest = text;
  if (!eat_u64(rest, tid)) return false;
  const std::size_t open = rest.find('(');
  const std::size_t close = rest.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return false;
  }
  const std::string_view comm = rest.substr(open + 1, close - open - 1);
  std::string_view fields = rest.substr(close + 1);
  // fields now starts at field 3 (state). utime/stime are stat fields
  // 14/15, i.e. the 11th and 12th tokens after the comm.
  while (!fields.empty() &&
         std::isspace(static_cast<unsigned char>(fields.front()))) {
    fields.remove_prefix(1);
  }
  if (fields.empty()) return false;
  const char state = fields.front();
  fields.remove_prefix(1);
  std::uint64_t skip = 0;
  for (int field = 4; field <= 13; ++field) {
    // fields 4..13 are numeric, but tpgid (field 8) is -1 for processes
    // without a controlling terminal — tolerate a leading sign on the
    // skipped fields. utime/stime themselves are unsigned.
    while (!fields.empty() &&
           std::isspace(static_cast<unsigned char>(fields.front()))) {
      fields.remove_prefix(1);
    }
    if (!fields.empty() && fields.front() == '-') fields.remove_prefix(1);
    if (!eat_u64(fields, skip)) return false;
  }
  ProcStat parsed;
  if (!eat_u64(fields, parsed.utime_ticks)) return false;
  if (!eat_u64(fields, parsed.stime_ticks)) return false;
  parsed.tid = static_cast<int>(tid);
  parsed.comm = std::string(comm);
  parsed.state = state;
  out = parsed;
  return true;
}

bool parse_proc_schedstat(std::string_view text, ProcSchedstat& out) {
  ProcSchedstat parsed;
  std::string_view rest = text;
  if (!eat_u64(rest, parsed.cpu_time_ns)) return false;
  if (!eat_u64(rest, parsed.runqueue_wait_ns)) return false;
  if (!eat_u64(rest, parsed.timeslices)) return false;
  out = parsed;
  return true;
}

bool parse_proc_status_ctx(std::string_view text, ProcCtxSwitches& out) {
  ProcCtxSwitches parsed;
  bool have_voluntary = false;
  bool have_involuntary = false;
  for (std::string_view line : util::split(text, '\n')) {
    if (util::starts_with(line, "voluntary_ctxt_switches:")) {
      std::string_view v = line.substr(line.find(':') + 1);
      if (!eat_u64(v, parsed.voluntary)) return false;
      have_voluntary = true;
    } else if (util::starts_with(line, "nonvoluntary_ctxt_switches:")) {
      std::string_view v = line.substr(line.find(':') + 1);
      if (!eat_u64(v, parsed.involuntary)) return false;
      have_involuntary = true;
    }
  }
  if (!have_voluntary || !have_involuntary) return false;
  out = parsed;
  return true;
}

std::vector<ThreadStats> sample_process_threads() {
  std::vector<ThreadStats> threads;
  DIR* dir = opendir("/proc/self/task");
  if (dir == nullptr) return threads;
  std::string contents;
  char path[320];  // "/proc/self/task/" + d_name (<=255) + suffix
  while (dirent* entry = readdir(dir)) {
    if (entry->d_name[0] < '0' || entry->d_name[0] > '9') continue;
    std::snprintf(path, sizeof(path), "/proc/self/task/%s/stat",
                  entry->d_name);
    ProcStat stat;
    if (!slurp(path, contents) || !parse_proc_stat(contents, stat)) {
      continue;  // thread exited mid-walk
    }
    ThreadStats t;
    t.tid = stat.tid;
    t.name = stat.comm;
    t.state = stat.state;
    t.utime_s = ticks_to_seconds(stat.utime_ticks);
    t.stime_s = ticks_to_seconds(stat.stime_ticks);

    std::snprintf(path, sizeof(path), "/proc/self/task/%s/schedstat",
                  entry->d_name);
    ProcSchedstat sched;
    if (slurp(path, contents) && parse_proc_schedstat(contents, sched)) {
      t.has_schedstat = true;
      t.cpu_s = static_cast<double>(sched.cpu_time_ns) * 1e-9;
      t.runqueue_wait_s = static_cast<double>(sched.runqueue_wait_ns) * 1e-9;
      t.timeslices = sched.timeslices;
    }

    std::snprintf(path, sizeof(path), "/proc/self/task/%s/status",
                  entry->d_name);
    ProcCtxSwitches ctx;
    if (slurp(path, contents) && parse_proc_status_ctx(contents, ctx)) {
      t.voluntary_ctx = ctx.voluntary;
      t.involuntary_ctx = ctx.involuntary;
    }
    threads.push_back(std::move(t));
  }
  closedir(dir);
  std::sort(threads.begin(), threads.end(),
            [](const ThreadStats& a, const ThreadStats& b) {
              return a.tid < b.tid;
            });
  return threads;
}

void publish_thread_metrics(const std::vector<ThreadStats>& threads,
                            MetricsRegistry& registry) {
  struct Agg {
    double utime_s = 0, stime_s = 0, cpu_s = 0, runqueue_wait_s = 0;
    double voluntary = 0, involuntary = 0, count = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const auto& t : threads) {
    Agg& a = by_name[t.name];
    a.utime_s += t.utime_s;
    a.stime_s += t.stime_s;
    a.cpu_s += t.cpu_s;
    a.runqueue_wait_s += t.runqueue_wait_s;
    a.voluntary += static_cast<double>(t.voluntary_ctx);
    a.involuntary += static_cast<double>(t.involuntary_ctx);
    a.count += 1;
  }
  for (const auto& [name, a] : by_name) {
    const Labels labels{{"thread", name}};
    registry
        .gauge("ipd_thread_count", "Live threads sharing this name", labels)
        .set(a.count);
    registry
        .gauge("ipd_thread_utime_seconds", "User CPU time (proc stat utime)",
               labels)
        .set(a.utime_s);
    registry
        .gauge("ipd_thread_stime_seconds",
               "System CPU time (proc stat stime)", labels)
        .set(a.stime_s);
    registry
        .gauge("ipd_thread_runqueue_wait_seconds",
               "Time runnable but waiting for a CPU (schedstat)", labels)
        .set(a.runqueue_wait_s);
    registry
        .gauge("ipd_thread_ctx_switches_total",
               "Context switches by kind (proc status)",
               Labels{{"kind", "voluntary"}, {"thread", name}})
        .set(a.voluntary);
    registry
        .gauge("ipd_thread_ctx_switches_total",
               "Context switches by kind (proc status)",
               Labels{{"kind", "involuntary"}, {"thread", name}})
        .set(a.involuntary);
  }
}

std::string threads_json(const std::vector<ThreadStats>& threads) {
  std::string out = "[";
  bool first = true;
  for (const auto& t : threads) {
    if (!first) out += ",";
    first = false;
    out += util::format(
        "{\"tid\":%d,\"name\":\"%s\",\"state\":\"%c\","
        "\"utime_s\":%.3f,\"stime_s\":%.3f,"
        "\"cpu_s\":%.6f,\"runqueue_wait_s\":%.6f,\"timeslices\":%llu,"
        "\"voluntary_ctx\":%llu,\"involuntary_ctx\":%llu,"
        "\"has_schedstat\":%s}",
        t.tid, util::json_escape(t.name).c_str(), t.state, t.utime_s,
        t.stime_s, t.cpu_s, t.runqueue_wait_s,
        static_cast<unsigned long long>(t.timeslices),
        static_cast<unsigned long long>(t.voluntary_ctx),
        static_cast<unsigned long long>(t.involuntary_ctx),
        t.has_schedstat ? "true" : "false");
  }
  out += "]";
  return out;
}

std::string threads_text(const std::vector<ThreadStats>& threads,
                         std::size_t max_rows) {
  std::vector<ThreadStats> sorted = threads;
  std::sort(sorted.begin(), sorted.end(),
            [](const ThreadStats& a, const ThreadStats& b) {
              const double ca = a.has_schedstat ? a.cpu_s : a.utime_s + a.stime_s;
              const double cb = b.has_schedstat ? b.cpu_s : b.utime_s + b.stime_s;
              if (ca != cb) return ca > cb;
              return a.tid < b.tid;
            });
  std::string out = util::format("%7s %-16s %2s %9s %9s %10s %10s %9s %9s\n",
                                 "TID", "NAME", "ST", "UTIME-s", "STIME-s",
                                 "CPU-s", "RQWAIT-s", "VCTX", "IVCTX");
  std::size_t rows = 0;
  for (const auto& t : sorted) {
    if (max_rows != 0 && rows++ >= max_rows) break;
    out += util::format(
        "%7d %-16s %2c %9.2f %9.2f %10.3f %10.3f %9llu %9llu\n", t.tid,
        t.name.c_str(), t.state, t.utime_s, t.stime_s, t.cpu_s,
        t.runqueue_wait_s, static_cast<unsigned long long>(t.voluntary_ctx),
        static_cast<unsigned long long>(t.involuntary_ctx));
  }
  return out;
}

}  // namespace ipd::obs
