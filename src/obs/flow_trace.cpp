#include "obs/flow_trace.hpp"

#include <cstdlib>
#include <utility>

#include "util/strings.hpp"  // util::format

namespace ipd::obs {

const char* to_string(FlowHopKind kind) noexcept {
  switch (kind) {
    case FlowHopKind::Decode: return "decode";
    case FlowHopKind::RingEnqueue: return "ring_enqueue";
    case FlowHopKind::RingDequeue: return "ring_dequeue";
    case FlowHopKind::ShardRoute: return "shard_route";
    case FlowHopKind::TrieApply: return "trie_apply";
  }
  return "unknown";
}

namespace {

std::uint64_t round_up_pow2(std::uint64_t v) noexcept {
  if (v <= 1) return 1;
  --v;
  for (int shift = 1; shift < 64; shift <<= 1) v |= v >> shift;
  return v + 1;
}

}  // namespace

std::uint64_t FlowTracer::sample_period_from_env(
    std::uint64_t fallback) noexcept {
  const char* raw = std::getenv("IPD_FLOW_SAMPLE");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed == 0) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

FlowTracer::FlowTracer(Config config)
    : sample_period_(round_up_pow2(config.sample_period)), config_(config) {
  // Gate on the top log2(period) bits: sample_gate_ is the low-bit mask
  // (period - 1) shifted up against bit 63. Period 1 gates nothing.
  int bits = 0;
  for (std::uint64_t p = sample_period_; p > 1; p >>= 1) ++bits;
  sample_gate_ = bits == 0 ? 0 : ((sample_period_ - 1) << (64 - bits));
  if (config_.max_flows == 0) config_.max_flows = 1;
  if (config_.max_hops_per_flow == 0) config_.max_hops_per_flow = 1;
}

void FlowTracer::record(std::uint64_t id, FlowHopKind kind,
                        util::Timestamp ts, const net::IpAddress& masked,
                        topology::LinkId link, std::uint32_t detail) noexcept {
  const std::int64_t now_ns = monotonic_ns();
  std::lock_guard<std::mutex> lock(mutex_);
  FlowJourney* journey = nullptr;
  auto it = index_.find(id);
  if (it != index_.end() && it->second >= ring_base_) {
    journey = &ring_[it->second - ring_base_];
  } else {
    if (ring_.size() >= config_.max_flows) {
      index_.erase(ring_.front().id);
      ring_.pop_front();
      ++ring_base_;
      ++journeys_evicted_;
    }
    FlowJourney fresh;
    fresh.id = id;
    fresh.ip = masked;
    fresh.link = link;
    fresh.first_ts = ts;
    fresh.hops.reserve(config_.max_hops_per_flow);
    index_[id] = ring_base_ + ring_.size();
    ring_.push_back(std::move(fresh));
    journey = &ring_.back();
    ++flows_sampled_;
    if (sampled_counter_ != nullptr) sampled_counter_->inc();
  }
  if (journey->hops.size() >= config_.max_hops_per_flow) {
    ++journey->hops_dropped;
    return;
  }
  journey->hops.push_back(FlowHop{kind, detail, ts, now_ns});
  ++hops_recorded_;
  if (hops_counter_ != nullptr) hops_counter_->inc();
  if (kind == FlowHopKind::TrieApply && decode_to_apply_ != nullptr) {
    // End-to-end stage-1 latency: first Decode observation to this apply.
    for (const FlowHop& hop : journey->hops) {
      if (hop.kind == FlowHopKind::Decode) {
        decode_to_apply_->observe(
            static_cast<double>(now_ns - hop.mono_ns) * 1e-9);
        break;
      }
    }
  }
}

void FlowTracer::bind_metrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry == nullptr) {
    sampled_counter_ = nullptr;
    hops_counter_ = nullptr;
    decode_to_apply_ = nullptr;
    return;
  }
  sampled_counter_ = &registry->counter(
      "ipd_flows_sampled_total",
      "Flows selected by deterministic hash sampling (unique journeys)");
  hops_counter_ = &registry->counter(
      "ipd_flow_hops_total", "Pipeline hops recorded for sampled flows");
  decode_to_apply_ = &registry->histogram(
      "ipd_flow_decode_to_apply_seconds",
      "Wall latency from datagram decode to stage-1 trie apply "
      "(sampled flows)",
      Histogram::exponential_bounds(1e-6, 4.0, 12));
}

std::vector<FlowJourney> FlowTracer::journeys(std::size_t limit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = ring_.size();
  if (limit != 0 && limit < n) n = limit;
  // Oldest first among the newest `n` journeys.
  std::vector<FlowJourney> out;
  out.reserve(n);
  for (std::size_t i = ring_.size() - n; i < ring_.size(); ++i) {
    out.push_back(ring_[i]);
  }
  return out;
}

std::uint64_t FlowTracer::flows_sampled() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return flows_sampled_;
}

std::uint64_t FlowTracer::hops_recorded() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return hops_recorded_;
}

std::uint64_t FlowTracer::journeys_evicted() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return journeys_evicted_;
}

std::string to_json(const FlowJourney& journey,
                    const std::string& decisions_json) {
  std::string out = "{\"id\":\"";
  out += util::format("%016llx",
                      static_cast<unsigned long long>(journey.id));
  out += "\",\"ip\":\"";
  out += journey.ip.to_string();
  out += "\",\"link\":\"";
  out += util::format("%u/%u", static_cast<unsigned>(journey.link.router),
                      static_cast<unsigned>(journey.link.iface));
  out += "\",\"first_ts\":";
  out += std::to_string(journey.first_ts);
  out += ",\"hops_dropped\":";
  out += std::to_string(journey.hops_dropped);
  out += ",\"hops\":[";
  bool first = true;
  for (const FlowHop& hop : journey.hops) {
    if (!first) out += ',';
    first = false;
    out += "{\"stage\":\"";
    out += to_string(hop.kind);
    out += "\",\"detail\":";
    out += std::to_string(hop.detail);
    out += ",\"data_ts\":";
    out += std::to_string(hop.data_ts);
    out += ",\"mono_ns\":";
    out += std::to_string(hop.mono_ns);
    out += '}';
  }
  out += "],\"decisions\":[";
  out += decisions_json;
  out += "]}";
  return out;
}

}  // namespace ipd::obs
