#include "obs/watchdog.hpp"

#include <algorithm>
#include <chrono>

#include "obs/cpu_profiler.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/thread.hpp"

namespace ipd::obs {

// Task state machine, all lock-free after registration:
//
//   armed_until_ns == 0                     disarmed — can never stall
//   armed_until_ns  > now                   healthy
//   armed_until_ns <= now && !stalled       -> emit report, set stalled
//   stalled && beat()                       -> clear stalled, re-arm
//
// The beating thread's identity (pthread_t + name) is recorded on its
// first beat, guarded by an acquire/release flag: pthread_t is not
// atomically writable, so readers (the monitor) only look after the flag
// says the slot is complete. A task is assumed to be beaten by one thread;
// if ownership ever migrates, the stack would be captured on the original
// thread — acceptable for a diagnostics tool, documented here.
struct Watchdog::Task {
  explicit Task(std::string task_name, std::int64_t budget)
      : name(std::move(task_name)), budget_ms(budget) {}

  const std::string name;
  const std::int64_t budget_ms;
  std::atomic<std::int64_t> armed_until_ns{0};
  std::atomic<std::int64_t> last_beat_ns{0};
  std::atomic<bool> stalled{false};
  std::atomic<bool> thread_known{false};
  pthread_t thread{};           // valid once thread_known
  char thread_name[16] = {};    // valid once thread_known
};

Watchdog::Watchdog(WatchdogConfig config) : config_(config) {
  config_.poll_interval_ms = std::max<std::int64_t>(config_.poll_interval_ms, 10);
  config_.report_capacity = std::max<std::size_t>(config_.report_capacity, 1);
}

Watchdog::~Watchdog() { stop(); }

Watchdog::TaskId Watchdog::register_task(std::string name,
                                         std::int64_t budget_ms) {
  std::lock_guard<std::mutex> guard(mutex_);
  tasks_.push_back(
      std::make_unique<Task>(std::move(name), std::max<std::int64_t>(budget_ms, 1)));
  if (task_gauge_ != nullptr) {
    task_gauge_->set(static_cast<double>(tasks_.size()));
  }
  return tasks_.size() - 1;
}

void Watchdog::beat(TaskId id) noexcept {
  Task* task = nullptr;
  {
    // Registration only appends; ids are stable. The lock is only needed
    // to read the vector while another thread may be growing it.
    std::lock_guard<std::mutex> guard(mutex_);
    if (id >= tasks_.size()) return;
    task = tasks_[id].get();
  }
  const std::int64_t now = monotonic_ns();
  if (!task->thread_known.load(std::memory_order_acquire)) {
    task->thread = pthread_self();
    const char* name = util::current_thread_name();
    std::size_t n = 0;
    while (n < sizeof(task->thread_name) - 1 && name[n] != '\0') {
      task->thread_name[n] = name[n];
      ++n;
    }
    task->thread_name[n] = '\0';
    task->thread_known.store(true, std::memory_order_release);
  }
  task->last_beat_ns.store(now, std::memory_order_relaxed);
  task->stalled.store(false, std::memory_order_relaxed);
  task->armed_until_ns.store(now + task->budget_ms * 1000000,
                             std::memory_order_release);
}

void Watchdog::disarm(TaskId id) noexcept {
  std::lock_guard<std::mutex> guard(mutex_);
  if (id >= tasks_.size()) return;
  tasks_[id]->armed_until_ns.store(0, std::memory_order_release);
  tasks_[id]->stalled.store(false, std::memory_order_relaxed);
}

void Watchdog::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false, std::memory_order_relaxed);
  thread_ = std::make_unique<std::thread>([this] { monitor_loop(); });
}

void Watchdog::stop() {
  if (!running_.exchange(false)) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_ && thread_->joinable()) thread_->join();
  thread_.reset();
}

bool Watchdog::running() const noexcept {
  return running_.load(std::memory_order_acquire);
}

void Watchdog::monitor_loop() {
  util::set_current_thread_name("ipd-watchdog");
  // Sleep in small slices so stop() never waits a full poll period.
  const std::int64_t poll_ns = config_.poll_interval_ms * 1000000;
  std::int64_t next_check = monotonic_ns();
  while (!stop_requested_.load(std::memory_order_acquire)) {
    const std::int64_t now = monotonic_ns();
    if (now >= next_check) {
      check_tasks(now);
      next_check = now + poll_ns;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void Watchdog::check_tasks(std::int64_t now_ns) {
  std::vector<Task*> tasks;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    tasks.reserve(tasks_.size());
    for (const auto& t : tasks_) tasks.push_back(t.get());
  }
  for (Task* task : tasks) {
    const std::int64_t deadline =
        task->armed_until_ns.load(std::memory_order_acquire);
    if (deadline == 0 || now_ns <= deadline) continue;
    if (task->stalled.exchange(true, std::memory_order_acq_rel)) {
      continue;  // already reported this episode
    }

    StallReport report;
    report.task = task->name;
    report.detected_ns = now_ns;
    report.budget_ms = task->budget_ms;
    report.overdue_ms = (now_ns - deadline) / 1000000;
    if (task->thread_known.load(std::memory_order_acquire)) {
      report.thread_name = task->thread_name;
      CpuProfiler::Sample sample;
      if (capture_thread_stack(task->thread, sample,
                               config_.capture_timeout_ms)) {
        report.stack = folded_stack_line(sample);
        report.stack_captured = true;
      }
    }

    stalls_total_.fetch_add(1, std::memory_order_relaxed);
    if (stall_counter_ != nullptr) stall_counter_->inc();
    util::log_error("watchdog stall",
                    {{"task", report.task},
                     {"thread", report.thread_name},
                     {"budget_ms", util::format("%lld", static_cast<long long>(
                                                            report.budget_ms))},
                     {"overdue_ms", util::format("%lld", static_cast<long long>(
                                                             report.overdue_ms))},
                     {"stack", report.stack_captured ? report.stack
                                                     : "<not captured>"}});

    std::function<void(const StallReport&)> sink;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      reports_.push_back(report);
      if (reports_.size() > config_.report_capacity) {
        reports_.erase(reports_.begin());
      }
      sink = on_stall_;
    }
    if (sink) sink(report);
  }
}

std::vector<Watchdog::StallReport> Watchdog::reports() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return reports_;
}

std::uint64_t Watchdog::stalls_total() const noexcept {
  return stalls_total_.load(std::memory_order_relaxed);
}

void Watchdog::set_on_stall(std::function<void(const StallReport&)> fn) {
  std::lock_guard<std::mutex> guard(mutex_);
  on_stall_ = std::move(fn);
}

void Watchdog::bind_metrics(MetricsRegistry& registry) {
  Counter& counter = registry.counter(
      "ipd_watchdog_stalls_total", "Missed heartbeat deadlines detected");
  Gauge& gauge =
      registry.gauge("ipd_watchdog_tasks", "Tasks registered with the watchdog");
  std::lock_guard<std::mutex> guard(mutex_);
  stall_counter_ = &counter;
  task_gauge_ = &gauge;
  task_gauge_->set(static_cast<double>(tasks_.size()));
}

std::vector<Watchdog::TaskView> Watchdog::tasks() const {
  std::vector<Task*> tasks;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    tasks.reserve(tasks_.size());
    for (const auto& t : tasks_) tasks.push_back(t.get());
  }
  const std::int64_t now = monotonic_ns();
  std::vector<TaskView> out;
  out.reserve(tasks.size());
  for (const Task* task : tasks) {
    TaskView view;
    view.name = task->name;
    view.budget_ms = task->budget_ms;
    view.armed = task->armed_until_ns.load(std::memory_order_acquire) != 0;
    view.stalled = task->stalled.load(std::memory_order_relaxed);
    const std::int64_t beat = task->last_beat_ns.load(std::memory_order_relaxed);
    view.last_beat_ms_ago = beat == 0 ? -1 : (now - beat) / 1000000;
    out.push_back(std::move(view));
  }
  return out;
}

std::string Watchdog::to_json() const {
  std::string out = "{\"tasks\":[";
  bool first = true;
  for (const auto& t : tasks()) {
    if (!first) out += ",";
    first = false;
    out += util::format(
        "{\"task\":\"%s\",\"budget_ms\":%lld,\"armed\":%s,\"stalled\":%s,"
        "\"last_beat_ms_ago\":%lld}",
        util::json_escape(t.name).c_str(),
        static_cast<long long>(t.budget_ms), t.armed ? "true" : "false",
        t.stalled ? "true" : "false",
        static_cast<long long>(t.last_beat_ms_ago));
  }
  out += util::format("],\"stalls_total\":%llu,\"reports\":[",
                      static_cast<unsigned long long>(stalls_total()));
  first = true;
  for (const auto& r : reports()) {
    if (!first) out += ",";
    first = false;
    out += report_json(r);
  }
  out += "]}";
  return out;
}

std::string Watchdog::report_json(const StallReport& report) {
  return util::format(
      "{\"task\":\"%s\",\"thread\":\"%s\",\"budget_ms\":%lld,"
      "\"overdue_ms\":%lld,\"stack_captured\":%s,\"stack\":\"%s\"}",
      util::json_escape(report.task).c_str(),
      util::json_escape(report.thread_name).c_str(),
      static_cast<long long>(report.budget_ms),
      static_cast<long long>(report.overdue_ms),
      report.stack_captured ? "true" : "false",
      util::json_escape(report.stack).c_str());
}

}  // namespace ipd::obs
