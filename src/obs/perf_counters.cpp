#include "obs/perf_counters.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#define IPD_HAVE_PERF_EVENTS 1
#else
#define IPD_HAVE_PERF_EVENTS 0
#endif

namespace ipd::obs {

namespace {

util::LogSite g_perf_warn_site;

const char* errno_hint(int err) noexcept {
  switch (err) {
    case EACCES:
    case EPERM:
      return "perf_event_paranoid too strict or CAP_PERFMON missing";
    case ENOSYS:
      return "perf_event_open not supported (kernel or seccomp)";
    case ENOENT:
      return "event not supported on this machine (no PMU exposed?)";
    default:
      return "perf_event_open failed";
  }
}

}  // namespace

const char* to_string(PerfEvent event) noexcept {
  switch (event) {
    case PerfEvent::TaskClock:
      return "task_clock";
    case PerfEvent::Cycles:
      return "cycles";
    case PerfEvent::Instructions:
      return "instructions";
    case PerfEvent::LlcLoads:
      return "llc_loads";
    case PerfEvent::LlcMisses:
      return "llc_misses";
    case PerfEvent::BranchMisses:
      return "branch_misses";
  }
  return "unknown";
}

double PerfPhaseTotals::ipc() const noexcept {
  const std::uint64_t cycles = (*this)[PerfEvent::Cycles];
  if (cycles == 0) return 0.0;
  return static_cast<double>((*this)[PerfEvent::Instructions]) /
         static_cast<double>(cycles);
}

double PerfPhaseTotals::llc_miss_rate() const noexcept {
  const std::uint64_t loads = (*this)[PerfEvent::LlcLoads];
  if (loads == 0) return 0.0;
  return static_cast<double>((*this)[PerfEvent::LlcMisses]) /
         static_cast<double>(loads);
}

// ---------------------------------------------------------------------------
// PerfGroup: one thread's grouped perf fds (+ optional rdpmc mmap pages)

class PerfGroup {
 public:
  PerfGroup(const PerfCountersConfig& config, bool disabled);
  ~PerfGroup();
  PerfGroup(const PerfGroup&) = delete;
  PerfGroup& operator=(const PerfGroup&) = delete;

  bool any_live() const noexcept { return leader_fd_ >= 0; }
  const std::array<bool, kNumPerfEvents>& live() const noexcept {
    return live_;
  }
  int first_errno() const noexcept { return first_errno_; }
  bool rdpmc_available() const noexcept { return rdpmc_ok_; }

  bool read(PerfReading& out) noexcept;
  bool rdpmc_read(PerfPoint& out) const noexcept;

 private:
#if IPD_HAVE_PERF_EVENTS
  static std::uint64_t read_mmap_counter(
      const volatile perf_event_mmap_page* page) noexcept;
  std::array<void*, 3> page_{};  // cycles, instructions, llc_misses
#endif
  int leader_fd_ = -1;
  std::array<int, kNumPerfEvents> fd_;
  // Position of each live event in the group read's values[] (group
  // values come back in event-creation order, failed opens excluded).
  std::array<int, kNumPerfEvents> slot_;
  std::array<bool, kNumPerfEvents> live_{};
  int first_errno_ = 0;
  bool rdpmc_ok_ = false;
  int live_count_ = 0;
};

#if IPD_HAVE_PERF_EVENTS

namespace {

int perf_event_open_syscall(perf_event_attr* attr, int group_fd) noexcept {
  return static_cast<int>(::syscall(SYS_perf_event_open, attr, /*pid=*/0,
                                    /*cpu=*/-1, group_fd, /*flags=*/0UL));
}

perf_event_attr make_attr(PerfEvent event) noexcept {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  // Self-monitoring under perf_event_paranoid <= 2 requires excluding
  // kernel and hypervisor; user-mode cost is what we optimize anyway.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.disabled = 0;  // count from creation; scopes read deltas
  switch (event) {
    case PerfEvent::TaskClock:
      attr.type = PERF_TYPE_SOFTWARE;
      attr.config = PERF_COUNT_SW_TASK_CLOCK;
      break;
    case PerfEvent::Cycles:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_CPU_CYCLES;
      break;
    case PerfEvent::Instructions:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_INSTRUCTIONS;
      break;
    case PerfEvent::LlcLoads:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_LL |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_ACCESS << 16);
      break;
    case PerfEvent::LlcMisses:
      attr.type = PERF_TYPE_HW_CACHE;
      attr.config = PERF_COUNT_HW_CACHE_LL |
                    (PERF_COUNT_HW_CACHE_OP_READ << 8) |
                    (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
      break;
    case PerfEvent::BranchMisses:
      attr.type = PERF_TYPE_HARDWARE;
      attr.config = PERF_COUNT_HW_BRANCH_MISSES;
      break;
  }
  return attr;
}

}  // namespace

PerfGroup::PerfGroup(const PerfCountersConfig& config, bool disabled) {
  fd_.fill(-1);
  slot_.fill(-1);
  if (disabled) return;
  for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
    if (config.simulate_errno != 0) {
      if (first_errno_ == 0) first_errno_ = config.simulate_errno;
      continue;
    }
    perf_event_attr attr = make_attr(static_cast<PerfEvent>(i));
    const int fd = perf_event_open_syscall(&attr, leader_fd_);
    if (fd < 0) {
      if (first_errno_ == 0) first_errno_ = errno;
      continue;
    }
    fd_[i] = fd;
    live_[i] = true;
    slot_[i] = live_count_++;
    if (leader_fd_ < 0) leader_fd_ = fd;
  }
  if (!config.per_phase || leader_fd_ < 0) return;

#if defined(__x86_64__) || defined(__i386__)
  // rdpmc pages for the per-phase sampler. Only hardware events have a
  // PMU index; map the three the sampler reads. Any page lacking
  // cap_user_rdpmc (no PMU, or /sys/devices/cpu/rdpmc=0) disables the
  // whole fast path — a partial sampler would skew ratios.
  const std::array<PerfEvent, 3> wanted = {
      PerfEvent::Cycles, PerfEvent::Instructions, PerfEvent::LlcMisses};
  bool all_ok = true;
  for (std::size_t w = 0; w < wanted.size(); ++w) {
    const std::size_t i = static_cast<std::size_t>(wanted[w]);
    if (!live_[i]) {
      all_ok = false;
      break;
    }
    void* page = ::mmap(nullptr, static_cast<std::size_t>(::getpagesize()),
                        PROT_READ, MAP_SHARED, fd_[i], 0);
    if (page == MAP_FAILED) {
      all_ok = false;
      break;
    }
    page_[w] = page;
    const auto* meta = static_cast<const volatile perf_event_mmap_page*>(page);
    if (!meta->cap_user_rdpmc) all_ok = false;
  }
  rdpmc_ok_ = all_ok;
  if (!rdpmc_ok_) {
    for (void*& page : page_) {
      if (page != nullptr) {
        ::munmap(page, static_cast<std::size_t>(::getpagesize()));
        page = nullptr;
      }
    }
  }
#endif
}

PerfGroup::~PerfGroup() {
  for (void* page : page_) {
    if (page != nullptr) {
      ::munmap(page, static_cast<std::size_t>(::getpagesize()));
    }
  }
  for (const int fd : fd_) {
    if (fd >= 0) ::close(fd);
  }
}

bool PerfGroup::read(PerfReading& out) noexcept {
  if (leader_fd_ < 0) return false;
  // PERF_FORMAT_GROUP layout: { nr, time_enabled, time_running, values[nr] }.
  std::array<std::uint64_t, 3 + kNumPerfEvents> buf{};
  const ssize_t want = static_cast<ssize_t>(
      (3 + static_cast<std::size_t>(live_count_)) * sizeof(std::uint64_t));
  if (::read(leader_fd_, buf.data(), static_cast<std::size_t>(want)) != want) {
    return false;
  }
  out = PerfReading{};
  out.time_enabled_ns = buf[1];
  out.time_running_ns = buf[2];
  for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
    if (live_[i]) out.value[i] = buf[3 + static_cast<std::size_t>(slot_[i])];
  }
  return true;
}

std::uint64_t PerfGroup::read_mmap_counter(
    const volatile perf_event_mmap_page* page) noexcept {
#if defined(__x86_64__) || defined(__i386__)
  // The mmap-page seqlock protocol from perf_event_open(2): offset is the
  // kernel-accumulated count; while the event is scheduled on the PMU
  // (index != 0) the in-flight delta is rdpmc(index - 1), sign-extended
  // from pmc_width bits.
  for (;;) {
    const std::uint32_t seq = page->lock;
    __atomic_thread_fence(__ATOMIC_ACQUIRE);
    std::uint64_t count = static_cast<std::uint64_t>(page->offset);
    const std::uint32_t index = page->index;
    if (page->cap_user_rdpmc && index != 0) {
      std::uint64_t pmc = __builtin_ia32_rdpmc(index - 1);
      const unsigned width = page->pmc_width;
      if (width < 64) {
        pmc <<= 64 - width;
        pmc = static_cast<std::uint64_t>(static_cast<std::int64_t>(pmc) >>
                                         (64 - width));
      }
      count += pmc;
    }
    __atomic_thread_fence(__ATOMIC_ACQUIRE);
    if (page->lock == seq) return count;
  }
#else
  (void)page;
  return 0;
#endif
}

bool PerfGroup::rdpmc_read(PerfPoint& out) const noexcept {
  if (!rdpmc_ok_) return false;
  out.cycles = read_mmap_counter(
      static_cast<const volatile perf_event_mmap_page*>(page_[0]));
  out.instructions = read_mmap_counter(
      static_cast<const volatile perf_event_mmap_page*>(page_[1]));
  out.llc_misses = read_mmap_counter(
      static_cast<const volatile perf_event_mmap_page*>(page_[2]));
  return true;
}

#else  // !IPD_HAVE_PERF_EVENTS

PerfGroup::PerfGroup(const PerfCountersConfig& config, bool disabled) {
  fd_.fill(-1);
  slot_.fill(-1);
  if (!disabled) {
    first_errno_ =
        config.simulate_errno != 0 ? config.simulate_errno : ENOSYS;
  }
}
PerfGroup::~PerfGroup() = default;
bool PerfGroup::read(PerfReading&) noexcept { return false; }
bool PerfGroup::rdpmc_read(PerfPoint&) const noexcept { return false; }

#endif  // IPD_HAVE_PERF_EVENTS

// ---------------------------------------------------------------------------
// PerfThreadSampler

bool PerfThreadSampler::read(PerfPoint& out) const noexcept {
  return group_->rdpmc_read(out);
}

// ---------------------------------------------------------------------------
// PerfCounters

struct PerfCounters::PhaseSlot {
  std::string name;
  std::atomic<std::uint64_t> scopes{0};
  std::array<std::atomic<std::uint64_t>, kNumPerfEvents> value{};
  std::atomic<std::uint64_t> time_enabled_ns{0};
  std::atomic<std::uint64_t> time_running_ns{0};
};

struct PerfCounters::ThreadState {
  PerfGroup group;
  PerfThreadSampler sampler;
  explicit ThreadState(const PerfCountersConfig& config, bool disabled)
      : group(config, disabled), sampler(&group) {}
};

namespace {

std::atomic<std::uint64_t> g_perf_instance_ids{1};

/// Single-entry per-thread cache mapping the most recently used
/// PerfCounters instance to this thread's state (type-erased: ThreadState
/// is a private nested type). Instance ids are never reused, so a stale
/// entry can never alias a new instance.
struct ThreadCacheEntry {
  std::uint64_t instance_id = 0;
  void* state = nullptr;
};
thread_local ThreadCacheEntry t_perf_cache;

}  // namespace

PerfCounters::PerfCounters(PerfCountersConfig config)
    : config_(config),
      instance_id_(g_perf_instance_ids.fetch_add(1)),
      phases_(std::make_unique<std::array<PhaseSlot, kMaxPhases>>()) {
  const char* disable = std::getenv("IPD_PERF_DISABLE");
  disabled_ = disable != nullptr && disable[0] != '\0' && disable[0] != '0';

  // Probe availability eagerly on the constructing thread, so callers can
  // branch on available() immediately (and the warn-once fires at startup
  // rather than mid-ingest).
  ThreadState* state = state_for_this_thread();
  available_ = state != nullptr && state->group.any_live();
  if (state != nullptr) {
    event_live_ = state->group.live();
    open_errno_ = state->group.first_errno();
  }
  if (disabled_) {
    util::log_limited(g_perf_warn_site, 1, util::LogLevel::Warn,
                      "perf counters disabled by IPD_PERF_DISABLE");
  } else if (!available_) {
    util::log_limited(g_perf_warn_site, 1, util::LogLevel::Warn,
                      "perf counters unavailable; continuing without them",
                      {{"errno", open_errno_},
                       {"hint", errno_hint(open_errno_)}});
  } else if (!event_live_[static_cast<std::size_t>(PerfEvent::Cycles)]) {
    util::log_limited(g_perf_warn_site, 1, util::LogLevel::Warn,
                      "hardware perf events unavailable; software counters "
                      "only (no PMU exposed?)",
                      {{"errno", open_errno_},
                       {"hint", errno_hint(open_errno_)}});
  }
}

PerfCounters::~PerfCounters() = default;

PerfCounters::ThreadState* PerfCounters::state_for_this_thread() noexcept {
  if (t_perf_cache.instance_id == instance_id_) {
    return static_cast<ThreadState*>(t_perf_cache.state);
  }
  std::unique_ptr<ThreadState> fresh;
  try {
    fresh = std::make_unique<ThreadState>(config_, disabled_);
  } catch (...) {
    return nullptr;
  }
  ThreadState* state = fresh.get();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    threads_.push_back(std::move(fresh));
  }
  t_perf_cache = {instance_id_, state};
  return state;
}

int PerfCounters::phase(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const int n = phase_count_.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    if ((*phases_)[static_cast<std::size_t>(i)].name == name) return i;
  }
  if (n >= kMaxPhases) {
    util::log_warn("perf phase table full; extra phases are not tracked",
                   {{"phase", std::string(name)}, {"max", kMaxPhases}});
    return -1;
  }
  (*phases_)[static_cast<std::size_t>(n)].name = std::string(name);
  phase_count_.store(n + 1, std::memory_order_release);
  return n;
}

PerfThreadSampler* PerfCounters::thread_sampler() noexcept {
  if (!available_ || !config_.per_phase) return nullptr;
  ThreadState* state = state_for_this_thread();
  if (state == nullptr || !state->group.rdpmc_available()) return nullptr;
  return &state->sampler;
}

bool PerfCounters::read_current(PerfReading& out) noexcept {
  if (!available_) return false;
  ThreadState* state = state_for_this_thread();
  return state != nullptr && state->group.read(out);
}

void PerfCounters::add_phase_delta(int phase_id,
                                   const PerfReading& delta) noexcept {
  if (phase_id < 0 || phase_id >= kMaxPhases) return;
  PhaseSlot& slot = (*phases_)[static_cast<std::size_t>(phase_id)];
  slot.scopes.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
    if (delta.value[i] != 0) {
      slot.value[i].fetch_add(delta.value[i], std::memory_order_relaxed);
    }
  }
  slot.time_enabled_ns.fetch_add(delta.time_enabled_ns,
                                 std::memory_order_relaxed);
  slot.time_running_ns.fetch_add(delta.time_running_ns,
                                 std::memory_order_relaxed);
}

void PerfCounters::add_phase_point(int phase_id,
                                   const PerfPoint& delta) noexcept {
  if (phase_id < 0 || phase_id >= kMaxPhases) return;
  if (delta.cycles == 0 && delta.instructions == 0 && delta.llc_misses == 0) {
    return;
  }
  PhaseSlot& slot = (*phases_)[static_cast<std::size_t>(phase_id)];
  slot.scopes.fetch_add(1, std::memory_order_relaxed);
  slot.value[static_cast<std::size_t>(PerfEvent::Cycles)].fetch_add(
      delta.cycles, std::memory_order_relaxed);
  slot.value[static_cast<std::size_t>(PerfEvent::Instructions)].fetch_add(
      delta.instructions, std::memory_order_relaxed);
  slot.value[static_cast<std::size_t>(PerfEvent::LlcMisses)].fetch_add(
      delta.llc_misses, std::memory_order_relaxed);
}

std::vector<PerfPhaseTotals> PerfCounters::snapshot() const {
  const int n = phase_count_.load(std::memory_order_acquire);
  std::vector<PerfPhaseTotals> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const PhaseSlot& slot = (*phases_)[static_cast<std::size_t>(i)];
    PerfPhaseTotals totals;
    totals.name = slot.name;
    totals.scopes = slot.scopes.load(std::memory_order_relaxed);
    for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
      totals.value[e] = slot.value[e].load(std::memory_order_relaxed);
    }
    totals.time_enabled_ns =
        slot.time_enabled_ns.load(std::memory_order_relaxed);
    totals.time_running_ns =
        slot.time_running_ns.load(std::memory_order_relaxed);
    out.push_back(std::move(totals));
  }
  return out;
}

void PerfCounters::publish(MetricsRegistry& registry) {
  registry
      .gauge("ipd_perf_available",
             "1 when perf_event_open counters are live, else 0")
      .set(available_ ? 1.0 : 0.0);
  if (!available_) return;
  for (const PerfPhaseTotals& totals : snapshot()) {
    if (totals.scopes == 0 && totals[PerfEvent::Cycles] == 0) continue;
    const Labels labels = {{"phase", totals.name}};
    registry
        .gauge("ipd_perf_scopes", "completed perf scopes per phase", labels)
        .set(static_cast<double>(totals.scopes));
    for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
      if (!event_live_[e] || totals.value[e] == 0) continue;
      registry
          .gauge(std::string("ipd_perf_") +
                     to_string(static_cast<PerfEvent>(e)),
                 "accumulated perf counter value per phase", labels)
          .set(static_cast<double>(totals.value[e]));
    }
    if (totals[PerfEvent::Cycles] != 0) {
      registry
          .gauge("ipd_perf_ipc", "instructions per cycle, per phase", labels)
          .set(totals.ipc());
    }
    if (totals[PerfEvent::LlcLoads] != 0) {
      registry
          .gauge("ipd_perf_llc_miss_rate",
                 "LLC read misses / LLC read accesses, per phase", labels)
          .set(totals.llc_miss_rate());
    }
  }
}

std::string PerfCounters::to_json() const {
  std::string out = util::format(
      "{\"available\":%s,\"disabled\":%s,\"errno\":%d,\"per_phase\":%s,"
      "\"events\":{",
      available_ ? "true" : "false", disabled_ ? "true" : "false",
      open_errno_, config_.per_phase ? "true" : "false");
  for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
    if (e != 0) out += ',';
    out += util::format("\"%s\":%s", to_string(static_cast<PerfEvent>(e)),
                        event_live_[e] ? "true" : "false");
  }
  out += "}";
  if (!available_ && open_errno_ != 0) {
    out += util::format(",\"error\":\"%s\"", errno_hint(open_errno_));
  }
  out += ",\"phases\":[";
  bool first = true;
  for (const PerfPhaseTotals& totals : snapshot()) {
    if (!first) out += ',';
    first = false;
    out += util::format(
        "{\"name\":\"%s\",\"scopes\":%llu",
        util::json_escape(totals.name).c_str(),
        static_cast<unsigned long long>(totals.scopes));
    for (std::size_t e = 0; e < kNumPerfEvents; ++e) {
      out += util::format(
          ",\"%s\":%llu", to_string(static_cast<PerfEvent>(e)),
          static_cast<unsigned long long>(totals.value[e]));
    }
    out += util::format(
        ",\"ipc\":%.4g,\"llc_miss_rate\":%.4g,"
        "\"time_enabled_ns\":%llu,\"time_running_ns\":%llu}",
        totals.ipc(), totals.llc_miss_rate(),
        static_cast<unsigned long long>(totals.time_enabled_ns),
        static_cast<unsigned long long>(totals.time_running_ns));
  }
  out += "]}";
  return out;
}

std::size_t PerfCounters::memory_bytes() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sizeof(*this) + sizeof(*phases_) +
         threads_.size() * sizeof(ThreadState);
}

// ---------------------------------------------------------------------------
// PerfScope

PerfScope::PerfScope(PerfCounters* perf, int phase_id) noexcept {
  if (perf == nullptr || phase_id < 0 || !perf->available()) return;
  if (!perf->read_current(start_)) return;
  perf_ = perf;
  phase_ = phase_id;
}

PerfReading PerfScope::close() noexcept {
  PerfReading delta{};
  if (perf_ == nullptr) return delta;
  PerfReading end;
  if (perf_->read_current(end)) {
    for (std::size_t i = 0; i < kNumPerfEvents; ++i) {
      delta.value[i] = end.value[i] - start_.value[i];
    }
    delta.time_enabled_ns = end.time_enabled_ns - start_.time_enabled_ns;
    delta.time_running_ns = end.time_running_ns - start_.time_running_ns;
    perf_->add_phase_delta(phase_, delta);
  }
  perf_ = nullptr;
  return delta;
}

}  // namespace ipd::obs
