// Lock-cheap metrics registry.
//
// Instruments are registered once (under a mutex) and then updated through
// stable pointers with relaxed atomics — the hot path is one fetch_add, no
// locks, no allocation. Three instrument kinds, mirroring the Prometheus
// data model:
//
//   Counter    — monotonically increasing 64-bit count,
//   Gauge      — a double that can go up and down (set/add),
//   Histogram  — fixed upper-bound buckets with a total sum and count;
//                quantiles are estimated by linear interpolation inside
//                the hit bucket (the standard Prometheus approximation).
//
// Identity is (name, sorted label set). Asking for the same identity twice
// returns the same instrument, so modules can share counters without
// coordinating. Exporters consume the registry via collect(), which copies
// a consistent-enough snapshot (values are read with relaxed loads; the
// registry is for monitoring, not for synchronization).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ipd::obs {

/// Label set: (key, value) pairs. Stored sorted by key so that label order
/// at the call site does not create distinct identities.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType : std::uint8_t { Counter, Gauge, Histogram };

const char* to_string(MetricType type) noexcept;

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept { value_.fetch_add(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// `bounds` are the inclusive bucket upper limits, strictly increasing;
  /// a +Inf overflow bucket is implicit.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  const std::vector<double>& bounds() const noexcept { return bounds_; }

  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1,
  /// last entry is the +Inf overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Estimate the q-quantile (q in [0,1]) by linear interpolation within
  /// the bucket containing it. Returns 0 when empty. Values beyond the
  /// last finite bound clamp to that bound (the overflow bucket has no
  /// upper edge to interpolate against).
  double quantile(double q) const;

  /// `n` exponentially growing bounds: start, start*factor, ...
  static std::vector<double> exponential_bounds(double start, double factor,
                                                std::size_t n);
  /// `n` evenly spaced bounds: start, start+width, ...
  static std::vector<double> linear_bounds(double start, double width,
                                           std::size_t n);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Read-only copy of one instrument, produced by collect().
struct SampleSnapshot {
  Labels labels;
  double value = 0.0;                     // counter/gauge
  std::vector<double> bounds;             // histogram only
  std::vector<std::uint64_t> cumulative;  // histogram: per-bound + +Inf
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// All instruments sharing one metric name.
struct FamilySnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::Counter;
  std::vector<SampleSnapshot> samples;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. The returned reference is stable for the registry's
  /// lifetime. Re-registering a name with a different type throws
  /// std::invalid_argument; `help` is taken from the first registration.
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds, Labels labels = {});

  /// Families in registration order, samples in label order.
  std::vector<FamilySnapshot> collect() const;

  std::size_t family_count() const;
  std::size_t instrument_count() const;

  /// Rough heap usage of the registry itself (names, labels, buckets) —
  /// feeds the engine's resource accounting.
  std::size_t memory_bytes() const;

 private:
  struct Instrument {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricType type;
    std::vector<std::unique_ptr<Instrument>> instruments;
  };

  Instrument& find_or_create(std::string_view name, std::string_view help,
                             MetricType type, Labels&& labels);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_;  // registration order
};

/// Records the elapsed wall time into a histogram (in seconds) when it
/// leaves scope. A null histogram disables it without branching at the
/// call sites.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::int64_t start_ns_ = 0;
};

/// Monotonic clock in nanoseconds (exposed for phase accumulators).
std::int64_t monotonic_ns() noexcept;

/// Bridge util::logging's rate-limit drop accounting into `registry`:
/// registers `ipd_log_dropped_total{level=...}` counters (seeded with the
/// drops recorded so far) and installs the logging drop hook to keep them
/// live. Process-global — one registry at a time, and it must outlive the
/// binding; call unbind_log_drop_metrics() before destroying it.
void bind_log_drop_metrics(MetricsRegistry& registry);
void unbind_log_drop_metrics() noexcept;

}  // namespace ipd::obs
