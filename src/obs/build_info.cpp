#include "obs/build_info.hpp"

// The IPD_BUILD_* macros are injected by src/obs/CMakeLists.txt onto this
// translation unit only (see set_source_files_properties there); the
// fallbacks keep non-CMake compiles (clangd, quick checks) working.
#ifndef IPD_BUILD_GIT_SHA
#define IPD_BUILD_GIT_SHA "unknown"
#endif
#ifndef IPD_BUILD_TYPE
#define IPD_BUILD_TYPE "unspecified"
#endif
#ifndef IPD_BUILD_COMPILER
#define IPD_BUILD_COMPILER "unknown"
#endif
#ifndef IPD_BUILD_SANITIZE
#define IPD_BUILD_SANITIZE "none"
#endif

namespace ipd::obs {

const BuildInfo& build_info() noexcept {
  static const BuildInfo info{IPD_BUILD_GIT_SHA, IPD_BUILD_TYPE,
                              IPD_BUILD_COMPILER, IPD_BUILD_SANITIZE};
  return info;
}

void register_build_info(MetricsRegistry& registry) {
  const BuildInfo& info = build_info();
  registry
      .gauge("ipd_build_info",
             "Build identity; constant 1, the labels carry the data",
             Labels{{"build", info.build_type},
                    {"compiler", info.compiler},
                    {"sanitizer", info.sanitizer},
                    {"sha", info.git_sha}})
      .set(1.0);
}

std::string build_info_line() {
  const BuildInfo& info = build_info();
  return "sha=" + info.git_sha + " build=" + info.build_type +
         " cc=" + info.compiler + " sanitizer=" + info.sanitizer;
}

}  // namespace ipd::obs
