// Stall watchdog with heartbeat registration.
//
// Long-running loops (collector drain, the HTTP serve loop) and bounded
// stages (a stage-2 cycle) register a named task with a deadline budget and
// then either beat it every iteration or arm/disarm it around the bounded
// section (WatchdogScope). A monitor thread ("ipd-watchdog") polls the
// armed deadlines; when one is missed it captures the delinquent thread's
// stack via obs::capture_thread_stack (SIGURG + the CpuProfiler backtrace
// machinery) and emits a structured StallReport — once per stall episode,
// re-arming on the next beat.
//
// Beat cost is one relaxed atomic store (plus a one-time thread identity
// registration on the first beat from a given thread), so beating from a
// sub-millisecond drain loop is free. Deadlines are *budgets chosen by the
// registrant*: a slow sanitizer host does not false-positive as long as the
// budget covers the worst honest iteration — production wiring uses tens of
// seconds against sub-second loops (see DESIGN.md §6g).
#pragma once

#include <pthread.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace ipd::obs {

struct WatchdogConfig {
  /// Deadline poll cadence. Detection latency is one poll period.
  std::int64_t poll_interval_ms = 250;
  /// Stall reports kept (FIFO, oldest dropped).
  std::size_t report_capacity = 32;
  /// How long the monitor waits for the stalled thread's signal handler
  /// to deliver a stack (a thread wedged in uninterruptible sleep never
  /// answers; the report then says so instead of showing frames).
  int capture_timeout_ms = 500;
};

class Watchdog {
 public:
  using TaskId = std::size_t;

  explicit Watchdog(WatchdogConfig config = {});
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Register a named task with its deadline budget. Tasks are never
  /// unregistered (they are a handful of static pipeline stages); a task
  /// with no beat yet is disarmed and can never stall.
  TaskId register_task(std::string name, std::int64_t budget_ms);

  /// Heartbeat: push the deadline `budget_ms` into the future and (first
  /// time only) record the calling thread's identity for stack capture.
  /// One relaxed store on the steady-state path.
  void beat(TaskId id) noexcept;

  /// Disarm: no deadline until the next beat. Used by scoped stages.
  void disarm(TaskId id) noexcept;

  void start();
  void stop();
  bool running() const noexcept;

  struct StallReport {
    std::string task;
    std::string thread_name;  ///< name of the thread that last beat
    std::int64_t detected_ns = 0;  ///< monotonic_ns at detection
    std::int64_t budget_ms = 0;
    std::int64_t overdue_ms = 0;  ///< how far past the deadline
    std::string stack;  ///< folded stack, or "" when capture failed
    bool stack_captured = false;
  };

  /// All retained reports, oldest first.
  std::vector<StallReport> reports() const;
  std::uint64_t stalls_total() const noexcept;

  /// Optional sink invoked (from the watchdog thread) on each stall.
  void set_on_stall(std::function<void(const StallReport&)> fn);

  /// Register ipd_watchdog_stalls_total / ipd_watchdog_tasks in
  /// `registry`; the counter is bumped at detection time so the TSDB and
  /// the watchdog-stall health rule see it on the next ingest.
  void bind_metrics(MetricsRegistry& registry);

  struct TaskView {
    std::string name;
    std::int64_t budget_ms = 0;
    bool armed = false;
    bool stalled = false;  ///< currently past deadline, report emitted
    std::int64_t last_beat_ms_ago = -1;  ///< -1: never beat
  };
  std::vector<TaskView> tasks() const;

  /// {"tasks":[...],"stalls_total":N,"reports":[...]} for /threads.
  std::string to_json() const;

  /// One report as a JSON object — the shape /threads embeds and
  /// `ipd_replay --stall-report-out` writes one-per-line.
  static std::string report_json(const StallReport& report);

 private:
  struct Task;
  void monitor_loop();
  void check_tasks(std::int64_t now_ns);

  WatchdogConfig config_;
  mutable std::mutex mutex_;  // tasks_ vector growth + reports_
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<StallReport> reports_;
  std::atomic<std::uint64_t> stalls_total_{0};
  std::function<void(const StallReport&)> on_stall_;
  Counter* stall_counter_ = nullptr;
  Gauge* task_gauge_ = nullptr;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::unique_ptr<std::thread> thread_;
};

/// Arms `task` on entry (deadline = now + its budget), disarms on exit —
/// the shape for bounded stages like one stage-2 cycle. A null watchdog
/// disables it without branching at call sites.
class WatchdogScope {
 public:
  WatchdogScope(Watchdog* watchdog, Watchdog::TaskId task) noexcept
      : watchdog_(watchdog), task_(task) {
    if (watchdog_ != nullptr) watchdog_->beat(task_);
  }
  ~WatchdogScope() {
    if (watchdog_ != nullptr) watchdog_->disarm(task_);
  }
  WatchdogScope(const WatchdogScope&) = delete;
  WatchdogScope& operator=(const WatchdogScope&) = delete;

 private:
  Watchdog* watchdog_;
  Watchdog::TaskId task_;
};

}  // namespace ipd::obs
