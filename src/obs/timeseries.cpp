#include "obs/timeseries.hpp"

#include <algorithm>

namespace ipd::obs {

TimeSeriesStore::TimeSeriesStore(TimeSeriesConfig config) : config_(config) {
  if (config_.points_per_series == 0) config_.points_per_series = 1;
}

std::string TimeSeriesStore::series_key(std::string_view name,
                                        const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

TimeSeriesStore::SeriesId TimeSeriesStore::open(std::string_view name,
                                                Labels labels) {
  std::sort(labels.begin(), labels.end());
  const std::string key = series_key(name, labels);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) return it->second;
  if (series_.size() >= config_.max_series) {
    ++rejected_capacity_;
    return kInvalidSeries;
  }
  Series s;
  s.name = std::string(name);
  s.labels = std::move(labels);
  s.ring.resize(config_.points_per_series);
  const auto id = static_cast<SeriesId>(series_.size());
  series_.push_back(std::move(s));
  index_.emplace(key, id);
  return id;
}

TimeSeriesStore::SeriesId TimeSeriesStore::find(std::string_view name,
                                                const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  const std::string key = series_key(name, sorted);
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  return it == index_.end() ? kInvalidSeries : it->second;
}

bool TimeSeriesStore::append(SeriesId id, util::Timestamp ts, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (id >= series_.size()) {
    ++rejected_out_of_order_;
    return false;
  }
  Series& s = series_[id];
  if (s.size > 0 && ts <= s.last_ts) {
    ++rejected_out_of_order_;
    return false;
  }
  const std::size_t cap = s.ring.size();
  if (s.size == cap) {
    // Ring full: the slot at head is the oldest point — overwrite it.
    // This is the retention policy: capacity × cadence = window.
    s.ring[s.head] = {ts, value};
    s.head = (s.head + 1) % cap;
  } else {
    s.ring[(s.head + s.size) % cap] = {ts, value};
    ++s.size;
  }
  s.last_ts = ts;
  ++points_appended_;
  return true;
}

std::size_t TimeSeriesStore::ingest(const MetricsRegistry& registry,
                                    util::Timestamp ts) {
  std::size_t appended = 0;
  for (const FamilySnapshot& family : registry.collect()) {
    for (const SampleSnapshot& sample : family.samples) {
      if (family.type == MetricType::Histogram) {
        const SeriesId sum = open(family.name + "_sum", sample.labels);
        const SeriesId count = open(family.name + "_count", sample.labels);
        if (append(sum, ts, sample.sum)) ++appended;
        if (append(count, ts, static_cast<double>(sample.count))) ++appended;
      } else {
        const SeriesId id = open(family.name, sample.labels);
        if (append(id, ts, sample.value)) ++appended;
      }
    }
  }
  return appended;
}

std::vector<TsPoint> TimeSeriesStore::points(SeriesId id,
                                             util::Timestamp from) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TsPoint> out;
  if (id >= series_.size()) return out;
  const Series& s = series_[id];
  out.reserve(s.size);
  for (std::size_t i = 0; i < s.size; ++i) {
    const TsPoint& p = s.ring[(s.head + i) % s.ring.size()];
    if (p.ts >= from) out.push_back(p);
  }
  return out;
}

std::optional<TsWindow> TimeSeriesStore::window(
    SeriesId id, std::size_t window_points) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (id >= series_.size() || window_points == 0) return std::nullopt;
  const Series& s = series_[id];
  if (s.size == 0) return std::nullopt;
  const std::size_t n = std::min(window_points, s.size);
  TsWindow w;
  w.points = n;
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const TsPoint& p = s.ring[(s.head + s.size - n + i) % s.ring.size()];
    if (i == 0) {
      w.first = p.value;
      w.first_ts = p.ts;
      w.min = w.max = p.value;
    } else {
      w.min = std::min(w.min, p.value);
      w.max = std::max(w.max, p.value);
    }
    w.last = p.value;
    w.last_ts = p.ts;
    sum += p.value;
  }
  w.mean = sum / static_cast<double>(n);
  return w;
}

std::vector<TimeSeriesStore::SeriesInfo> TimeSeriesStore::series_named(
    std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SeriesInfo> out;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const Series& s = series_[i];
    if (s.name != name) continue;
    out.push_back({static_cast<SeriesId>(i), s.name, s.labels, s.size,
                   s.size ? s.last_ts : 0});
  }
  return out;
}

std::vector<TimeSeriesStore::SeriesInfo> TimeSeriesStore::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SeriesInfo> out;
  out.reserve(series_.size());
  for (std::size_t i = 0; i < series_.size(); ++i) {
    const Series& s = series_[i];
    out.push_back({static_cast<SeriesId>(i), s.name, s.labels, s.size,
                   s.size ? s.last_ts : 0});
  }
  return out;
}

std::size_t TimeSeriesStore::series_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

std::uint64_t TimeSeriesStore::points_appended() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return points_appended_;
}

std::uint64_t TimeSeriesStore::rejected_out_of_order() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rejected_out_of_order_;
}

std::uint64_t TimeSeriesStore::rejected_capacity() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rejected_capacity_;
}

std::size_t TimeSeriesStore::memory_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = series_.capacity() * sizeof(Series);
  for (const Series& s : series_) {
    bytes += s.name.capacity() + s.ring.capacity() * sizeof(TsPoint);
    for (const auto& [k, v] : s.labels) bytes += k.capacity() + v.capacity();
  }
  for (const auto& [key, id] : index_) {
    bytes += key.capacity() + sizeof(id) + sizeof(void*) * 2;
  }
  return bytes;
}

}  // namespace ipd::obs
