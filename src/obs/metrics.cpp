#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "util/logging.hpp"

namespace ipd::obs {

const char* to_string(MetricType type) noexcept {
  switch (type) {
    case MetricType::Counter: return "counter";
    case MetricType::Gauge: return "gauge";
    case MetricType::Histogram: return "histogram";
  }
  return "?";
}

std::int64_t monotonic_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// ---------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;

  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // The quantile falls inside bucket i: interpolate between its edges.
    if (i >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
    const double hi = bounds_[i];
    const double lo = i == 0 ? std::min(0.0, hi) : bounds_[i - 1];
    const double into =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * std::clamp(into, 0.0, 1.0);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t n) {
  if (start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument(
        "Histogram: exponential bounds need start > 0, factor > 1");
  }
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = start;
  for (std::size_t i = 0; i < n; ++i, b *= factor) bounds.push_back(b);
  return bounds;
}

std::vector<double> Histogram::linear_bounds(double start, double width,
                                             std::size_t n) {
  if (width <= 0.0) {
    throw std::invalid_argument("Histogram: linear bounds need width > 0");
  }
  std::vector<double> bounds;
  bounds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

// ----------------------------------------------------------------- Registry

namespace {
Labels normalize(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}
}  // namespace

MetricsRegistry::Instrument& MetricsRegistry::find_or_create(
    std::string_view name, std::string_view help, MetricType type,
    Labels&& labels) {
  labels = normalize(std::move(labels));
  const std::lock_guard<std::mutex> lock(mutex_);
  Family* family = nullptr;
  for (const auto& f : families_) {
    if (f->name == name) {
      family = f.get();
      break;
    }
  }
  if (family == nullptr) {
    auto f = std::make_unique<Family>();
    f->name = std::string(name);
    f->help = std::string(help);
    f->type = type;
    families_.push_back(std::move(f));
    family = families_.back().get();
  } else if (family->type != type) {
    throw std::invalid_argument("MetricsRegistry: " + std::string(name) +
                                " re-registered with a different type");
  }
  for (const auto& instrument : family->instruments) {
    if (instrument->labels == labels) return *instrument;
  }
  auto instrument = std::make_unique<Instrument>();
  instrument->labels = std::move(labels);
  family->instruments.push_back(std::move(instrument));
  return *family->instruments.back();
}

Counter& MetricsRegistry::counter(std::string_view name, std::string_view help,
                                  Labels labels) {
  Instrument& instrument =
      find_or_create(name, help, MetricType::Counter, std::move(labels));
  if (!instrument.counter) instrument.counter = std::make_unique<Counter>();
  return *instrument.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  Instrument& instrument =
      find_or_create(name, help, MetricType::Gauge, std::move(labels));
  if (!instrument.gauge) instrument.gauge = std::make_unique<Gauge>();
  return *instrument.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view help,
                                      std::vector<double> bounds,
                                      Labels labels) {
  Instrument& instrument =
      find_or_create(name, help, MetricType::Histogram, std::move(labels));
  if (!instrument.histogram) {
    instrument.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *instrument.histogram;
}

std::vector<FamilySnapshot> MetricsRegistry::collect() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<FamilySnapshot> out;
  out.reserve(families_.size());
  for (const auto& family : families_) {
    FamilySnapshot fs;
    fs.name = family->name;
    fs.help = family->help;
    fs.type = family->type;
    for (const auto& instrument : family->instruments) {
      SampleSnapshot s;
      s.labels = instrument->labels;
      if (instrument->counter) {
        s.value = static_cast<double>(instrument->counter->value());
      } else if (instrument->gauge) {
        s.value = instrument->gauge->value();
      } else if (instrument->histogram) {
        const Histogram& h = *instrument->histogram;
        s.bounds = h.bounds();
        const auto buckets = h.bucket_counts();
        s.cumulative.resize(buckets.size());
        std::uint64_t running = 0;
        for (std::size_t i = 0; i < buckets.size(); ++i) {
          running += buckets[i];
          s.cumulative[i] = running;
        }
        s.count = h.count();
        s.sum = h.sum();
      }
      fs.samples.push_back(std::move(s));
    }
    std::sort(fs.samples.begin(), fs.samples.end(),
              [](const SampleSnapshot& a, const SampleSnapshot& b) {
                return a.labels < b.labels;
              });
    out.push_back(std::move(fs));
  }
  return out;
}

std::size_t MetricsRegistry::family_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return families_.size();
}

std::size_t MetricsRegistry::instrument_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& family : families_) n += family->instruments.size();
  return n;
}

std::size_t MetricsRegistry::memory_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = families_.capacity() * sizeof(families_[0]);
  for (const auto& family : families_) {
    bytes += sizeof(Family) + family->name.capacity() + family->help.capacity();
    bytes += family->instruments.capacity() * sizeof(family->instruments[0]);
    for (const auto& instrument : family->instruments) {
      bytes += sizeof(Instrument);
      for (const auto& [k, v] : instrument->labels) {
        bytes += sizeof(k) + k.capacity() + sizeof(v) + v.capacity();
      }
      if (instrument->counter) bytes += sizeof(Counter);
      if (instrument->gauge) bytes += sizeof(Gauge);
      if (instrument->histogram) {
        bytes += sizeof(Histogram) +
                 instrument->histogram->bounds().size() *
                     (sizeof(double) + sizeof(std::atomic<std::uint64_t>));
      }
    }
  }
  return bytes;
}

// -------------------------------------------------------------- ScopedTimer

ScopedTimer::ScopedTimer(Histogram* hist) noexcept : hist_(hist) {
  if (hist_ != nullptr) start_ns_ = monotonic_ns();
}

ScopedTimer::~ScopedTimer() {
  if (hist_ == nullptr) return;
  hist_->observe(static_cast<double>(monotonic_ns() - start_ns_) * 1e-9);
}

// ------------------------------------------------- Logging drop-rate bridge

namespace {

// One counter per util::LogLevel; atomics because the hook can fire from
// any thread while bind/unbind runs on another.
std::atomic<Counter*> g_log_drop_counters[4] = {};

void log_drop_hook(util::LogLevel level) {
  auto i = static_cast<std::size_t>(level);
  if (i >= 4) i = 3;
  if (Counter* counter =
          g_log_drop_counters[i].load(std::memory_order_acquire)) {
    counter->inc();
  }
}

}  // namespace

void bind_log_drop_metrics(MetricsRegistry& registry) {
  constexpr util::LogLevel kLevels[] = {
      util::LogLevel::Debug, util::LogLevel::Info, util::LogLevel::Warn,
      util::LogLevel::Error};
  for (const util::LogLevel level : kLevels) {
    Counter& counter = registry.counter(
        "ipd_log_dropped_total",
        "Log records suppressed by warn-once/rate-limited sites",
        {{"level", util::level_name(level)}});
    // Seed with drops recorded before the bridge existed so the series
    // never under-reports.
    const std::uint64_t already = util::log_dropped_total(level);
    if (already > counter.value()) counter.inc(already - counter.value());
    g_log_drop_counters[static_cast<std::size_t>(level)].store(
        &counter, std::memory_order_release);
  }
  util::set_log_drop_hook(&log_drop_hook);
}

void unbind_log_drop_metrics() noexcept {
  util::set_log_drop_hook(nullptr);
  for (auto& slot : g_log_drop_counters) {
    slot.store(nullptr, std::memory_order_release);
  }
}

}  // namespace ipd::obs
