// Per-thread scheduler telemetry from /proc/self/task.
//
// Three pure parsers (fixture-testable, no filesystem access) plus a
// sampler that walks /proc/self/task/<tid>/{stat,schedstat,status} and
// reports one ThreadStats per live thread, keyed by the comm name that
// util::set_current_thread_name wrote (ipd-shard-N, ipd-collect, ipd-http,
// ipd-main, ...).
//
// Field sources:
//   stat      — state, utime, stime (fields 3/14/15; comm is parsed from
//               the *last* ')' because it may itself contain parens/spaces)
//   schedstat — cpu_time_ns, runqueue_wait_ns, timeslices (CFS accounting;
//               absent when the kernel lacks CONFIG_SCHED_INFO)
//   status    — voluntary_ctxt_switches, nonvoluntary_ctxt_switches
//
// Sampling is scrape-cadence work (a handful of small file reads per
// thread); never call it from a per-flow path.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace ipd::obs {

/// Parsed subset of /proc/<pid>/task/<tid>/stat.
struct ProcStat {
  int tid = 0;
  std::string comm;  ///< without the surrounding parens
  char state = '?';
  std::uint64_t utime_ticks = 0;  ///< field 14, in sysconf(_SC_CLK_TCK)
  std::uint64_t stime_ticks = 0;  ///< field 15
};

/// Parsed /proc/<pid>/task/<tid>/schedstat (three numbers).
struct ProcSchedstat {
  std::uint64_t cpu_time_ns = 0;       ///< time on CPU
  std::uint64_t runqueue_wait_ns = 0;  ///< runnable but waiting for a CPU
  std::uint64_t timeslices = 0;        ///< times scheduled on a CPU
};

/// Context-switch counters from /proc/<pid>/task/<tid>/status.
struct ProcCtxSwitches {
  std::uint64_t voluntary = 0;
  std::uint64_t involuntary = 0;
};

/// Strict parsers: return false (leaving `out` untouched) on malformed
/// input rather than guessing. Input is the full file contents.
bool parse_proc_stat(std::string_view text, ProcStat& out);
bool parse_proc_schedstat(std::string_view text, ProcSchedstat& out);
bool parse_proc_status_ctx(std::string_view text, ProcCtxSwitches& out);

/// One live thread, merged from the three files above.
struct ThreadStats {
  int tid = 0;
  std::string name;  ///< comm, e.g. "ipd-shard-3"
  char state = '?';
  double utime_s = 0.0;
  double stime_s = 0.0;
  bool has_schedstat = false;
  double cpu_s = 0.0;            ///< schedstat on-CPU time
  double runqueue_wait_s = 0.0;  ///< schedstat run-queue wait
  std::uint64_t timeslices = 0;
  std::uint64_t voluntary_ctx = 0;
  std::uint64_t involuntary_ctx = 0;
};

/// Sample every thread of the current process. Threads that exit mid-walk
/// are skipped silently. Sorted by tid.
std::vector<ThreadStats> sample_process_threads();

/// Publish per-thread gauges into `registry`, labeled {thread=<name>}.
/// Threads sharing a name (e.g. several unnamed ones) are summed so series
/// cardinality tracks the stable util/thread names, not tids. Context
/// switches are published as
/// ipd_thread_ctx_switches_total{thread=...,kind=voluntary|involuntary}.
void publish_thread_metrics(const std::vector<ThreadStats>& threads,
                            MetricsRegistry& registry);

/// JSON array for /threads.
std::string threads_json(const std::vector<ThreadStats>& threads);

/// Fixed-width table for /threads?format=text and ipd_top; at most
/// `max_rows` rows (0 = all), sorted by on-CPU time descending.
std::string threads_text(const std::vector<ThreadStats>& threads,
                         std::size_t max_rows = 0);

}  // namespace ipd::obs
