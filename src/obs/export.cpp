#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "util/strings.hpp"

namespace ipd::obs {

namespace {

/// Escape a label value per the exposition format (backslash, quote, \n).
std::string prom_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

/// `{k1="v1",k2="v2"}` or "" for an empty set; `extra` appends one more
/// pair (used for the histogram `le` label).
std::string prom_labels(const Labels& labels, std::string_view extra_key = {},
                        std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += prom_escape(v);
    out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += prom_escape(extra_value);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

std::string format_value(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return util::format("%lld", static_cast<long long>(v));
  }
  return util::format("%.17g", v);
}

std::string to_prometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& family : registry.collect()) {
    out += "# HELP " + family.name + " " + family.help + "\n";
    out += "# TYPE " + family.name + " ";
    out += to_string(family.type);
    out += '\n';
    for (const auto& sample : family.samples) {
      if (family.type == MetricType::Histogram) {
        for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
          out += family.name + "_bucket" +
                 prom_labels(sample.labels, "le", format_value(sample.bounds[i])) +
                 " " + util::format("%llu", static_cast<unsigned long long>(
                                                sample.cumulative[i])) +
                 "\n";
        }
        out += family.name + "_bucket" +
               prom_labels(sample.labels, "le", "+Inf") + " " +
               util::format("%llu",
                            static_cast<unsigned long long>(sample.count)) +
               "\n";
        out += family.name + "_sum" + prom_labels(sample.labels) + " " +
               format_value(sample.sum) + "\n";
        out += family.name + "_count" + prom_labels(sample.labels) + " " +
               util::format("%llu",
                            static_cast<unsigned long long>(sample.count)) +
               "\n";
      } else {
        out += family.name + prom_labels(sample.labels) + " " +
               format_value(sample.value) + "\n";
      }
    }
  }
  return out;
}

std::string to_json_line(const MetricsRegistry& registry, util::Timestamp ts) {
  std::string out = "{\"ts\":" + util::format("%lld", static_cast<long long>(ts)) +
                    ",\"metrics\":[";
  bool first_metric = true;
  for (const auto& family : registry.collect()) {
    for (const auto& sample : family.samples) {
      if (!first_metric) out += ',';
      first_metric = false;
      out += "{\"name\":\"" + util::json_escape(family.name) + "\",\"type\":\"";
      out += to_string(family.type);
      out += "\",\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : sample.labels) {
        if (!first_label) out += ',';
        first_label = false;
        out += "\"" + util::json_escape(k) + "\":\"" + util::json_escape(v) + "\"";
      }
      out += '}';
      if (family.type == MetricType::Histogram) {
        out += ",\"count\":" +
               util::format("%llu",
                            static_cast<unsigned long long>(sample.count));
        out += ",\"sum\":" + format_value(sample.sum);
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < sample.bounds.size(); ++i) {
          if (i) out += ',';
          out += "{\"le\":" + format_value(sample.bounds[i]) + ",\"n\":" +
                 util::format("%llu", static_cast<unsigned long long>(
                                          sample.cumulative[i])) +
                 "}";
        }
        out += ']';
      } else {
        out += ",\"value\":" + format_value(sample.value);
      }
      out += '}';
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace ipd::obs
