// Exporters over a MetricsRegistry.
//
//   to_prometheus  — the text exposition format (version 0.0.4): one
//                    # HELP / # TYPE header per family, histogram bucket
//                    series with cumulative `le` labels plus _sum/_count.
//   to_json_line   — one JSON object per call ("JSON lines"): a timestamp
//                    plus every sample flattened to {name, labels, value}.
//                    Appending one line per 5-minute bin gives a
//                    time-series file any script can replay.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace ipd::obs {

/// Render the whole registry in Prometheus text exposition format.
std::string to_prometheus(const MetricsRegistry& registry);

/// Render the whole registry as a single JSON object (one line, trailing
/// newline) stamped with simulated time `ts`.
std::string to_json_line(const MetricsRegistry& registry, util::Timestamp ts);

/// Format a metric value the way Prometheus expects ("+Inf", integers
/// without exponent, shortest round-trip doubles otherwise).
std::string format_value(double v);

}  // namespace ipd::obs
