// Hardware performance-counter telemetry (perf_event_open).
//
// The engines time their phases with wall clocks, but the ROADMAP's next
// perf frontier (SIMD decode, prefetch-pipelined trie descents) needs
// microarchitectural visibility: per-phase IPC, LLC miss rates and branch
// misses tell *why* a phase is slow, not just that it is. PerfCounters
// wraps one grouped perf_event_open reader per thread — task-clock
// (software, the group leader), cycles, instructions, LLC loads/misses
// and branch misses — and accumulates counter deltas per named phase
// ("stage1.ingest", "stage2.cycle", "collector.drain", ...).
//
// Usage: the owner registers phases once (`phase("stage1.ingest")`), hot
// paths bracket work with a PerfScope, and readers pull aggregated
// totals via snapshot()/to_json() or publish derived IPC / miss-rate
// gauges into a MetricsRegistry (and from there the TSDB + health rules).
//
// Cost model: a PerfScope is two read(2) syscalls (~1-2 us each) on the
// group leader, so scopes go around *batches* — a 4096-record ingest
// batch, a whole stage-2 cycle, one collector drain round — never around
// per-node work. For per-stage-2-phase attribution (expire vs classify vs
// split...) an opt-in rdpmc path (PerfThreadSampler) reads cycles /
// instructions / LLC-misses from userspace via the perf mmap page seqlock
// protocol in ~100 ns, cheap enough for cycle_logic's per-node phase
// boundaries.
//
// Degradation ladder (always graceful, never fatal):
//   * full:    PMU exposed, perf_event_paranoid <= 2 -> all six events
//   * partial: no PMU (most VMs/containers: hardware events fail with
//              ENOENT) -> software task-clock only; hardware-derived
//              columns are simply absent
//   * none:    perf_event_open denied entirely (EACCES/ENOSYS, seccomp,
//              IPD_PERF_DISABLE=1) -> every scope is inert, a single
//              warn-once explains why, available() == false
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ipd::obs {

class MetricsRegistry;

/// The fixed event set of one per-thread group, in open order. TaskClock
/// leads the group: it is a software event, available even where the PMU
/// is not, so the group survives partial hardware failure.
enum class PerfEvent : std::uint8_t {
  TaskClock = 0,  // ns of CPU time (software; the group leader)
  Cycles,
  Instructions,
  LlcLoads,
  LlcMisses,
  BranchMisses,
};
inline constexpr std::size_t kNumPerfEvents = 6;

const char* to_string(PerfEvent event) noexcept;

/// One snapshot (or delta) of a thread's counter group. Values are raw
/// (unscaled); time_enabled/time_running expose multiplexing, which is
/// ~never active for these always-on self-monitoring groups.
struct PerfReading {
  std::array<std::uint64_t, kNumPerfEvents> value{};
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;

  std::uint64_t operator[](PerfEvent event) const noexcept {
    return value[static_cast<std::size_t>(event)];
  }
};

/// A fast rdpmc sample: the three events cheap-phase attribution needs.
struct PerfPoint {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
};

/// Aggregated counter deltas for one named phase, across all threads.
struct PerfPhaseTotals {
  std::string name;
  std::uint64_t scopes = 0;  // completed PerfScopes charged here
  std::array<std::uint64_t, kNumPerfEvents> value{};
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;

  std::uint64_t operator[](PerfEvent event) const noexcept {
    return value[static_cast<std::size_t>(event)];
  }
  /// instructions / cycles; 0 when cycles are unavailable.
  double ipc() const noexcept;
  /// LLC misses / LLC loads; 0 when either is unavailable.
  double llc_miss_rate() const noexcept;
};

struct PerfCountersConfig {
  /// Enable the rdpmc per-stage-2-phase path (PerfThreadSampler). Off by
  /// default: it adds two userspace reads per trie node during cycles.
  bool per_phase = false;
  /// Tests only: make every perf_event_open fail with this errno instead
  /// of calling the real syscall (e.g. EACCES, ENOSYS).
  int simulate_errno = 0;
};

class PerfGroup;

/// Userspace (rdpmc) view over one thread's group, valid on that thread
/// only and only while the owning PerfCounters lives. read() is the perf
/// mmap-page seqlock protocol: ~100 ns, no syscall, async-safe.
class PerfThreadSampler {
 public:
  /// Internal: constructed by PerfCounters per thread. Obtain one via
  /// PerfCounters::thread_sampler().
  explicit PerfThreadSampler(const PerfGroup* group) noexcept
      : group_(group) {}

  /// Current cycles/instructions/LLC-misses for the owning thread.
  /// Returns false (zeros) when the rdpmc path is unavailable.
  bool read(PerfPoint& out) const noexcept;

 private:
  const PerfGroup* group_;
};

/// Process-wide phase-scoped counter aggregation. Thread-safe: each
/// thread lazily opens its own counter group on first use (perf fds with
/// pid=0 count the opening thread only), and phase totals are relaxed
/// atomics. Groups are owned here and closed on destruction.
class PerfCounters {
 public:
  static constexpr int kMaxPhases = 32;

  explicit PerfCounters(PerfCountersConfig config = {});
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// Register (or look up) a phase by name; returns its id, or -1 when
  /// the table is full (scopes with id -1 are inert). Cold path.
  int phase(std::string_view name);

  /// Did the constructing thread open at least one event? (Partial
  /// availability — software-only — still counts as available.)
  bool available() const noexcept { return available_; }
  bool event_available(PerfEvent event) const noexcept {
    return event_live_[static_cast<std::size_t>(event)];
  }
  /// errno of the first failed perf_event_open (0 when everything, or
  /// nothing at all, was attempted — see disabled()).
  int open_errno() const noexcept { return open_errno_; }
  /// True when IPD_PERF_DISABLE=1 suppressed the syscalls entirely.
  bool disabled() const noexcept { return disabled_; }
  const PerfCountersConfig& config() const noexcept { return config_; }

  /// The rdpmc sampler for the calling thread, or nullptr when the
  /// per-phase path is off or rdpmc is unsupported (no PMU, cap_user_rdpmc
  /// clear, non-x86). Creates the thread's group on first call.
  PerfThreadSampler* thread_sampler() noexcept;

  /// Read the calling thread's current group totals (two uses: PerfScope
  /// brackets, tests). False when unavailable.
  bool read_current(PerfReading& out) noexcept;

  /// Accumulate one scope's delta into `phase_id`'s totals.
  void add_phase_delta(int phase_id, const PerfReading& delta) noexcept;
  /// Accumulate rdpmc-attributed per-phase points (the engines fold
  /// cycle_logic's PhaseAccum in here after each cycle).
  void add_phase_point(int phase_id, const PerfPoint& delta) noexcept;

  std::vector<PerfPhaseTotals> snapshot() const;

  /// Publish ipd_perf_* gauges (per-phase raw totals plus derived IPC and
  /// LLC miss rate, and a global availability flag) into `registry`.
  void publish(MetricsRegistry& registry);

  /// The /perf endpoint body: availability, per-event liveness, and the
  /// per-phase totals with derived ratios.
  std::string to_json() const;

  std::size_t memory_bytes() const noexcept;

 private:
  struct PhaseSlot;
  struct ThreadState;

  ThreadState* state_for_this_thread() noexcept;

  PerfCountersConfig config_;
  const std::uint64_t instance_id_;
  bool available_ = false;
  bool disabled_ = false;
  int open_errno_ = 0;
  std::array<bool, kNumPerfEvents> event_live_{};

  mutable std::mutex mutex_;  // guards threads_ and phase registration
  std::vector<std::unique_ptr<ThreadState>> threads_;
  std::unique_ptr<std::array<PhaseSlot, kMaxPhases>> phases_;
  std::atomic<int> phase_count_{0};
};

/// RAII bracket charging the enclosed work's counter deltas to one phase.
/// Inert (a single branch) when `perf` is null, unavailable, or the phase
/// id is -1. Non-reentrant per (thread, phase) only in the sense that
/// nested scopes double-charge the outer phase — keep phases disjoint.
class PerfScope {
 public:
  PerfScope() = default;
  PerfScope(PerfCounters* perf, int phase_id) noexcept;
  ~PerfScope() { close(); }
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

  bool active() const noexcept { return perf_ != nullptr; }

  /// End the scope now (idempotent); returns the charged delta (zeros
  /// when the scope was inert), e.g. for tracer span args.
  PerfReading close() noexcept;

 private:
  PerfCounters* perf_ = nullptr;
  int phase_ = -1;
  PerfReading start_{};
};

}  // namespace ipd::obs
