#include "obs/trace.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace ipd::obs {

namespace {

/// Append one event as a trace-event JSON object. Names and arg keys are
/// static strings from our own call sites (no quotes/control characters),
/// so they are emitted verbatim; values go through format_value for
/// Inf/NaN safety — except that trace-event JSON has no Inf/NaN literal,
/// so those degrade to 0.
void append_event_json(std::string& out, const TraceEvent& event) {
  out += "{\"name\":\"";
  out += event.name;
  out += "\",\"cat\":\"ipd\",\"ph\":\"";
  out += event.phase;
  out += '"';
  if (event.phase == 'i') out += ",\"s\":\"t\"";
  out += util::format(",\"ts\":%lld", static_cast<long long>(event.ts_us));
  if (event.phase == 'X') {
    out += util::format(",\"dur\":%lld", static_cast<long long>(event.dur_us));
  }
  out += util::format(",\"pid\":1,\"tid\":%u", event.tid);
  if (event.nargs > 0) {
    out += ",\"args\":{";
    for (std::uint8_t i = 0; i < event.nargs; ++i) {
      if (i) out += ',';
      out += '"';
      out += event.args[i].key;
      out += "\":";
      const double v = event.args[i].value;
      out += (v - v == 0.0) ? format_value(v) : "0";
    }
    out += '}';
  }
  out += '}';
}

// Crash-handler state. Set once by install_crash_handler; read by the
// signal handler. The tracer pointer is never cleared (tracers used with
// the crash handler must live for the rest of the process).
Tracer* g_crash_tracer = nullptr;
char g_crash_path[512] = {0};

void ipd_trace_crash_handler(int signum) {
  // Re-arm default disposition first so a second fault terminates.
  signal(signum, SIG_DFL);
  if (g_crash_tracer != nullptr && g_crash_path[0] != '\0') {
    g_crash_tracer->dump_for_crash(g_crash_path, signum);
  }
  raise(signum);
}

}  // namespace

Tracer::Tracer(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      epoch_ns_(monotonic_ns()) {
  // The full ring is allocated up front: flight recording must not
  // allocate while the process is in trouble.
  ring_.reserve(capacity_);
}

std::int64_t Tracer::now_us() const noexcept {
  return (monotonic_ns() - epoch_ns_) / 1000;
}

void Tracer::record_event(const TraceEvent& event) noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    ++next_seq_;
  } else {
    ring_[static_cast<std::size_t>(next_seq_++ % capacity_)] = event;
  }
}

void Tracer::span(const char* name, std::int64_t ts_us, std::int64_t dur_us,
                  std::initializer_list<TraceArg> args,
                  std::uint32_t tid) noexcept {
  TraceEvent event;
  event.name = name;
  event.phase = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us < 0 ? 0 : dur_us;
  event.tid = tid;
  for (const TraceArg& arg : args) {
    if (event.nargs == event.args.size()) break;
    event.args[event.nargs++] = arg;
  }
  record_event(event);
}

void Tracer::instant(const char* name, std::initializer_list<TraceArg> args,
                     std::uint32_t tid) noexcept {
  TraceEvent event;
  event.name = name;
  event.phase = 'i';
  event.ts_us = now_us();
  event.tid = tid;
  for (const TraceArg& arg : args) {
    if (event.nargs == event.args.size()) break;
    event.args[event.nargs++] = arg;
  }
  record_event(event);
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t Tracer::total_recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return next_seq_ - ring_.size();
}

std::vector<TraceEvent> Tracer::tail(std::size_t max_events) const {
  std::vector<TraceEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = std::min(max_events, ring_.size());
    out.reserve(n);
    // Oldest held event is seq next_seq_ - ring_.size(); slot = seq % cap.
    const std::uint64_t first = next_seq_ - ring_.size() + (ring_.size() - n);
    for (std::uint64_t seq = first; seq < next_seq_; ++seq) {
      out.push_back(ring_[static_cast<std::size_t>(seq % capacity_)]);
    }
  }
  return out;
}

std::string Tracer::events_to_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ',';
    first = false;
    append_event_json(out, event);
  }
  out += "]}";
  return out;
}

std::string Tracer::to_json(std::size_t max_events) const {
  return events_to_json(tail(max_events));
}

std::size_t Tracer::memory_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sizeof(Tracer) + ring_.capacity() * sizeof(TraceEvent);
}

void Tracer::dump_for_crash(const char* path, int signum) noexcept {
  // Best-effort, async-signal-constrained: no locking, no allocation;
  // snprintf into a static buffer, write(2) straight out.
  const int fd = ::open(path, O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return;
  static char buf[2048];
  int n = std::snprintf(buf, sizeof(buf),
                        "{\"crash_signal\":%d,\"displayTimeUnit\":\"ms\","
                        "\"traceEvents\":[",
                        signum);
  (void)!::write(fd, buf, static_cast<std::size_t>(n));
  const std::size_t held = ring_.size() < capacity_ ? ring_.size() : capacity_;
  const std::uint64_t first = next_seq_ >= held ? next_seq_ - held : 0;
  for (std::uint64_t seq = first; seq < next_seq_; ++seq) {
    const TraceEvent& e = ring_[static_cast<std::size_t>(seq % capacity_)];
    if (e.name == nullptr) continue;
    n = std::snprintf(buf, sizeof(buf),
                      "%s{\"name\":\"%s\",\"cat\":\"ipd\",\"ph\":\"%c\","
                      "\"ts\":%lld,\"dur\":%lld,\"pid\":1,\"tid\":%u}",
                      seq == first ? "" : ",", e.name,
                      e.phase == 'i' ? 'i' : 'X',
                      static_cast<long long>(e.ts_us),
                      static_cast<long long>(e.phase == 'X' ? e.dur_us : 0),
                      e.tid);
    if (n > 0) (void)!::write(fd, buf, static_cast<std::size_t>(n));
  }
  (void)!::write(fd, "]}\n", 3);
  ::close(fd);
}

void Tracer::install_crash_handler(const std::string& path) {
  g_crash_tracer = this;
  std::snprintf(g_crash_path, sizeof(g_crash_path), "%s", path.c_str());
  for (const int sig : {SIGSEGV, SIGBUS, SIGFPE, SIGABRT}) {
    signal(sig, ipd_trace_crash_handler);
  }
}

SpanTimer::SpanTimer(Tracer* tracer, const char* name) noexcept
    : tracer_(tracer), name_(name) {
  if (tracer_) start_us_ = tracer_->now_us();
}

void SpanTimer::set_args(std::initializer_list<TraceArg> args) noexcept {
  nargs_ = 0;
  for (const TraceArg& arg : args) {
    if (nargs_ == args_.size()) break;
    args_[nargs_++] = arg;
  }
}

SpanTimer::~SpanTimer() {
  if (!tracer_) return;
  TraceEvent event;
  event.name = name_;
  event.phase = 'X';
  event.ts_us = start_us_;
  event.dur_us = tracer_->now_us() - start_us_;
  event.args = args_;
  event.nargs = nargs_;
  tracer_->record_event(event);
}

}  // namespace ipd::obs
