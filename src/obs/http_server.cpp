#include "obs/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/thread.hpp"

namespace ipd::obs {

namespace {

/// Hex digit value, or -1.
int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool valid_token(std::string_view s) noexcept {
  if (s.empty()) return false;
  for (const char c : s) {
    if (c <= ' ' || c == 0x7f) return false;
  }
  return true;
}

/// Read from `fd` until the request head is complete, the peer closes, a
/// cap is hit, or `timeout_ms` passes without progress.
HttpParse read_request(int fd, HttpRequest& request, int timeout_ms) {
  std::string buffer;
  char chunk[2048];
  while (true) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) return HttpParse::Incomplete;  // timeout or error
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return HttpParse::Incomplete;  // peer closed mid-request
    buffer.append(chunk, static_cast<std::size_t>(n));
    const HttpParse result = parse_http_request(buffer, request);
    if (result != HttpParse::Incomplete) return result;
    if (buffer.size() > kMaxHttpRequestBytes) return HttpParse::TooLarge;
  }
}

}  // namespace

std::optional<std::string> HttpRequest::query_param(
    std::string_view key) const {
  for (const auto& [k, v] : query) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::optional<std::string> HttpRequest::header(std::string_view key) const {
  for (const auto& [k, v] : headers) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && hex_value(s[i + 1]) >= 0 &&
               hex_value(s[i + 2]) >= 0) {
      out += static_cast<char>(hex_value(s[i + 1]) * 16 + hex_value(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> parse_query(
    std::string_view query_string) {
  std::vector<std::pair<std::string, std::string>> out;
  if (query_string.empty()) return out;
  for (const std::string_view pair : util::split(query_string, '&')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      out.emplace_back(url_decode(pair), "");
    } else {
      out.emplace_back(url_decode(pair.substr(0, eq)),
                       url_decode(pair.substr(eq + 1)));
    }
  }
  return out;
}

HttpParse parse_http_request(std::string_view data, HttpRequest& out,
                             std::size_t max_bytes) {
  const std::size_t head_end = data.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return data.size() > max_bytes ? HttpParse::TooLarge : HttpParse::Incomplete;
  }
  if (head_end + 4 > max_bytes) return HttpParse::TooLarge;

  const std::string_view head = data.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // "METHOD SP target SP HTTP/x.y" — exactly three space-separated tokens.
  const auto parts = util::split(request_line, ' ');
  if (parts.size() != 3) return HttpParse::Malformed;
  const std::string_view method = parts[0];
  const std::string_view target = parts[1];
  const std::string_view version = parts[2];
  if (!valid_token(method) || !valid_token(target)) return HttpParse::Malformed;
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return HttpParse::Malformed;
  }
  if (target[0] != '/') return HttpParse::Malformed;

  out = HttpRequest{};
  out.method = std::string(method);
  out.version = std::string(version);
  const std::size_t qmark = target.find('?');
  out.path = url_decode(target.substr(0, qmark));
  if (qmark != std::string_view::npos) {
    out.query_string = std::string(target.substr(qmark + 1));
    out.query = parse_query(out.query_string);
  }

  // Header lines: "Key: value" (no obs-fold support; a lone colon-less
  // line is malformed).
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return HttpParse::Malformed;
    }
    const std::string_view key = util::trim(line.substr(0, colon));
    if (!valid_token(key)) return HttpParse::Malformed;
    out.headers.emplace_back(to_lower(key),
                             std::string(util::trim(line.substr(colon + 1))));
  }
  return HttpParse::Ok;
}

HttpResponse HttpResponse::json(std::string body, int status) {
  HttpResponse out;
  out.status = status;
  out.content_type = "application/json";
  out.body = std::move(body);
  return out;
}

HttpResponse HttpResponse::text(int status, std::string body) {
  HttpResponse out;
  out.status = status;
  out.body = std::move(body);
  return out;
}

HttpResponse HttpResponse::stream(
    std::string content_type,
    std::function<void(const ChunkWriter&)> produce) {
  HttpResponse out;
  out.content_type = std::move(content_type);
  out.body_stream = std::move(produce);
  return out;
}

const char* http_status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string render_http_head(const HttpResponse& response) {
  std::string out = util::format("HTTP/1.1 %d %s\r\n", response.status,
                                 http_status_text(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  if (response.body_stream) {
    out += "Transfer-Encoding: chunked\r\n";
  } else {
    out += util::format("Content-Length: %zu\r\n", response.body.size());
  }
  out += "Connection: close\r\n\r\n";
  return out;
}

std::string render_http_response(const HttpResponse& response) {
  std::string out = render_http_head(response);
  if (!response.body_stream) out += response.body;
  return out;
}

std::string encode_http_chunk(std::string_view chunk) {
  std::string out = util::format("%zx\r\n", chunk.size());
  out += chunk;
  out += "\r\n";
  return out;
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  handlers_.emplace_back(std::move(path), std::move(handler));
}

bool HttpServer::start(std::uint16_t port, std::string* error) {
  if (running_.load()) {
    if (error) *error = "server already running";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error) *error = util::format("socket: %s", std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (error) {
      *error = util::format("bind 127.0.0.1:%u: %s",
                            static_cast<unsigned>(port), std::strerror(errno));
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::listen(listen_fd_, 16) < 0) {
    if (error) *error = util::format("listen: %s", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  running_.store(true);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::serve_loop() {
  util::set_current_thread_name("ipd-http");
  while (running_.load()) {
    if (loop_tick_) loop_tick_();
    pollfd pfd{listen_fd_, POLLIN, 0};
    // Short poll timeout so stop() is honored promptly.
    const int ready = ::poll(&pfd, 1, 100);
    if (!running_.load()) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    handle_connection(fd);
    ::close(fd);
  }
}

HttpResponse HttpServer::dispatch(const HttpRequest& request) const {
  if (request.method != "GET" && request.method != "HEAD") {
    return HttpResponse::text(405, "only GET and HEAD are supported\n");
  }
  for (const auto& [path, handler] : handlers_) {
    if (path == request.path) {
      try {
        return handler(request);
      } catch (const std::exception& e) {
        return HttpResponse::text(
            500, util::format("handler error: %s\n", e.what()));
      } catch (...) {
        return HttpResponse::text(500, "handler error\n");
      }
    }
  }
  return HttpResponse::text(404, "no such endpoint\n");
}

void HttpServer::handle_connection(int fd) {
  HttpRequest request;
  const HttpParse parsed = read_request(fd, request, /*timeout_ms=*/5000);
  HttpResponse response;
  switch (parsed) {
    case HttpParse::Ok:
      response = dispatch(request);
      break;
    case HttpParse::TooLarge:
      response = HttpResponse::text(431, "request too large\n");
      break;
    case HttpParse::Malformed:
      response = HttpResponse::text(400, "malformed request\n");
      break;
    case HttpParse::Incomplete:
      // Timeout or peer hangup mid-request: best-effort 408, then close.
      response = HttpResponse::text(408, "incomplete request\n");
      break;
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  const auto send_all = [fd](std::string_view data) -> bool {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  };
  if (parsed == HttpParse::Ok && request.method == "HEAD") {
    // HEAD: the handler already ran (same status/headers as GET would
    // produce) but only the head goes on the wire — no body bytes, and a
    // streaming producer is never invoked.
    send_all(render_http_head(response));
    return;
  }
  if (response.body_stream) {
    // Chunked transfer: the head commits to no Content-Length, then the
    // producer pushes arbitrarily large payloads piecewise. A dead peer
    // flips `alive` and the producer sees false from then on.
    bool alive = send_all(render_http_response(response));
    const HttpResponse::ChunkWriter writer =
        [&alive, &send_all](std::string_view chunk) -> bool {
      if (!alive || chunk.empty()) return alive;
      alive = send_all(encode_http_chunk(chunk));
      return alive;
    };
    try {
      response.body_stream(writer);
    } catch (...) {
      // Mid-stream failure: nothing sane to send — the truncated chunked
      // body (no terminator) is the wire-visible error signal.
      return;
    }
    if (alive) send_all("0\r\n\r\n");
    return;
  }
  send_all(render_http_response(response));
}

}  // namespace ipd::obs
