// Minimal embedded HTTP/1.1 server (dependency-free, POSIX sockets).
//
// Purpose-built for the live introspection endpoints: GET and HEAD only
// (HEAD runs the handler and sends the head without the body; other
// methods get 405), exact-path routing, bounded request size, one response
// per connection (Connection: close). One background thread accepts and
// serves connections serially — scrapes and operator curls are rare and
// cheap, and serial handling keeps every handler data race impossible to
// cause from the network side.
//
// The request parser and response renderer are exposed as pure functions
// so tests can cover the protocol edge cases (malformed request lines,
// oversized headers, percent-decoding) without opening sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace ipd::obs {

/// Hard cap on the bytes of one request head; longer requests get 431.
inline constexpr std::size_t kMaxHttpRequestBytes = 16 * 1024;

struct HttpRequest {
  std::string method;        // "GET" / "HEAD"
  std::string path;          // percent-decoded, e.g. "/explain"
  std::string query_string;  // raw, e.g. "ip=1.2.3.4&limit=10"
  std::string version;       // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> query;    // decoded
  std::vector<std::pair<std::string, std::string>> headers;  // keys lowered

  /// First value of a query parameter, if present.
  std::optional<std::string> query_param(std::string_view key) const;
  /// First value of a header (lower-case key), if present.
  std::optional<std::string> header(std::string_view key) const;
};

enum class HttpParse : std::uint8_t {
  Ok,          // complete request head parsed
  Incomplete,  // need more bytes (no terminating CRLFCRLF yet)
  Malformed,   // syntactically invalid — respond 400
  TooLarge,    // head exceeds the byte cap — respond 431
};

/// Parse one request head (request line + headers, terminated by an empty
/// line). Request bodies are not supported (GET/HEAD-only server).
HttpParse parse_http_request(std::string_view data, HttpRequest& out,
                             std::size_t max_bytes = kMaxHttpRequestBytes);

/// Percent-decode (+ is a space). Invalid escapes are kept verbatim.
std::string url_decode(std::string_view s);

/// Split a raw query string into decoded key/value pairs.
std::vector<std::pair<std::string, std::string>> parse_query(
    std::string_view query_string);

struct HttpResponse {
  /// Sink a streaming body writes chunks through. Returns false once the
  /// peer is gone; producers may stop early (the connection is closed
  /// either way). Empty chunks are ignored (an empty chunk would be the
  /// wire-level terminator).
  using ChunkWriter = std::function<bool(std::string_view)>;

  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// When set, `body` is ignored and the response is sent with
  /// Transfer-Encoding: chunked, one chunk per writer call. This is how
  /// large payloads (/flows, /profile, /timeseries) avoid materializing
  /// one giant contiguous string per request: the producer renders and
  /// ships piecewise, bounded by its own increment size.
  std::function<void(const ChunkWriter&)> body_stream;

  static HttpResponse json(std::string body, int status = 200);
  static HttpResponse text(int status, std::string body);
  /// Chunked-streaming response; `produce` is invoked on the serving
  /// thread with the connection's writer.
  static HttpResponse stream(std::string content_type,
                             std::function<void(const ChunkWriter&)> produce);
};

const char* http_status_text(int status) noexcept;

/// Serialize status line + headers + body (what goes on the wire). For a
/// streaming response this is the head only (chunks follow separately).
std::string render_http_response(const HttpResponse& response);

/// Status line + headers only — what a HEAD request receives. Identical to
/// the GET head: Content-Length of the suppressed body, or
/// Transfer-Encoding: chunked for a streaming response (whose producer is
/// never run).
std::string render_http_head(const HttpResponse& response);

/// Wire framing of one chunk of a chunked response (hex length + CRLFs).
/// The terminating zero-chunk is "0\r\n\r\n".
std::string encode_http_chunk(std::string_view chunk);

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Register the handler for an exact path. Must be called before
  /// start(). Handler exceptions become 500 responses.
  void handle(std::string path, Handler handler);

  /// Invoked once per serve-loop iteration (~every poll timeout and after
  /// every connection) from the serving thread — the watchdog-heartbeat
  /// hook. Must be set before start(). Keep it trivially cheap.
  void set_loop_tick(std::function<void()> tick) {
    loop_tick_ = std::move(tick);
  }

  /// Bind 127.0.0.1:`port` (0 = ephemeral, see port()) and start the
  /// serving thread. Returns false with `*error` set on failure.
  bool start(std::uint16_t port, std::string* error = nullptr);

  /// Stop the serving thread and close the socket. Idempotent.
  void stop();

  bool running() const noexcept { return running_.load(); }
  std::uint16_t port() const noexcept { return port_; }
  std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void handle_connection(int fd);
  HttpResponse dispatch(const HttpRequest& request) const;

  std::vector<std::pair<std::string, Handler>> handlers_;
  std::function<void()> loop_tick_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::thread thread_;
};

}  // namespace ipd::obs
