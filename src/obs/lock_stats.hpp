// Lock-contention telemetry.
//
// InstrumentedMutex / InstrumentedSharedMutex are drop-in Lockable wrappers
// that attribute every acquisition to a *named site* in a process-global
// LockRegistry. Sites are shared by name — all shard slot mutexes report to
// one "engine.slot" site — so cardinality stays bounded no matter how many
// mutex objects exist.
//
// Cost model (the whole point — see bench_lock_overhead):
//
//   uncontended acquire  : one relaxed fetch_add + a try_lock (same atomic
//                          op the plain mutex would do) + one predictable
//                          branch. No clock reads.
//   sampled acquire      : every 1/kSamplePeriod acquisitions (counter
//                          modulus, deterministic) additionally reads the
//                          TSC around the acquire and the critical section,
//                          feeding the wait/hold histograms.
//   contended acquire    : try_lock failed — the thread is about to block,
//                          so two TSC reads are noise. Wait time is always
//                          measured and the contention counter bumped.
//
// Hold timing stores the entry timestamp inside the mutex object itself;
// that slot is only touched while the lock is held, so it needs no atomics
// (exclusive holders serialize it). Shared (reader) acquisitions of
// InstrumentedSharedMutex count and measure wait but never hold — several
// concurrent holders make "hold time" ill-defined per-site.
//
// Timestamps use the TSC on x86_64 (calibrated once against the steady
// clock) and clock_gettime elsewhere.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ipd::obs {

/// One acquisition in kSamplePeriod also times the uncontended fast path.
/// Power of two; the check is a mask test on the relaxed acquisition count.
inline constexpr std::uint64_t kLockSamplePeriod = 256;

/// Cheap monotonic tick counter for lock timing: raw TSC on x86_64,
/// clock_gettime(CLOCK_MONOTONIC) elsewhere. Convert with lock_ticks_to_ns.
std::uint64_t lock_ticks() noexcept;
/// Tick -> nanosecond conversion (calibrated lazily, ~1ms one-time cost).
std::int64_t lock_ticks_to_ns(std::uint64_t ticks) noexcept;

/// Aggregated telemetry for one named lock site. All mutation paths are
/// lock-free (relaxed atomics; histograms are obs::Histogram, themselves
/// relaxed). Never destroyed — sites live in the process-global registry.
class LockSite {
 public:
  explicit LockSite(std::string name);

  const std::string& name() const noexcept { return name_; }

  // -- fast path hooks (called by the mutex wrappers) ---------------------
  /// Returns the post-increment acquisition count; callers use it for the
  /// sampling decision so the whole fast path costs one fetch_add.
  std::uint64_t on_acquire() noexcept {
    return acquisitions_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void on_contended(std::int64_t wait_ns) noexcept;
  void on_sampled_wait(std::int64_t wait_ns) noexcept;
  void on_hold(std::int64_t hold_ns) noexcept;

  struct Snapshot {
    std::string name;
    std::uint64_t acquisitions = 0;   ///< every acquire (incl. shared)
    std::uint64_t contended = 0;      ///< acquires that had to block
    std::uint64_t wait_samples = 0;   ///< timed waits (contended + sampled)
    std::uint64_t hold_samples = 0;   ///< timed critical sections
    double wait_seconds_total = 0.0;  ///< sum over timed waits
    double hold_seconds_total = 0.0;  ///< sum over timed holds
    double wait_p50_s = 0.0, wait_p99_s = 0.0, wait_max_s = 0.0;
    double hold_p50_s = 0.0, hold_p99_s = 0.0, hold_max_s = 0.0;
  };
  Snapshot snapshot() const;

 private:
  std::string name_;
  std::atomic<std::uint64_t> acquisitions_{0};
  std::atomic<std::uint64_t> contended_{0};
  std::atomic<std::uint64_t> wait_ns_total_{0};
  std::atomic<std::uint64_t> hold_ns_total_{0};
  std::atomic<std::uint64_t> wait_max_ns_{0};
  std::atomic<std::uint64_t> hold_max_ns_{0};
  Histogram wait_hist_;  // seconds
  Histogram hold_hist_;  // seconds
};

/// Process-global name -> LockSite map. Sites are created on first use and
/// never removed; lookup happens once per mutex object (at construction),
/// not per acquisition.
class LockRegistry {
 public:
  static LockRegistry& instance();

  /// Get-or-create; the pointer is stable for the process lifetime.
  LockSite* site(std::string_view name);

  std::vector<LockSite::Snapshot> snapshot() const;

  /// Testing escape hatch: forget nothing, but expose how many sites exist.
  std::size_t site_count() const;

 private:
  LockRegistry() = default;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<LockSite>> sites_;
};

/// std::mutex wrapper satisfying Lockable. Site name is resolved once at
/// construction; all instances sharing a name feed one site.
class InstrumentedMutex {
 public:
  explicit InstrumentedMutex(std::string_view site_name)
      : site_(LockRegistry::instance().site(site_name)) {}

  InstrumentedMutex(const InstrumentedMutex&) = delete;
  InstrumentedMutex& operator=(const InstrumentedMutex&) = delete;

  void lock() {
    const std::uint64_t n = site_->on_acquire();
    const bool sampled = (n & (kLockSamplePeriod - 1)) == 0;
    if (!sampled) {
      if (mutex_.try_lock()) return;      // uncontended fast path: no clocks
      const std::uint64_t t0 = lock_ticks();
      mutex_.lock();
      site_->on_contended(lock_ticks_to_ns(lock_ticks() - t0));
      return;
    }
    const std::uint64_t t0 = lock_ticks();
    if (mutex_.try_lock()) {
      site_->on_sampled_wait(lock_ticks_to_ns(lock_ticks() - t0));
    } else {
      mutex_.lock();
      site_->on_contended(lock_ticks_to_ns(lock_ticks() - t0));
    }
    hold_start_ticks_ = lock_ticks();  // serialized: we hold the lock
  }

  bool try_lock() {
    if (!mutex_.try_lock()) return false;
    const std::uint64_t n = site_->on_acquire();
    if ((n & (kLockSamplePeriod - 1)) == 0) hold_start_ticks_ = lock_ticks();
    return true;
  }

  void unlock() {
    if (hold_start_ticks_ != 0) {
      site_->on_hold(lock_ticks_to_ns(lock_ticks() - hold_start_ticks_));
      hold_start_ticks_ = 0;
    }
    mutex_.unlock();
  }

  LockSite* site() const noexcept { return site_; }

 private:
  std::mutex mutex_;
  LockSite* site_;
  // Written/read only while the lock is held; 0 = this hold is not sampled.
  std::uint64_t hold_start_ticks_ = 0;
};

/// std::shared_mutex wrapper. Exclusive acquisitions get the full
/// treatment; shared acquisitions count + measure wait only (concurrent
/// holders make hold time ill-defined).
class InstrumentedSharedMutex {
 public:
  explicit InstrumentedSharedMutex(std::string_view site_name)
      : site_(LockRegistry::instance().site(site_name)) {}

  InstrumentedSharedMutex(const InstrumentedSharedMutex&) = delete;
  InstrumentedSharedMutex& operator=(const InstrumentedSharedMutex&) = delete;

  void lock() {
    const std::uint64_t n = site_->on_acquire();
    const bool sampled = (n & (kLockSamplePeriod - 1)) == 0;
    if (!sampled) {
      if (mutex_.try_lock()) return;
      const std::uint64_t t0 = lock_ticks();
      mutex_.lock();
      site_->on_contended(lock_ticks_to_ns(lock_ticks() - t0));
      return;
    }
    const std::uint64_t t0 = lock_ticks();
    if (mutex_.try_lock()) {
      site_->on_sampled_wait(lock_ticks_to_ns(lock_ticks() - t0));
    } else {
      mutex_.lock();
      site_->on_contended(lock_ticks_to_ns(lock_ticks() - t0));
    }
    hold_start_ticks_ = lock_ticks();
  }

  bool try_lock() {
    if (!mutex_.try_lock()) return false;
    const std::uint64_t n = site_->on_acquire();
    if ((n & (kLockSamplePeriod - 1)) == 0) hold_start_ticks_ = lock_ticks();
    return true;
  }

  void unlock() {
    if (hold_start_ticks_ != 0) {
      site_->on_hold(lock_ticks_to_ns(lock_ticks() - hold_start_ticks_));
      hold_start_ticks_ = 0;
    }
    mutex_.unlock();
  }

  void lock_shared() {
    const std::uint64_t n = site_->on_acquire();
    const bool sampled = (n & (kLockSamplePeriod - 1)) == 0;
    if (!sampled) {
      if (mutex_.try_lock_shared()) return;
      const std::uint64_t t0 = lock_ticks();
      mutex_.lock_shared();
      site_->on_contended(lock_ticks_to_ns(lock_ticks() - t0));
      return;
    }
    const std::uint64_t t0 = lock_ticks();
    if (mutex_.try_lock_shared()) {
      site_->on_sampled_wait(lock_ticks_to_ns(lock_ticks() - t0));
    } else {
      mutex_.lock_shared();
      site_->on_contended(lock_ticks_to_ns(lock_ticks() - t0));
    }
  }

  bool try_lock_shared() {
    if (!mutex_.try_lock_shared()) return false;
    site_->on_acquire();
    return true;
  }

  void unlock_shared() { mutex_.unlock_shared(); }

  LockSite* site() const noexcept { return site_; }

 private:
  std::shared_mutex mutex_;
  LockSite* site_;
  std::uint64_t hold_start_ticks_ = 0;  // exclusive holds only
};

/// Push the global lock registry into `registry` as gauges
/// (ipd_lock_acquisitions_total / _contended_total / _wait_seconds_total /
/// _hold_seconds_total / _wait_p99_seconds / _hold_p99_seconds, all labeled
/// {site=...}). Gauges, not counters, because totals are set absolutely
/// from the snapshot. Call from a metrics publish hook.
void publish_lock_metrics(MetricsRegistry& registry);

/// JSON array of site snapshots, sorted by total wait descending.
std::string lock_sites_json();

/// Fixed-width table for /locks?format=text and ipd_top; at most
/// `max_rows` rows (0 = all), sorted by total wait descending.
std::string lock_sites_text(std::size_t max_rows = 0);

}  // namespace ipd::obs
