#include "obs/lock_stats.hpp"

#include <algorithm>
#include <ctime>

#include "util/strings.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace ipd::obs {

namespace {

std::int64_t raw_monotonic_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

#if defined(__x86_64__) || defined(_M_X64)
/// ns per TSC tick, calibrated once by pairing the clocks across a ~1ms
/// spin. The TSC on any x86_64 we care about is invariant (constant-rate,
/// never stops), so one calibration holds for the process lifetime.
double tsc_ns_per_tick() noexcept {
  static const double ns_per_tick = [] {
    const std::int64_t ns0 = raw_monotonic_ns();
    const std::uint64_t t0 = __rdtsc();
    std::int64_t ns1 = ns0;
    while (ns1 - ns0 < 1000000) ns1 = raw_monotonic_ns();
    const std::uint64_t t1 = __rdtsc();
    if (t1 <= t0) return 1.0;  // broken TSC: treat ticks as ns
    return static_cast<double>(ns1 - ns0) / static_cast<double>(t1 - t0);
  }();
  return ns_per_tick;
}
#endif

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// 100ns .. ~1.7s in 24 exponential buckets — covers a sampled uncontended
// acquire through a reader stalled behind a full stage-2 rebuild.
std::vector<double> lock_time_bounds() {
  return Histogram::exponential_bounds(100e-9, 2.0, 24);
}

}  // namespace

std::uint64_t lock_ticks() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(raw_monotonic_ns());
#endif
}

std::int64_t lock_ticks_to_ns(std::uint64_t ticks) noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return static_cast<std::int64_t>(static_cast<double>(ticks) *
                                   tsc_ns_per_tick());
#else
  return static_cast<std::int64_t>(ticks);
#endif
}

LockSite::LockSite(std::string name)
    : name_(std::move(name)),
      wait_hist_(lock_time_bounds()),
      hold_hist_(lock_time_bounds()) {}

void LockSite::on_contended(std::int64_t wait_ns) noexcept {
  if (wait_ns < 0) wait_ns = 0;
  contended_.fetch_add(1, std::memory_order_relaxed);
  wait_ns_total_.fetch_add(static_cast<std::uint64_t>(wait_ns),
                           std::memory_order_relaxed);
  atomic_max(wait_max_ns_, static_cast<std::uint64_t>(wait_ns));
  wait_hist_.observe(static_cast<double>(wait_ns) * 1e-9);
}

void LockSite::on_sampled_wait(std::int64_t wait_ns) noexcept {
  if (wait_ns < 0) wait_ns = 0;
  wait_ns_total_.fetch_add(static_cast<std::uint64_t>(wait_ns),
                           std::memory_order_relaxed);
  atomic_max(wait_max_ns_, static_cast<std::uint64_t>(wait_ns));
  wait_hist_.observe(static_cast<double>(wait_ns) * 1e-9);
}

void LockSite::on_hold(std::int64_t hold_ns) noexcept {
  if (hold_ns < 0) hold_ns = 0;
  hold_ns_total_.fetch_add(static_cast<std::uint64_t>(hold_ns),
                           std::memory_order_relaxed);
  atomic_max(hold_max_ns_, static_cast<std::uint64_t>(hold_ns));
  hold_hist_.observe(static_cast<double>(hold_ns) * 1e-9);
}

LockSite::Snapshot LockSite::snapshot() const {
  Snapshot s;
  s.name = name_;
  s.acquisitions = acquisitions_.load(std::memory_order_relaxed);
  s.contended = contended_.load(std::memory_order_relaxed);
  s.wait_samples = wait_hist_.count();
  s.hold_samples = hold_hist_.count();
  s.wait_seconds_total =
      static_cast<double>(wait_ns_total_.load(std::memory_order_relaxed)) *
      1e-9;
  s.hold_seconds_total =
      static_cast<double>(hold_ns_total_.load(std::memory_order_relaxed)) *
      1e-9;
  s.wait_p50_s = wait_hist_.quantile(0.5);
  s.wait_p99_s = wait_hist_.quantile(0.99);
  s.hold_p50_s = hold_hist_.quantile(0.5);
  s.hold_p99_s = hold_hist_.quantile(0.99);
  s.wait_max_s =
      static_cast<double>(wait_max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  s.hold_max_s =
      static_cast<double>(hold_max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

LockRegistry& LockRegistry::instance() {
  static LockRegistry* registry = new LockRegistry();  // never destroyed
  return *registry;
}

LockSite* LockRegistry::site(std::string_view name) {
  std::lock_guard<std::mutex> guard(mutex_);
  for (const auto& s : sites_) {
    if (s->name() == name) return s.get();
  }
  sites_.push_back(std::make_unique<LockSite>(std::string(name)));
  return sites_.back().get();
}

std::vector<LockSite::Snapshot> LockRegistry::snapshot() const {
  std::vector<LockSite*> sites;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    sites.reserve(sites_.size());
    for (const auto& s : sites_) sites.push_back(s.get());
  }
  std::vector<LockSite::Snapshot> out;
  out.reserve(sites.size());
  for (LockSite* s : sites) out.push_back(s->snapshot());
  return out;
}

std::size_t LockRegistry::site_count() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return sites_.size();
}

void publish_lock_metrics(MetricsRegistry& registry) {
  for (const auto& s : LockRegistry::instance().snapshot()) {
    const Labels labels{{"site", s.name}};
    registry
        .gauge("ipd_lock_acquisitions_total",
               "Lock acquisitions per named site (shared+exclusive)", labels)
        .set(static_cast<double>(s.acquisitions));
    registry
        .gauge("ipd_lock_contended_total",
               "Acquisitions that had to block per named site", labels)
        .set(static_cast<double>(s.contended));
    registry
        .gauge("ipd_lock_wait_seconds_total",
               "Total measured lock-wait time per site (contended + sampled)",
               labels)
        .set(s.wait_seconds_total);
    registry
        .gauge("ipd_lock_hold_seconds_total",
               "Total sampled critical-section time per site", labels)
        .set(s.hold_seconds_total);
    registry
        .gauge("ipd_lock_wait_p99_seconds",
               "p99 of measured lock-wait time per site", labels)
        .set(s.wait_p99_s);
    registry
        .gauge("ipd_lock_hold_p99_seconds",
               "p99 of sampled critical-section time per site", labels)
        .set(s.hold_p99_s);
  }
}

namespace {

std::vector<LockSite::Snapshot> sorted_sites() {
  auto sites = LockRegistry::instance().snapshot();
  std::sort(sites.begin(), sites.end(),
            [](const LockSite::Snapshot& a, const LockSite::Snapshot& b) {
              if (a.wait_seconds_total != b.wait_seconds_total)
                return a.wait_seconds_total > b.wait_seconds_total;
              return a.acquisitions > b.acquisitions;
            });
  return sites;
}

}  // namespace

std::string lock_sites_json() {
  std::string out = "[";
  bool first = true;
  for (const auto& s : sorted_sites()) {
    if (!first) out += ",";
    first = false;
    const double contention_pct =
        s.acquisitions == 0
            ? 0.0
            : 100.0 * static_cast<double>(s.contended) /
                  static_cast<double>(s.acquisitions);
    out += util::format(
        "{\"site\":\"%s\",\"acquisitions\":%llu,\"contended\":%llu,"
        "\"contention_pct\":%.4f,"
        "\"wait_samples\":%llu,\"hold_samples\":%llu,"
        "\"wait_seconds_total\":%.9f,\"hold_seconds_total\":%.9f,"
        "\"wait_p50_us\":%.3f,\"wait_p99_us\":%.3f,\"wait_max_us\":%.3f,"
        "\"hold_p50_us\":%.3f,\"hold_p99_us\":%.3f,\"hold_max_us\":%.3f}",
        util::json_escape(s.name).c_str(),
        static_cast<unsigned long long>(s.acquisitions),
        static_cast<unsigned long long>(s.contended), contention_pct,
        static_cast<unsigned long long>(s.wait_samples),
        static_cast<unsigned long long>(s.hold_samples), s.wait_seconds_total,
        s.hold_seconds_total, s.wait_p50_s * 1e6, s.wait_p99_s * 1e6,
        s.wait_max_s * 1e6, s.hold_p50_s * 1e6, s.hold_p99_s * 1e6,
        s.hold_max_s * 1e6);
  }
  out += "]";
  return out;
}

std::string lock_sites_text(std::size_t max_rows) {
  std::string out = util::format(
      "%-22s %12s %10s %7s %11s %11s %11s %11s\n", "SITE", "ACQUIRES",
      "CONTENDED", "CONT%", "WAIT-P99us", "WAIT-MAXus", "HOLD-P99us",
      "WAIT-TOTs");
  std::size_t rows = 0;
  for (const auto& s : sorted_sites()) {
    if (max_rows != 0 && rows++ >= max_rows) break;
    const double contention_pct =
        s.acquisitions == 0
            ? 0.0
            : 100.0 * static_cast<double>(s.contended) /
                  static_cast<double>(s.acquisitions);
    out += util::format(
        "%-22s %12llu %10llu %6.2f%% %11.1f %11.1f %11.1f %11.4f\n",
        s.name.c_str(), static_cast<unsigned long long>(s.acquisitions),
        static_cast<unsigned long long>(s.contended), contention_pct,
        s.wait_p99_s * 1e6, s.wait_max_s * 1e6, s.hold_p99_s * 1e6,
        s.wait_seconds_total);
  }
  return out;
}

}  // namespace ipd::obs
