// Sampling CPU profiler with folded-stack (flamegraph) output.
//
// A timer (setitimer) delivers SIGPROF (cpu clock: samples land on
// whichever thread is burning CPU, in proportion to its usage) or SIGALRM
// (wall clock: samples whatever the process is doing, including blocking
// — useful for "why is it idle" and for smoke tests during linger). The
// async-signal-safe handler captures a backtrace() into a pre-allocated
// fill-once sample ring; symbolization (dladdr + demangle) happens
// offline in folded(), whose output feeds flamegraph.pl / speedscope
// directly:
//
//   ipd-main;main;run_cycle;cycle_over_subtree 42
//
// One profiler can be active per process at a time (the signal handler is
// process-global); start() fails with "another profiler is active"
// otherwise — the /profile endpoint maps that to 409.
//
// Overhead at the default 97 Hz (prime, to avoid phase-locking with
// periodic work): one signal + ~35-frame backtrace every ~10 ms of CPU
// time, well under 1% — the 3% observability budget covers perf counters
// and profiler together (bench_obs_overhead gates it).
#pragma once

#include <pthread.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ipd::obs {

struct CpuProfilerConfig {
  /// Samples per second of CPU (or wall) time. Prime by default.
  int hz = 97;
  /// cpu: SIGPROF/ITIMER_PROF (CPU time). wall: SIGALRM/ITIMER_REAL.
  enum class Clock : std::uint8_t { Cpu = 0, Wall } clock = Clock::Cpu;
  /// Sample capacity; the ring fills once per session (overflow samples
  /// are counted, not stored). 16384 at 97 Hz is ~169 s of CPU time.
  std::size_t capacity = 16384;
  /// Deepest stack recorded per sample.
  static constexpr std::size_t kMaxDepth = 32;
};

class CpuProfiler {
 public:
  explicit CpuProfiler(CpuProfilerConfig config = {});
  ~CpuProfiler();
  CpuProfiler(const CpuProfiler&) = delete;
  CpuProfiler& operator=(const CpuProfiler&) = delete;

  /// Arm the timer and install the signal handler. Fails (false, reason
  /// in *error) when another profiler is already active in this process
  /// or the timer cannot be armed. Restarting a stopped profiler resets
  /// its samples.
  bool start(std::string* error = nullptr);

  /// Disarm, quiesce in-flight handlers, and keep the samples for
  /// folded()/raw access. Idempotent; safe to race with the timer.
  void stop();

  bool running() const noexcept;

  /// The process-wide active profiler (nullptr when none). The /profile
  /// endpoint uses this to distinguish "busy" (409) from other failures.
  static CpuProfiler* active() noexcept;

  std::uint64_t samples_captured() const noexcept;
  std::uint64_t samples_dropped() const noexcept;
  const CpuProfilerConfig& config() const noexcept { return config_; }

  /// Aggregate captured stacks into folded flamegraph lines, sorted by
  /// count descending: "thread;outer;...;inner count\n". Symbolization
  /// uses dladdr (link the binary with ENABLE_EXPORTS / -rdynamic for
  /// names; unresolved frames render as [0x...]). Offline — call after
  /// stop(), or accept a racy-but-safe partial view while running.
  std::string folded() const;

  std::size_t memory_bytes() const noexcept;

  struct Sample {
    std::array<void*, CpuProfilerConfig::kMaxDepth> pcs;
    std::uint32_t depth = 0;
    char thread_name[16] = {};
  };
  /// Captured samples, oldest first (tests / custom renderers).
  std::vector<Sample> raw_samples() const;

 private:
  friend void profiler_capture_sample(CpuProfiler& profiler) noexcept;

  CpuProfilerConfig config_;
  struct Slot;
  std::unique_ptr<Slot[]> ring_;
  std::atomic<std::uint64_t> next_{0};     // claimed slots (may exceed capacity)
  std::atomic<std::uint64_t> dropped_{0};  // claims past capacity
  std::atomic<bool> running_{false};
};

/// Synchronously capture the current stack of another live thread of this
/// process (the watchdog's stall forensics). Sends SIGURG — whose default
/// disposition is *ignore*, so a stray late signal can never kill the
/// process — with a one-shot async-signal-safe handler that backtrace()s
/// into a static buffer; the caller spin-waits up to `timeout_ms` for the
/// handler to finish. Serialized process-wide (one capture at a time);
/// independent of the setitimer profiler, so it works while a CpuProfiler
/// session is running. Returns false on timeout or when the thread is
/// gone; `out` is only written on success.
bool capture_thread_stack(pthread_t thread, CpuProfiler::Sample& out,
                          int timeout_ms = 500);

/// Render one captured sample as a folded stack line (no trailing count):
/// "thread;outermost;...;innermost". Same symbolization and
/// capture-machinery trimming as CpuProfiler::folded(). Offline — calls
/// dladdr/demangle, not signal-safe.
std::string folded_stack_line(const CpuProfiler::Sample& sample);

}  // namespace ipd::obs
