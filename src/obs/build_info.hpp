// Build identity, stamped at configure time (git sha, build type,
// compiler, sanitizer flags) and exported as the conventional
// ipd_build_info gauge: constant value 1, identity in the labels.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace ipd::obs {

struct BuildInfo {
  std::string git_sha;    ///< short sha, "unknown" outside a checkout
  std::string build_type; ///< CMAKE_BUILD_TYPE, "unspecified" when empty
  std::string compiler;   ///< id + version, e.g. "GNU 13.2.0"
  std::string sanitizer;  ///< IPD_SANITIZE value, "none" when off
};

/// The values baked into this binary.
const BuildInfo& build_info() noexcept;

/// Register ipd_build_info{sha,build,compiler,sanitizer} = 1 in `registry`.
void register_build_info(MetricsRegistry& registry);

/// One-line human rendering, e.g. "sha=1a2b3c4 build=Release cc=GNU 13.2.0
/// sanitizer=none" — used by ipd_top's header and --version-ish output.
std::string build_info_line();

}  // namespace ipd::obs
