// Span tracer and flight recorder.
//
// Records spans (named intervals with numeric args) into a bounded ring and
// renders them as Chrome/Perfetto trace-event JSON ("traceEvents"). Because
// the ring is always on and fixed-size, it doubles as a *flight recorder*:
// the tail of recent activity can be dumped on demand (the /trace endpoint,
// Tracer::to_json) or from a crash handler (install_crash_handler) for
// post-mortem analysis in Perfetto.
//
// Cost model: one mutex-guarded fixed-size slot write per span. Producers
// emit a handful of spans per stage-2 cycle and one per stage-1 batch —
// never one per flow — so tracing stays far below the ingest budget.
// Event names and arg keys must be string literals (static storage): the
// ring stores the pointers and never allocates per event.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <vector>

namespace ipd::obs {

/// One numeric argument attached to a trace event. `key` must be a string
/// literal.
struct TraceArg {
  const char* key = "";
  double value = 0.0;
};

/// One fixed-size flight-recorder slot. `ts_us`/`dur_us` are microseconds
/// on the tracer's monotonic clock (0 = tracer construction).
struct TraceEvent {
  const char* name = "";
  char phase = 'X';  // 'X' complete span, 'i' instant
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint32_t tid = 1;
  std::array<TraceArg, 4> args{};
  std::uint8_t nargs = 0;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 16384;

  /// Microseconds since tracer construction (the `ts` clock of every
  /// recorded event).
  std::int64_t now_us() const noexcept;

  /// Record a complete span ('X'). Extra args beyond the slot's capacity
  /// (4) are dropped. Thread-safe.
  void span(const char* name, std::int64_t ts_us, std::int64_t dur_us,
            std::initializer_list<TraceArg> args = {},
            std::uint32_t tid = 1) noexcept;

  /// Record an instant event ('i') at the current time.
  void instant(const char* name, std::initializer_list<TraceArg> args = {},
               std::uint32_t tid = 1) noexcept;

  /// Record a fully built event verbatim (span()/instant() are wrappers).
  void record_event(const TraceEvent& event) noexcept;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const;
  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;  // overwritten by the ring

  /// The most recent `max_events` events, oldest first.
  std::vector<TraceEvent> tail(std::size_t max_events = SIZE_MAX) const;

  /// Render the flight-recorder tail as a Chrome trace-event JSON document
  /// ({"traceEvents": [...]}) loadable in Perfetto / chrome://tracing.
  std::string to_json(std::size_t max_events = SIZE_MAX) const;

  /// Render an arbitrary event list the same way.
  static std::string events_to_json(const std::vector<TraceEvent>& events);

  /// Rough heap usage of the ring (for resource accounting).
  std::size_t memory_bytes() const;

  /// Install a best-effort crash handler (SIGSEGV/SIGBUS/SIGFPE/SIGABRT)
  /// that dumps the flight-recorder tail to `path` before re-raising the
  /// signal. Process-global: one tracer at a time. The handler formats
  /// into a static buffer with snprintf and write(2); it reads the ring
  /// without locking (the crashed thread may hold the mutex), so a dump
  /// racing an in-flight write can contain one torn event — acceptable for
  /// post-mortem use.
  void install_crash_handler(const std::string& path);

  /// The crash handler's dump routine: writes the tail to `path` without
  /// taking the mutex (see install_crash_handler). Public only because the
  /// signal handler must reach it; also handy for tests.
  void dump_for_crash(const char* path, int signum) noexcept;

 private:
  const std::size_t capacity_;
  const std::int64_t epoch_ns_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::uint64_t next_seq_ = 0;
};

/// Records one complete span over its own lifetime. Usage:
///   { SpanTimer span(tracer, "snapshot"); ...work...; }
/// A null tracer disables it without branching at the call site. Arguments
/// can be attached before destruction via set_args().
class SpanTimer {
 public:
  SpanTimer(Tracer* tracer, const char* name) noexcept;
  ~SpanTimer();

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  void set_args(std::initializer_list<TraceArg> args) noexcept;

 private:
  Tracer* tracer_;
  const char* name_;
  std::int64_t start_us_ = 0;
  std::array<TraceArg, 4> args_{};
  std::uint8_t nargs_ = 0;
};

}  // namespace ipd::obs
