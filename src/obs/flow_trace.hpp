// Per-flow provenance tracing via deterministic hash-based sampling.
//
// A flow's identity is the 64-bit mix of the only fields every pipeline
// stage can see — (data timestamp, cidr_max-masked source IP, ingress link
// key) — so each hop recomputes the same id independently, with no token
// threaded through rings or batches. A flow is sampled iff the id's top
// log2(period) bits are zero, which makes the sampled *set* a pure
// function of the input: identical across shard counts, thread counts,
// and batch sizes (the determinism-differential harness asserts exactly
// this). This is the large-flow-identification trick of Azzana et al.
// repurposed for lineage: the hash gates work, so the unsampled hot path
// pays one multiply + one mask test (~2 ns) per hop.
//
// Sampled flows accumulate timestamped hops (decode, ring enqueue/dequeue,
// shard routing, stage-1 trie apply) into a bounded FIFO journey ring;
// stage-2 decisions are correlated lazily at export time through the
// DecisionLog (events covering the flow's IP at or after its data time),
// so stage 2 itself carries zero tracing cost. Journeys export as JSON
// (the /flows endpoint) or JSONL (`ipd_replay --flow-trace-out`).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip_address.hpp"
#include "obs/metrics.hpp"
#include "topology/ids.hpp"
#include "util/time.hpp"

namespace ipd::obs {

/// Pipeline stages a sampled flow is observed at, in causal order.
enum class FlowHopKind : std::uint8_t {
  Decode,       // datagram/record decoded at the collector or replay reader
  RingEnqueue,  // pushed onto a collector SPSC ring (detail = source index)
  RingDequeue,  // drained off the ring by the IPD thread
  ShardRoute,   // bucketed to a trie-cut member (detail = slot index)
  TrieApply,    // stage-1 add_sample landed in the range trie
};

const char* to_string(FlowHopKind kind) noexcept;

/// One timestamped observation of a sampled flow at a pipeline stage.
struct FlowHop {
  FlowHopKind kind = FlowHopKind::Decode;
  std::uint32_t detail = 0;      // stage-specific: source / shard index
  util::Timestamp data_ts = 0;   // simulated data time of the record
  std::int64_t mono_ns = 0;      // monotonic wall clock at observation
};

/// The recorded life of one sampled flow.
struct FlowJourney {
  std::uint64_t id = 0;          // deterministic hash id (see flow_id())
  net::IpAddress ip;             // cidr_max-masked source address
  topology::LinkId link;         // ingress link of the first observation
  util::Timestamp first_ts = 0;  // data time of the first observation
  std::uint64_t hops_dropped = 0;  // hops beyond max_hops_per_flow
  std::vector<FlowHop> hops;
};

/// Render one journey as a standalone JSON object (no trailing newline).
/// `decisions_json` — optional pre-rendered JSON array of correlated
/// stage-2 decision events; empty means "emit an empty array".
std::string to_json(const FlowJourney& journey,
                    const std::string& decisions_json = std::string());

struct FlowTracerConfig {
  // Sampling period (rounded up to a power of two). 1 samples every
  // flow; the default keeps tracing invisible at production rates.
  std::uint64_t sample_period = 65536;
  std::size_t max_flows = 512;         // retained journeys (FIFO evict)
  std::size_t max_hops_per_flow = 32;  // hops kept per journey
};

class FlowTracer {
 public:
  using Config = FlowTracerConfig;

  /// IPD_FLOW_SAMPLE=<n> overrides the default period (n >= 1; malformed
  /// or absent values fall back to `fallback`).
  static std::uint64_t sample_period_from_env(
      std::uint64_t fallback = 65536) noexcept;

  explicit FlowTracer(Config config = {});

  FlowTracer(const FlowTracer&) = delete;
  FlowTracer& operator=(const FlowTracer&) = delete;

  /// The deterministic flow identity. `masked` must already be masked to
  /// the family's cidr_max so every stage hashes the same bits.
  static std::uint64_t flow_id(util::Timestamp ts,
                               const net::IpAddress& masked,
                               topology::LinkId link) noexcept {
    // This runs once per hop on the UNSAMPLED hot path, so it is one
    // multiply total (multiply-shift hashing): rotations keep the xor
    // combine from cancelling across fields, the odd-constant product
    // distributes the HIGH bits well, and sampled() tests exactly those
    // bits. The multiply is a bijection, so id collisions are no more
    // likely than with a full finalizer. A chained splitmix64 per
    // component was measured at ~16% ingest overhead; this fits the 3%
    // observability budget.
    const std::uint64_t raw =
        static_cast<std::uint64_t>(ts) ^ rotl(masked.lo(), 17) ^
        rotl(masked.hi(), 31) ^ rotl(link.key(), 47) ^
        (static_cast<std::uint64_t>(masked.family()) << 62);
    return raw * 0x9e3779b97f4a7c15ULL;
  }

  /// Sampled iff the id's top log2(period) bits are all zero (the
  /// well-mixed end of a multiply-shift hash) — still a pure function of
  /// the id, so the sampled set stays deterministic.
  bool sampled(std::uint64_t id) const noexcept {
    return (id & sample_gate_) == 0;
  }

  std::uint64_t sample_period() const noexcept { return sample_period_; }

  /// Hash-test-record in one call: returns the flow id when the flow is
  /// sampled (after recording the hop), 0 otherwise. This is the hot-path
  /// entry — unsampled flows cost one hash and one branch.
  std::uint64_t observe(FlowHopKind kind, util::Timestamp ts,
                        const net::IpAddress& masked, topology::LinkId link,
                        std::uint32_t detail = 0) noexcept {
    const std::uint64_t id = flow_id(ts, masked, link);
    if (!sampled(id)) return 0;
    record(id, kind, ts, masked, link, detail);
    return id;
  }

  /// Record a hop for a flow already known to be sampled (id != 0), e.g.
  /// when the id was computed once at routing time and carried alongside
  /// the staged sample.
  void record(std::uint64_t id, FlowHopKind kind, util::Timestamp ts,
              const net::IpAddress& masked, topology::LinkId link,
              std::uint32_t detail = 0) noexcept;

  /// Export decode->trie-apply latency and sampling counters to the
  /// registry. Call once before traffic; nullptr detaches.
  void bind_metrics(MetricsRegistry* registry);

  /// Copy out up to `limit` journeys, oldest first (0 = all retained).
  std::vector<FlowJourney> journeys(std::size_t limit = 0) const;

  std::uint64_t flows_sampled() const noexcept;   // unique journeys ever
  std::uint64_t hops_recorded() const noexcept;
  std::uint64_t journeys_evicted() const noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int r) noexcept {
    return (x << r) | (x >> (64 - r));
  }

  std::uint64_t sample_period_;  // power of two, >= 1
  std::uint64_t sample_gate_;    // top log2(period) bits; 0 == sample all
  Config config_;

  mutable std::mutex mutex_;
  std::deque<FlowJourney> ring_;                         // FIFO, bounded
  std::unordered_map<std::uint64_t, std::size_t> index_;  // id -> seq
  std::uint64_t ring_base_ = 0;  // seq of ring_.front()
  std::uint64_t flows_sampled_ = 0;
  std::uint64_t hops_recorded_ = 0;
  std::uint64_t journeys_evicted_ = 0;

  Counter* sampled_counter_ = nullptr;
  Counter* hops_counter_ = nullptr;
  Histogram* decode_to_apply_ = nullptr;
};

}  // namespace ipd::obs
