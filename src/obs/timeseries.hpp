// Embedded fixed-memory time-series store (a tiny TSDB).
//
// Retains a windowed history of every metric at the runner's snapshot
// cadence (5-minute output bins, §5.7) so that rule evaluation can tell
// persistent shifts from churn — instantaneous counters cannot (the
// elephant-flow stability literature makes the same point: windowed
// history, not point samples, separates real change from noise).
//
// Storage model: one preallocated ring buffer of (timestamp, value)
// points per series. open() allocates the ring once; append() after that
// touches only the ring slots — no allocation, no rehashing on the data
// path. When a ring is full the oldest point is overwritten, which *is*
// the retention policy: points_per_series × ingest cadence = retention
// window. Timestamps must be strictly increasing per series; out-of-order
// appends are rejected and counted, never silently reordered.
//
// ingest() bridges a MetricsRegistry snapshot into the store: counters
// and gauges become one series each, histograms become two (`_sum` and
// `_count`, the Prometheus convention) so windowed rates and per-event
// averages can be derived from deltas. Series identity is (name, sorted
// label set), same as the registry.
//
// The store is internally synchronized; readers (the /timeseries endpoint,
// the health engine) never block the engine mutex.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace ipd::obs {

struct TimeSeriesConfig {
  /// Ring capacity per series. 288 points at the 5-minute cadence is a
  /// 24-hour retention window.
  std::size_t points_per_series = 288;
  /// Hard cap on distinct series (fixed memory bound). open() beyond the
  /// cap returns kInvalidSeries and counts the rejection.
  std::size_t max_series = 4096;
};

struct TsPoint {
  util::Timestamp ts = 0;
  double value = 0.0;
};

/// Windowed aggregate over the newest points of one series.
struct TsWindow {
  std::size_t points = 0;  // points actually present (<= requested)
  double first = 0.0;      // oldest value in the window
  double last = 0.0;       // newest value
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  util::Timestamp first_ts = 0;
  util::Timestamp last_ts = 0;
};

class TimeSeriesStore {
 public:
  using SeriesId = std::uint32_t;
  static constexpr SeriesId kInvalidSeries = UINT32_MAX;

  explicit TimeSeriesStore(TimeSeriesConfig config = {});
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  const TimeSeriesConfig& config() const noexcept { return config_; }

  /// Get-or-create the series (name, labels). Allocates the ring on first
  /// use; returns kInvalidSeries once max_series is reached.
  SeriesId open(std::string_view name, Labels labels = {});

  /// Find without creating.
  SeriesId find(std::string_view name, const Labels& labels = {}) const;

  /// Append one point. Returns false (and counts the rejection) when `id`
  /// is invalid or `ts` is not strictly newer than the series tail.
  bool append(SeriesId id, util::Timestamp ts, double value);

  /// Snapshot `registry` into the store at time `ts`: every counter/gauge
  /// sample appends one point, every histogram sample appends `<name>_sum`
  /// and `<name>_count`. Returns the number of points appended.
  std::size_t ingest(const MetricsRegistry& registry, util::Timestamp ts);

  /// Points of one series with ts >= from, oldest first.
  std::vector<TsPoint> points(SeriesId id, util::Timestamp from = 0) const;

  /// Aggregate over the newest `window_points` of the series; nullopt when
  /// the series is unknown or empty.
  std::optional<TsWindow> window(SeriesId id, std::size_t window_points) const;

  /// Descriptor of one live series (for /timeseries and listings).
  struct SeriesInfo {
    SeriesId id = kInvalidSeries;
    std::string name;
    Labels labels;
    std::size_t points = 0;
    util::Timestamp last_ts = 0;
  };

  /// All series sharing `name` (any labels), in creation order.
  std::vector<SeriesInfo> series_named(std::string_view name) const;

  /// Every live series, in creation order.
  std::vector<SeriesInfo> list() const;

  std::size_t series_count() const;
  std::uint64_t points_appended() const;
  std::uint64_t rejected_out_of_order() const;
  std::uint64_t rejected_capacity() const;

  /// Heap held by the store (rings + index); fixed after the series set
  /// stabilizes.
  std::size_t memory_bytes() const;

 private:
  struct Series {
    std::string name;
    Labels labels;
    std::vector<TsPoint> ring;  // capacity points_per_series, preallocated
    std::size_t head = 0;       // index of the oldest point
    std::size_t size = 0;
    util::Timestamp last_ts = INT64_MIN;
  };

  static std::string series_key(std::string_view name, const Labels& labels);

  mutable std::mutex mutex_;
  TimeSeriesConfig config_;
  std::vector<Series> series_;
  std::unordered_map<std::string, SeriesId> index_;
  std::uint64_t points_appended_ = 0;
  std::uint64_t rejected_out_of_order_ = 0;
  std::uint64_t rejected_capacity_ = 0;
};

}  // namespace ipd::obs
