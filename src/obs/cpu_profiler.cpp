#include "obs/cpu_profiler.hpp"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <sched.h>
#include <signal.h>
#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>
#include <unordered_map>

#include "util/strings.hpp"
#include "util/thread.hpp"

namespace ipd::obs {

void profiler_capture_sample(CpuProfiler& profiler) noexcept;

namespace {

// One profiler per process: the signal disposition is process-global.
// g_inflight counts handlers between entry and exit so stop() can quiesce
// before tearing anything down.
std::atomic<CpuProfiler*> g_active{nullptr};
std::atomic<int> g_inflight{0};

int clock_signal(CpuProfilerConfig::Clock clock) noexcept {
  return clock == CpuProfilerConfig::Clock::Cpu ? SIGPROF : SIGALRM;
}

int clock_timer(CpuProfilerConfig::Clock clock) noexcept {
  return clock == CpuProfilerConfig::Clock::Cpu ? ITIMER_PROF : ITIMER_REAL;
}

}  // namespace

// Async-signal-safe: atomics, backtrace() (primed at start), memcpy.
// extern "C" so dladdr resolves a stable name for frame trimming.
extern "C" void ipd_profiler_signal_entry(int) {
  const int saved_errno = errno;
  g_inflight.fetch_add(1, std::memory_order_acquire);
  CpuProfiler* profiler = g_active.load(std::memory_order_acquire);
  if (profiler != nullptr) profiler_capture_sample(*profiler);
  g_inflight.fetch_sub(1, std::memory_order_release);
  errno = saved_errno;
}

struct CpuProfiler::Slot {
  std::atomic<bool> ready{false};
  Sample sample;
};

void profiler_capture_sample(CpuProfiler& profiler) noexcept {
  const std::uint64_t idx =
      profiler.next_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= profiler.config_.capacity) {
    profiler.dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  CpuProfiler::Slot& slot = profiler.ring_[idx];
  CpuProfiler::Sample& sample = slot.sample;
  const int depth = ::backtrace(
      sample.pcs.data(), static_cast<int>(CpuProfilerConfig::kMaxDepth));
  sample.depth = depth > 0 ? static_cast<std::uint32_t>(depth) : 0;
  const char* name = util::current_thread_name();
  std::size_t n = 0;
  while (n < sizeof(sample.thread_name) - 1 && name[n] != '\0') {
    sample.thread_name[n] = name[n];
    ++n;
  }
  sample.thread_name[n] = '\0';
  slot.ready.store(true, std::memory_order_release);
}

CpuProfiler::CpuProfiler(CpuProfilerConfig config) : config_(config) {
  config_.hz = std::clamp(config_.hz, 1, 1000);
  config_.capacity = std::max<std::size_t>(config_.capacity, 16);
  ring_ = std::make_unique<Slot[]>(config_.capacity);
}

CpuProfiler::~CpuProfiler() { stop(); }

CpuProfiler* CpuProfiler::active() noexcept {
  return g_active.load(std::memory_order_acquire);
}

bool CpuProfiler::running() const noexcept {
  return running_.load(std::memory_order_acquire);
}

std::uint64_t CpuProfiler::samples_captured() const noexcept {
  return std::min<std::uint64_t>(next_.load(std::memory_order_acquire),
                                 config_.capacity);
}

std::uint64_t CpuProfiler::samples_dropped() const noexcept {
  return dropped_.load(std::memory_order_acquire);
}

bool CpuProfiler::start(std::string* error) {
  CpuProfiler* expected = nullptr;
  if (!g_active.compare_exchange_strong(expected, this,
                                        std::memory_order_acq_rel)) {
    if (error != nullptr) *error = "another profiler is active";
    return false;
  }

  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < config_.capacity; ++i) {
    ring_[i].ready.store(false, std::memory_order_relaxed);
  }
  // Prime backtrace outside signal context: the first call may load
  // libgcc (malloc, dlopen — not async-signal-safe).
  void* prime[4];
  ::backtrace(prime, 4);

  const int sig = clock_signal(config_.clock);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = ipd_profiler_signal_entry;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (::sigaction(sig, &action, nullptr) != 0) {
    g_active.store(nullptr, std::memory_order_release);
    if (error != nullptr) *error = "sigaction failed";
    return false;
  }

  const long interval_us = std::max(1000000L / config_.hz, 1L);
  itimerval timer{};
  timer.it_interval.tv_sec = interval_us / 1000000;
  timer.it_interval.tv_usec = interval_us % 1000000;
  timer.it_value = timer.it_interval;
  if (::setitimer(clock_timer(config_.clock), &timer, nullptr) != 0) {
    std::memset(&action, 0, sizeof(action));
    action.sa_handler = SIG_IGN;
    ::sigaction(sig, &action, nullptr);
    g_active.store(nullptr, std::memory_order_release);
    if (error != nullptr) *error = "setitimer failed";
    return false;
  }
  running_.store(true, std::memory_order_release);
  return true;
}

void CpuProfiler::stop() {
  CpuProfiler* expected = this;
  if (!g_active.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel)) {
    return;  // not (or no longer) the active profiler
  }
  itimerval zero{};
  ::setitimer(clock_timer(config_.clock), &zero, nullptr);
  // Handlers that loaded g_active before the clear may still be sampling;
  // wait them out before the caller may destroy this object.
  while (g_inflight.load(std::memory_order_acquire) != 0) {
    ::sched_yield();
  }
  // Move the disposition to SIG_IGN (not the previous handler): a signal
  // left pending between the disarm and here must be discarded, never hit
  // the default action (terminate). Our handler stays valid meanwhile and
  // no-ops on g_active == nullptr.
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = SIG_IGN;
  ::sigaction(clock_signal(config_.clock), &action, nullptr);
  running_.store(false, std::memory_order_release);
}

std::vector<CpuProfiler::Sample> CpuProfiler::raw_samples() const {
  std::vector<Sample> out;
  const std::uint64_t n = samples_captured();
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!ring_[i].ready.load(std::memory_order_acquire)) continue;
    out.push_back(ring_[i].sample);
  }
  return out;
}

namespace {

/// Symbolize one pc: demangled function name, else "[0xADDR]". dladdr
/// only sees dynamic symbols — executables link with ENABLE_EXPORTS
/// (-rdynamic) where names matter.
std::string symbolize(void* pc) {
  Dl_info info;
  if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out(demangled);
      std::free(demangled);
      return out;
    }
    if (demangled != nullptr) std::free(demangled);
    return info.dli_sname;
  }
  return util::format("[%p]", pc);
}

bool is_handler_frame(const std::string& symbol) noexcept {
  return symbol == "ipd_profiler_signal_entry" ||
         symbol == "ipd_stack_capture_entry" || symbol == "__restore_rt" ||
         symbol.find("profiler_capture_sample") != std::string::npos ||
         symbol.find("backtrace") != std::string::npos;
}

}  // namespace

std::string CpuProfiler::folded() const {
  std::unordered_map<void*, std::string> symbols;
  const auto symbol_of = [&symbols](void* pc) -> const std::string& {
    auto it = symbols.find(pc);
    if (it == symbols.end()) it = symbols.emplace(pc, symbolize(pc)).first;
    return it->second;
  };

  std::map<std::string, std::uint64_t> fold;
  const std::uint64_t n = samples_captured();
  for (std::uint64_t i = 0; i < n; ++i) {
    if (!ring_[i].ready.load(std::memory_order_acquire)) continue;
    const Sample& sample = ring_[i].sample;
    if (sample.depth == 0) continue;
    // Trim the capture machinery (handler, signal trampoline) off the
    // innermost end. Only the first few frames can be machinery.
    std::size_t begin = 0;
    const std::size_t scan = std::min<std::size_t>(sample.depth, 5);
    for (std::size_t j = 0; j < scan; ++j) {
      if (is_handler_frame(symbol_of(sample.pcs[j]))) begin = j + 1;
    }
    if (begin >= sample.depth) begin = sample.depth - 1;

    std::string line = sample.thread_name[0] != '\0'
                           ? std::string(sample.thread_name)
                           : std::string("unnamed");
    // backtrace() is innermost-first; folded format is outermost-first.
    for (std::size_t j = sample.depth; j-- > begin;) {
      line += ';';
      line += symbol_of(sample.pcs[j]);
    }
    ++fold[line];
  }

  std::vector<std::pair<std::string, std::uint64_t>> rows(fold.begin(),
                                                          fold.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::string out;
  for (const auto& [stack, count] : rows) {
    out += stack;
    out += util::format(" %llu\n", static_cast<unsigned long long>(count));
  }
  return out;
}

std::size_t CpuProfiler::memory_bytes() const noexcept {
  return sizeof(*this) + config_.capacity * sizeof(Slot);
}

// ---------------------------------------------------------------------------
// Cross-thread stack capture (watchdog stall forensics).
//
// The target thread is interrupted with SIGURG; the handler backtrace()s
// into a static buffer and flips g_stack_done. SIGURG's default disposition
// is ignore, so even a signal that outlives the handler installation (or
// races a concurrent sigaction) is harmless. g_stack_armed makes the
// handler one-shot: a stray second SIGURG (e.g. from the kernel on OOB TCP
// data) finds armed == false and does nothing.

namespace {

std::mutex g_stack_mutex;                 // one capture at a time
std::atomic<bool> g_stack_armed{false};   // handler may write the buffer
std::atomic<bool> g_stack_done{false};    // handler finished writing
CpuProfiler::Sample g_stack_sample;       // handler-owned while armed

}  // namespace

extern "C" void ipd_stack_capture_entry(int) {
  const int saved_errno = errno;
  bool expected = true;
  if (g_stack_armed.compare_exchange_strong(expected, false,
                                            std::memory_order_acq_rel)) {
    CpuProfiler::Sample& sample = g_stack_sample;
    const int depth = ::backtrace(
        sample.pcs.data(), static_cast<int>(CpuProfilerConfig::kMaxDepth));
    sample.depth = depth > 0 ? static_cast<std::uint32_t>(depth) : 0;
    const char* name = util::current_thread_name();
    std::size_t n = 0;
    while (n < sizeof(sample.thread_name) - 1 && name[n] != '\0') {
      sample.thread_name[n] = name[n];
      ++n;
    }
    sample.thread_name[n] = '\0';
    g_stack_done.store(true, std::memory_order_release);
  }
  errno = saved_errno;
}

bool capture_thread_stack(pthread_t thread, CpuProfiler::Sample& out,
                          int timeout_ms) {
  std::lock_guard<std::mutex> guard(g_stack_mutex);

  // Prime backtrace outside signal context (first call may dlopen libgcc).
  void* prime[4];
  ::backtrace(prime, 4);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = ipd_stack_capture_entry;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  if (::sigaction(SIGURG, &action, nullptr) != 0) return false;

  g_stack_done.store(false, std::memory_order_relaxed);
  g_stack_sample.depth = 0;
  g_stack_armed.store(true, std::memory_order_release);

  if (::pthread_kill(thread, SIGURG) != 0) {
    g_stack_armed.store(false, std::memory_order_release);
    return false;  // thread already gone (ESRCH)
  }

  const std::int64_t deadline_us =
      static_cast<std::int64_t>(timeout_ms) * 1000;
  bool done = false;
  for (std::int64_t waited_us = 0; waited_us < deadline_us;
       waited_us += 200) {
    if (g_stack_done.load(std::memory_order_acquire)) {
      done = true;
      break;
    }
    timespec nap{0, 200 * 1000};
    ::nanosleep(&nap, nullptr);
  }
  done = done || g_stack_done.load(std::memory_order_acquire);
  g_stack_armed.store(false, std::memory_order_release);
  if (!done) return false;
  out = g_stack_sample;
  return true;
}

std::string folded_stack_line(const CpuProfiler::Sample& sample) {
  std::string line = sample.thread_name[0] != '\0'
                         ? std::string(sample.thread_name)
                         : std::string("unnamed");
  if (sample.depth == 0) return line;
  std::size_t begin = 0;
  const std::size_t scan = std::min<std::size_t>(sample.depth, 5);
  std::vector<std::string> inner(scan);
  for (std::size_t j = 0; j < scan; ++j) {
    inner[j] = symbolize(sample.pcs[j]);
    if (is_handler_frame(inner[j])) begin = j + 1;
  }
  if (begin >= sample.depth) begin = sample.depth - 1;
  for (std::size_t j = sample.depth; j-- > begin;) {
    line += ';';
    line += j < scan ? inner[j] : symbolize(sample.pcs[j]);
  }
  return line;
}

}  // namespace ipd::obs
