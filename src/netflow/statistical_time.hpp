// "Statistical time" pre-processing (paper §3.1).
//
// Router clocks drift, so the pipeline does not trust raw export
// timestamps. Instead it segments traffic into uniform time buckets and
// infers event ordering from the bulk of the data: buckets that do not
// meet an activity threshold are discarded, and records falling outside
// the currently plausible time range are dropped. "This method might
// exclude some data but ensures consistency despite clock drifts."
//
// The implementation is streaming: records are staged per bucket; once the
// stream's watermark has moved `settle_buckets` past a bucket, that bucket
// is either emitted (normalized to the bucket start) or discarded.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "netflow/flow_record.hpp"
#include "util/time.hpp"

namespace ipd::netflow {

struct StatisticalTimeConfig {
  util::Duration bucket_len = 60;     // uniform bucket size (= IPD's t)
  std::uint64_t activity_threshold = 10;  // min records for a bucket to count
  util::Duration max_skew = 300;      // drop records further than this from
                                      // the current stream watermark
  int settle_buckets = 2;             // buckets to wait before sealing one
};

struct StatisticalTimeStats {
  std::uint64_t records_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t dropped_skew = 0;      // outside plausible window
  std::uint64_t dropped_inactive = 0;  // in a below-threshold bucket
  std::uint64_t buckets_emitted = 0;
  std::uint64_t buckets_discarded = 0;
};

/// Streaming pre-processor. Feed records (roughly ordered, drift allowed),
/// receive cleaned records via the sink; call flush() at end of stream.
class StatisticalTime {
 public:
  using Sink = std::function<void(const FlowRecord&)>;

  StatisticalTime(StatisticalTimeConfig config, Sink sink);

  /// Offer one record. May synchronously emit older, now-settled buckets.
  void offer(const FlowRecord& record);

  /// Seal and emit/discard all pending buckets.
  void flush();

  const StatisticalTimeStats& stats() const noexcept { return stats_; }

  /// Current watermark: the largest plausible time seen so far.
  util::Timestamp watermark() const noexcept { return watermark_; }

 private:
  void seal_up_to(std::int64_t bucket_exclusive);

  StatisticalTimeConfig config_;
  Sink sink_;
  StatisticalTimeStats stats_;
  // Pending buckets keyed by bucket index; records stored with raw ts.
  std::map<std::int64_t, std::vector<FlowRecord>> pending_;
  util::Timestamp watermark_ = 0;
  bool have_watermark_ = false;
};

}  // namespace ipd::netflow
