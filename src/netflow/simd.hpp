// Runtime dispatch for the SWAR/SIMD decode fast paths.
//
// The wire-format decoders keep two implementations: a scalar reference
// path (byte-at-a-time shifts, the original code, kept as the
// differential-fuzz oracle) and a SWAR path that loads whole 64-bit words
// and byte-swaps them in one instruction. Which one runs is decided once
// per process from the environment:
//
//   IPD_NO_SIMD=1  force the scalar reference path everywhere
//
// The SWAR path is plain portable C++ (memcpy loads + __builtin_bswap),
// so unlike ISA-specific SIMD there is no capability probe — the knob
// exists for differential testing and for ruling the fast path in or out
// when chasing a miscompare in the field.
#pragma once

namespace ipd::netflow::simd {

enum class Level {
  Scalar,  // reference byte-at-a-time path
  Swar,    // 64-bit word loads + bswap
};

/// Process-wide decode level, resolved once from IPD_NO_SIMD.
Level active_level() noexcept;

inline bool swar_enabled() noexcept {
  return active_level() == Level::Swar;
}

const char* to_string(Level level) noexcept;

}  // namespace ipd::netflow::simd
