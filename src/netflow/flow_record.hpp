// Sampled flow-level record, the sole input of the IPD algorithm.
//
// Matches the fields the paper's deployment keeps after anonymization:
// timestamp, source IP (the generator emits /28-aligned hosts where the
// scenario wants paper-like privacy aggregation), the ingress link on which
// the flow was observed, plus packet/byte counters for workload realism.
#pragma once

#include <cstdint>

#include "net/ip_address.hpp"
#include "topology/ids.hpp"
#include "util/time.hpp"

namespace ipd::netflow {

struct FlowRecord {
  util::Timestamp ts = 0;       // export timestamp (may carry clock drift)
  net::IpAddress src_ip;        // remote sender
  net::IpAddress dst_ip;        // destination inside the ISP (or beyond)
  std::uint32_t packets = 1;    // sampled packet count
  std::uint64_t bytes = 0;      // sampled byte count
  topology::LinkId ingress;     // border router + interface of observation

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

}  // namespace ipd::netflow
