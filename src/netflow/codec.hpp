// Binary on-disk codec for flow records.
//
// A compact fixed-layout format (little-endian) so traces can be captured
// once and replayed across parameter-study runs, like the paper's 25-hour
// validation capture. The stream starts with a magic/version header; each
// record is tagged with its address family.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netflow/flow_record.hpp"

namespace ipd::netflow {

inline constexpr std::uint32_t kTraceMagic = 0x49504446;  // "IPDF"
inline constexpr std::uint16_t kTraceVersion = 1;

/// Streaming writer. Not copyable; flushes on destruction.
class TraceWriter {
 public:
  explicit TraceWriter(std::ostream& out);

  void write(const FlowRecord& record);

  std::uint64_t records_written() const noexcept { return count_; }

 private:
  std::ostream& out_;
  std::uint64_t count_ = 0;
};

/// Streaming reader; validates the header on construction.
/// Throws std::runtime_error on malformed input.
class TraceReader {
 public:
  explicit TraceReader(std::istream& in);

  /// Next record, or nullopt at clean end-of-stream.
  std::optional<FlowRecord> read();

  std::uint64_t records_read() const noexcept { return count_; }

 private:
  std::istream& in_;
  std::uint64_t count_ = 0;
};

/// Convenience: round-trip a whole vector through the codec.
void write_trace_file(const std::string& path, const std::vector<FlowRecord>& records);
std::vector<FlowRecord> read_trace_file(const std::string& path);

}  // namespace ipd::netflow
