#include "netflow/codec.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace ipd::netflow {

namespace {

template <typename T>
void put(std::ostream& out, T value) {
  // Host order is fine for an on-disk format consumed by the same build;
  // we nevertheless write through memcpy to avoid aliasing issues.
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out.write(buf, sizeof(T));
}

template <typename T>
bool get(std::istream& in, T& value) {
  char buf[sizeof(T)];
  in.read(buf, sizeof(T));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(T))) return false;
  std::memcpy(&value, buf, sizeof(T));
  return true;
}

void put_ip(std::ostream& out, const net::IpAddress& ip) {
  put<std::uint8_t>(out, static_cast<std::uint8_t>(ip.family()));
  if (ip.is_v4()) {
    put<std::uint32_t>(out, ip.v4_value());
  } else {
    put<std::uint64_t>(out, ip.hi());
    put<std::uint64_t>(out, ip.lo());
  }
}

bool get_ip(std::istream& in, net::IpAddress& ip) {
  std::uint8_t family = 0;
  if (!get(in, family)) return false;
  if (family == static_cast<std::uint8_t>(net::Family::V4)) {
    std::uint32_t v = 0;
    if (!get(in, v)) return false;
    ip = net::IpAddress::v4(v);
    return true;
  }
  if (family == static_cast<std::uint8_t>(net::Family::V6)) {
    std::uint64_t hi = 0, lo = 0;
    if (!get(in, hi) || !get(in, lo)) return false;
    ip = net::IpAddress::v6(hi, lo);
    return true;
  }
  throw std::runtime_error("trace: bad address family tag");
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& out) : out_(out) {
  put<std::uint32_t>(out_, kTraceMagic);
  put<std::uint16_t>(out_, kTraceVersion);
}

void TraceWriter::write(const FlowRecord& record) {
  put<std::int64_t>(out_, record.ts);
  put_ip(out_, record.src_ip);
  put_ip(out_, record.dst_ip);
  put<std::uint32_t>(out_, record.packets);
  put<std::uint64_t>(out_, record.bytes);
  put<std::uint32_t>(out_, record.ingress.router);
  put<std::uint16_t>(out_, record.ingress.iface);
  ++count_;
}

TraceReader::TraceReader(std::istream& in) : in_(in) {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  if (!get(in_, magic) || magic != kTraceMagic) {
    throw std::runtime_error("trace: bad magic");
  }
  if (!get(in_, version) || version != kTraceVersion) {
    throw std::runtime_error("trace: unsupported version");
  }
}

std::optional<FlowRecord> TraceReader::read() {
  FlowRecord r;
  if (!get(in_, r.ts)) return std::nullopt;  // clean EOF boundary
  if (!get_ip(in_, r.src_ip) || !get_ip(in_, r.dst_ip) ||
      !get(in_, r.packets) || !get(in_, r.bytes) ||
      !get(in_, r.ingress.router) || !get(in_, r.ingress.iface)) {
    throw std::runtime_error("trace: truncated record");
  }
  ++count_;
  return r;
}

void write_trace_file(const std::string& path, const std::vector<FlowRecord>& records) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  TraceWriter writer(out);
  for (const auto& r : records) writer.write(r);
}

std::vector<FlowRecord> read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  TraceReader reader(in);
  std::vector<FlowRecord> out;
  while (auto r = reader.read()) out.push_back(*r);
  return out;
}

}  // namespace ipd::netflow
