// Packet sampling models.
//
// Routers export 1-out-of-n sampled flows (the paper: n = 1,000..10,000;
// "unsampled data is never available"). The workload generator thins its
// packet stream through one of these samplers per router.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "util/rng.hpp"

namespace ipd::netflow {

/// Random sampling: each packet kept independently with probability 1/n.
class RandomSampler {
 public:
  explicit RandomSampler(std::uint32_t rate, std::uint64_t seed = 1)
      : rate_(rate), rng_(seed) {
    if (rate == 0) throw std::invalid_argument("RandomSampler: rate 0");
  }

  std::uint32_t rate() const noexcept { return rate_; }

  bool keep() noexcept { return rng_.below(rate_) == 0; }

  /// Number kept out of `packets` offered (binomial thinning, sampled
  /// exactly for small counts, normal-approximated for large ones).
  std::uint64_t keep_count(std::uint64_t packets) noexcept {
    if (packets < 64) {
      std::uint64_t kept = 0;
      for (std::uint64_t i = 0; i < packets; ++i) kept += keep() ? 1 : 0;
      return kept;
    }
    const double p = 1.0 / rate_;
    const double mean = static_cast<double>(packets) * p;
    const double sd = std::sqrt(mean * (1.0 - p));
    const double v = rng_.normal(mean, sd);
    if (v <= 0.0) return 0;
    const auto kept = static_cast<std::uint64_t>(v + 0.5);
    return kept > packets ? packets : kept;
  }

 private:
  std::uint32_t rate_;
  util::Rng rng_;
};

/// Systematic (deterministic) sampling: every n-th packet.
class SystematicSampler {
 public:
  explicit SystematicSampler(std::uint32_t rate) : rate_(rate) {
    if (rate == 0) throw std::invalid_argument("SystematicSampler: rate 0");
  }

  std::uint32_t rate() const noexcept { return rate_; }

  bool keep() noexcept {
    if (++counter_ >= rate_) {
      counter_ = 0;
      return true;
    }
    return false;
  }

 private:
  std::uint32_t rate_;
  std::uint32_t counter_ = 0;
};

}  // namespace ipd::netflow
