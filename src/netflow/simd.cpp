#include "netflow/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace ipd::netflow::simd {

namespace {

Level resolve_level() noexcept {
  const char* env = std::getenv("IPD_NO_SIMD");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    return Level::Scalar;
  }
  return Level::Swar;
}

}  // namespace

Level active_level() noexcept {
  static const Level level = resolve_level();
  return level;
}

const char* to_string(Level level) noexcept {
  switch (level) {
    case Level::Scalar:
      return "scalar";
    case Level::Swar:
      return "swar";
  }
  return "unknown";
}

}  // namespace ipd::netflow::simd
