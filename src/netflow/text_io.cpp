#include "netflow/text_io.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/strings.hpp"

namespace ipd::netflow {

std::string format_csv_line(const FlowRecord& record) {
  return util::format(
      "%lld,%s,%s,%u,%llu,%u,%u", static_cast<long long>(record.ts),
      record.src_ip.to_string().c_str(), record.dst_ip.to_string().c_str(),
      record.packets, static_cast<unsigned long long>(record.bytes),
      record.ingress.router, record.ingress.iface);
}

void write_csv(std::ostream& out, std::span<const FlowRecord> records) {
  out << kCsvHeader << '\n';
  for (const auto& record : records) {
    out << format_csv_line(record) << '\n';
  }
}

FlowRecord parse_csv_line(std::string_view line) {
  const auto fields = util::split(line, ',');
  if (fields.size() != 7) {
    throw std::invalid_argument("expected 7 CSV fields, got " +
                                std::to_string(fields.size()));
  }
  FlowRecord record;
  record.ts = static_cast<util::Timestamp>(
      util::parse_uint(util::trim(fields[0]), ~0ull >> 1));
  record.src_ip = net::IpAddress::from_string(fields[1]);
  record.dst_ip = net::IpAddress::from_string(fields[2]);
  record.packets = static_cast<std::uint32_t>(
      util::parse_uint(util::trim(fields[3]), 0xFFFFFFFFull));
  record.bytes = util::parse_uint(util::trim(fields[4]), ~0ull);
  record.ingress.router = static_cast<topology::RouterId>(
      util::parse_uint(util::trim(fields[5]), 0xFFFFFFFEull));
  record.ingress.iface = static_cast<topology::InterfaceIndex>(
      util::parse_uint(util::trim(fields[6]), 0xFFFFull));
  return record;
}

CsvReadResult read_csv(std::istream& in, bool strict) {
  CsvReadResult result;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (line_no == 1 && trimmed == kCsvHeader) continue;
    try {
      result.records.push_back(parse_csv_line(trimmed));
    } catch (const std::invalid_argument& e) {
      if (strict) {
        throw std::runtime_error("CSV line " + std::to_string(line_no) + ": " +
                                 e.what());
      }
      ++result.lines_skipped;
    }
  }
  return result;
}

}  // namespace ipd::netflow
