// IPFIX (RFC 7011) export/collection, template-based.
//
// The paper's input is "Netflow or IPFIX"; unlike NetFlow v5, IPFIX is
// template-driven and carries IPv6. This implements the subset a flow
// collector for IPD needs:
//   * message header (version 10), template sets (set id 2), data sets,
//   * a template cache per (observation domain, template id),
//   * decoding of unknown information elements by skipping their length,
//   * built-in v4/v6 flow templates for the exporter side.
// Variable-length and enterprise-specific elements are out of scope and
// rejected cleanly at template-parse time.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "netflow/flow_batch.hpp"
#include "netflow/flow_record.hpp"

namespace ipd::netflow::ipfix {

inline constexpr std::uint16_t kVersion = 10;
inline constexpr std::size_t kMessageHeaderBytes = 16;
inline constexpr std::uint16_t kTemplateSetId = 2;
inline constexpr std::uint16_t kMinDataSetId = 256;

// Information element ids (IANA).
inline constexpr std::uint16_t kIeOctetDeltaCount = 1;
inline constexpr std::uint16_t kIePacketDeltaCount = 2;
inline constexpr std::uint16_t kIeSourceIPv4Address = 8;
inline constexpr std::uint16_t kIeIngressInterface = 10;
inline constexpr std::uint16_t kIeDestinationIPv4Address = 12;
inline constexpr std::uint16_t kIeSourceIPv6Address = 27;
inline constexpr std::uint16_t kIeDestinationIPv6Address = 28;
inline constexpr std::uint16_t kIeFlowStartSeconds = 150;

struct FieldSpec {
  std::uint16_t id = 0;
  std::uint16_t length = 0;

  friend bool operator==(const FieldSpec&, const FieldSpec&) = default;
};

struct Template {
  std::uint16_t template_id = 0;
  std::vector<FieldSpec> fields;

  std::size_t record_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& f : fields) n += f.length;
    return n;
  }

  friend bool operator==(const Template&, const Template&) = default;
};

/// The exporter's built-in templates.
Template v4_flow_template();  // id 256
Template v6_flow_template();  // id 257

/// Builds IPFIX messages from flow records. The first message of a session
/// (and every `template_refresh` messages) carries the template set, as
/// IPFIX-over-UDP exporters must re-announce templates periodically.
class Exporter {
 public:
  explicit Exporter(std::uint32_t observation_domain,
                    std::uint32_t template_refresh = 32);

  /// Pack records (both families allowed; they are split into per-template
  /// data sets) into one or more messages. `export_time` is the message
  /// export timestamp (epoch seconds).
  std::vector<std::vector<std::uint8_t>> export_flows(
      std::span<const FlowRecord> records, std::uint32_t export_time);

  std::uint32_t sequence() const noexcept { return sequence_; }

 private:
  std::uint32_t domain_;
  std::uint32_t template_refresh_;
  std::uint32_t messages_since_templates_ = 0;
  bool templates_sent_ = false;
  std::uint32_t sequence_ = 0;
};

struct ParserStats {
  std::uint64_t messages = 0;
  std::uint64_t malformed = 0;
  std::uint64_t templates_learned = 0;
  std::uint64_t records = 0;
  std::uint64_t data_without_template = 0;
  std::uint64_t unsupported_fields = 0;  // templates rejected (var-len etc.)
};

/// Stateful collector-side parser; one per transport session (source).
class Parser {
 public:
  /// Parse one message. Decoded flows are appended to `out` with
  /// `exporter_router` stamped as the ingress router. Returns false when
  /// the message is malformed (templates learned so far are kept).
  bool parse(std::span<const std::uint8_t> bytes,
             topology::RouterId exporter_router, std::vector<FlowRecord>& out);

  /// Parse one message straight into a SoA batch. Data sets whose template
  /// matches a built-in fixed flow layout (v4_flow_template /
  /// v6_flow_template) take a SWAR fixed-offset decode when the process's
  /// simd level allows; any other template falls back to the generic
  /// per-field walk (via parse_data_set) and is appended row-wise.
  /// Semantics — admitted records, stats, template learning — are
  /// identical to parse().
  bool parse_batch(std::span<const std::uint8_t> bytes,
                   topology::RouterId exporter_router, FlowBatch& out);

  /// Test knob: pin parse_batch to the generic scalar walk regardless of
  /// the process simd level (the decode differential compares both paths
  /// inside one process).
  void set_force_scalar(bool force) noexcept { force_scalar_ = force; }

  const ParserStats& stats() const noexcept { return stats_; }

  /// Template lookup (exposed for tests).
  const Template* find_template(std::uint32_t domain, std::uint16_t id) const;

 private:
  bool parse_template_set(std::span<const std::uint8_t> body, std::uint32_t domain);
  bool parse_data_set(std::span<const std::uint8_t> body, std::uint32_t domain,
                      std::uint16_t set_id, std::uint32_t export_time,
                      topology::RouterId exporter_router,
                      std::vector<FlowRecord>& out);
  bool parse_data_set_batch(std::span<const std::uint8_t> body,
                            std::uint32_t domain, std::uint16_t set_id,
                            std::uint32_t export_time,
                            topology::RouterId exporter_router,
                            FlowBatch& out);

  std::unordered_map<std::uint64_t, Template> templates_;
  ParserStats stats_;
  bool force_scalar_ = false;
  std::vector<FlowRecord> scratch_;  // generic-template fallback rows
};

}  // namespace ipd::netflow::ipfix
