// Per-router clock drift injection.
//
// The paper observed inaccurate router clocks across >3,000 devices and
// pre-processes flow timestamps with "statistical time". This model lets
// the workload generator emit drifted export timestamps so that the
// pre-processing stage (statistical_time.hpp) is actually exercised.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "topology/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace ipd::netflow {

struct ClockDriftConfig {
  double offset_stddev_s = 2.0;     // constant per-router clock offset
  double jitter_stddev_s = 0.5;     // per-record export jitter
  double broken_clock_prob = 0.01;  // routers whose clock is wildly off
  double broken_offset_s = 3600.0;  // how wildly (seconds)
};

/// Assigns each router a fixed offset (drawn once) plus per-record jitter.
class ClockDriftModel {
 public:
  ClockDriftModel(ClockDriftConfig config, std::uint64_t seed)
      : config_(config), rng_(seed) {}

  /// Drifted export timestamp for a true event time at `router`.
  util::Timestamp apply(topology::RouterId router, util::Timestamp true_ts) noexcept {
    const double offset = offset_for(router);
    const double jitter = config_.jitter_stddev_s > 0.0
                              ? rng_.normal(0.0, config_.jitter_stddev_s)
                              : 0.0;
    return true_ts + static_cast<util::Timestamp>(offset + jitter);
  }

  double offset_for(topology::RouterId router) noexcept {
    const auto it = offsets_.find(router);
    if (it != offsets_.end()) return it->second;
    double offset = rng_.normal(0.0, config_.offset_stddev_s);
    if (rng_.chance(config_.broken_clock_prob)) {
      offset += (rng_.chance(0.5) ? 1.0 : -1.0) * config_.broken_offset_s;
    }
    offsets_.emplace(router, offset);
    return offset;
  }

  bool is_broken(topology::RouterId router) noexcept {
    return std::abs(offset_for(router)) > config_.broken_offset_s / 2.0;
  }

 private:
  ClockDriftConfig config_;
  util::Rng rng_;
  std::unordered_map<topology::RouterId, double> offsets_;
};

}  // namespace ipd::netflow
