#include "netflow/v5.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "netflow/simd.hpp"

namespace ipd::netflow::v5 {

namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) |
         static_cast<std::uint32_t>(in[at + 3]);
}

/// SWAR word load: 8 big-endian wire bytes as one host-order uint64. The
/// memcpy is the strict-aliasing-safe unaligned load; it and the bswap
/// both compile to single instructions.
std::uint64_t load64be(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return v;
#else
  return __builtin_bswap64(v);
#endif
}

}  // namespace

std::vector<std::uint8_t> encode(const Packet& packet) {
  const std::size_t n = packet.records.size();
  if (n == 0 || n > kMaxRecordsPerPacket) {
    throw std::invalid_argument("v5::encode: record count out of [1,30]");
  }
  if (packet.header.count != 0 && packet.header.count != n) {
    throw std::invalid_argument("v5::encode: header.count mismatch");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + n * kRecordBytes);

  const Header& h = packet.header;
  put16(out, kVersion);
  put16(out, static_cast<std::uint16_t>(n));
  put32(out, h.sys_uptime_ms);
  put32(out, h.unix_secs);
  put32(out, h.unix_nsecs);
  put32(out, h.flow_sequence);
  out.push_back(h.engine_type);
  out.push_back(h.engine_id);
  put16(out, h.sampling);

  for (const Record& r : packet.records) {
    put32(out, r.src_addr);
    put32(out, r.dst_addr);
    put32(out, r.next_hop);
    put16(out, r.input_snmp);
    put16(out, r.output_snmp);
    put32(out, r.packets);
    put32(out, r.octets);
    put32(out, r.first_ms);
    put32(out, r.last_ms);
    put16(out, r.src_port);
    put16(out, r.dst_port);
    out.push_back(0);  // pad1
    out.push_back(r.tcp_flags);
    out.push_back(r.protocol);
    out.push_back(r.tos);
    put16(out, r.src_as);
    put16(out, r.dst_as);
    out.push_back(r.src_mask);
    out.push_back(r.dst_mask);
    out.push_back(0);  // pad2
    out.push_back(0);
  }
  return out;
}

std::optional<Packet> decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes) return std::nullopt;
  if (get16(bytes, 0) != kVersion) return std::nullopt;
  Packet packet;
  Header& h = packet.header;
  h.version = kVersion;
  h.count = get16(bytes, 2);
  if (h.count == 0 || h.count > kMaxRecordsPerPacket) return std::nullopt;
  if (bytes.size() != kHeaderBytes + h.count * kRecordBytes) return std::nullopt;
  h.sys_uptime_ms = get32(bytes, 4);
  h.unix_secs = get32(bytes, 8);
  h.unix_nsecs = get32(bytes, 12);
  h.flow_sequence = get32(bytes, 16);
  h.engine_type = bytes[20];
  h.engine_id = bytes[21];
  h.sampling = get16(bytes, 22);

  packet.records.reserve(h.count);
  for (std::size_t i = 0; i < h.count; ++i) {
    const std::size_t at = kHeaderBytes + i * kRecordBytes;
    Record r;
    r.src_addr = get32(bytes, at);
    r.dst_addr = get32(bytes, at + 4);
    r.next_hop = get32(bytes, at + 8);
    r.input_snmp = get16(bytes, at + 12);
    r.output_snmp = get16(bytes, at + 14);
    r.packets = get32(bytes, at + 16);
    r.octets = get32(bytes, at + 20);
    r.first_ms = get32(bytes, at + 24);
    r.last_ms = get32(bytes, at + 28);
    r.src_port = get16(bytes, at + 32);
    r.dst_port = get16(bytes, at + 34);
    r.tcp_flags = bytes[at + 37];
    r.protocol = bytes[at + 38];
    r.tos = bytes[at + 39];
    r.src_as = get16(bytes, at + 40);
    r.dst_as = get16(bytes, at + 42);
    r.src_mask = bytes[at + 44];
    r.dst_mask = bytes[at + 45];
    packet.records.push_back(r);
  }
  return packet;
}

std::vector<FlowRecord> to_flow_records(const Packet& packet,
                                        topology::RouterId exporter_router) {
  std::vector<FlowRecord> out;
  out.reserve(packet.records.size());
  for (const Record& r : packet.records) {
    FlowRecord flow;
    flow.ts = static_cast<util::Timestamp>(packet.header.unix_secs);
    flow.src_ip = net::IpAddress::v4(r.src_addr);
    flow.dst_ip = net::IpAddress::v4(r.dst_addr);
    flow.packets = r.packets;
    flow.bytes = r.octets;
    flow.ingress = topology::LinkId{
        exporter_router, static_cast<topology::InterfaceIndex>(r.input_snmp)};
    out.push_back(flow);
  }
  return out;
}

std::optional<std::size_t> decode_batch_swar(
    std::span<const std::uint8_t> bytes, topology::RouterId exporter_router,
    FlowBatch& out) {
  // Same admission rules as decode(): any malformation rejects the whole
  // datagram before a single row is appended.
  if (bytes.size() < kHeaderBytes) return std::nullopt;
  if (get16(bytes, 0) != kVersion) return std::nullopt;
  const std::uint16_t count = get16(bytes, 2);
  if (count == 0 || count > kMaxRecordsPerPacket) return std::nullopt;
  if (bytes.size() != kHeaderBytes + count * kRecordBytes) return std::nullopt;
  const auto ts = static_cast<util::Timestamp>(get32(bytes, 8));

  out.reserve(out.size() + count);
  const std::uint8_t* p = bytes.data() + kHeaderBytes;
  for (std::size_t i = 0; i < count; ++i, p += kRecordBytes) {
    // Record layout: src(4) dst(4) next_hop(4) input(2) output(2)
    //                packets(4) octets(4) ...
    // Three 64-bit big-endian loads cover every field IPD consumes.
    const std::uint64_t w0 = load64be(p);       // src | dst
    const std::uint64_t w1 = load64be(p + 8);   // next_hop | input | output
    const std::uint64_t w2 = load64be(p + 16);  // packets | octets
    out.push_back(
        ts, net::IpAddress::v4(static_cast<std::uint32_t>(w0 >> 32)),
        net::IpAddress::v4(static_cast<std::uint32_t>(w0)),
        static_cast<std::uint32_t>(w2 >> 32),
        static_cast<std::uint32_t>(w2),
        topology::LinkId{exporter_router, static_cast<topology::InterfaceIndex>(
                                              (w1 >> 16) & 0xFFFFu)});
  }
  return count;
}

std::optional<std::size_t> decode_batch_scalar(
    std::span<const std::uint8_t> bytes, topology::RouterId exporter_router,
    FlowBatch& out) {
  const std::optional<Packet> packet = decode(bytes);
  if (!packet) return std::nullopt;
  const std::vector<FlowRecord> records =
      to_flow_records(*packet, exporter_router);
  append_records(out, records);
  return records.size();
}

std::optional<std::size_t> decode_batch(std::span<const std::uint8_t> bytes,
                                        topology::RouterId exporter_router,
                                        FlowBatch& out) {
  return simd::swar_enabled() ? decode_batch_swar(bytes, exporter_router, out)
                              : decode_batch_scalar(bytes, exporter_router,
                                                    out);
}

std::vector<Packet> from_flow_records(std::span<const FlowRecord> records,
                                      std::uint32_t first_sequence) {
  std::vector<Packet> out;
  std::uint32_t sequence = first_sequence;
  for (std::size_t i = 0; i < records.size(); i += kMaxRecordsPerPacket) {
    Packet packet;
    packet.header.flow_sequence = sequence;
    const std::size_t n =
        std::min(kMaxRecordsPerPacket, records.size() - i);
    packet.header.count = static_cast<std::uint16_t>(n);
    packet.header.unix_secs = static_cast<std::uint32_t>(records[i].ts);
    for (std::size_t k = 0; k < n; ++k) {
      const FlowRecord& flow = records[i + k];
      if (!flow.src_ip.is_v4()) {
        throw std::invalid_argument("v5::from_flow_records: IPv6 flow");
      }
      Record r;
      r.src_addr = flow.src_ip.v4_value();
      r.dst_addr = flow.dst_ip.is_v4() ? flow.dst_ip.v4_value() : 0;
      r.input_snmp = flow.ingress.iface;
      r.packets = flow.packets;
      r.octets = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(flow.bytes, 0xFFFFFFFFull));
      packet.records.push_back(r);
    }
    sequence += static_cast<std::uint32_t>(n);
    out.push_back(std::move(packet));
  }
  return out;
}

}  // namespace ipd::netflow::v5
