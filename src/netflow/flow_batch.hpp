// Structure-of-arrays flow batch: the common currency of the batched
// ingest path.
//
// Decoders append into parallel arrays (timestamps, source addresses,
// ingress links, ...) so downstream stages can stream over exactly the
// columns they touch: the engine's interleaved trie descents read only
// src_ip, the weight computation reads only bytes, and the per-record
// FlowRecord view is materialized lazily for slow paths (flow tracing,
// validation buffers). Index i across every column is one flow record,
// in arrival order — batching never reorders ingest.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netflow/flow_record.hpp"

namespace ipd::netflow {

struct FlowBatch {
  std::vector<util::Timestamp> ts;
  std::vector<net::IpAddress> src_ip;
  std::vector<net::IpAddress> dst_ip;
  std::vector<std::uint32_t> packets;
  std::vector<std::uint64_t> bytes;
  std::vector<topology::LinkId> ingress;

  std::size_t size() const noexcept { return ts.size(); }
  bool empty() const noexcept { return ts.empty(); }

  void clear() noexcept {
    ts.clear();
    src_ip.clear();
    dst_ip.clear();
    packets.clear();
    bytes.clear();
    ingress.clear();
  }

  void reserve(std::size_t n) {
    ts.reserve(n);
    src_ip.reserve(n);
    dst_ip.reserve(n);
    packets.reserve(n);
    bytes.reserve(n);
    ingress.reserve(n);
  }

  void push_back(const FlowRecord& r) {
    ts.push_back(r.ts);
    src_ip.push_back(r.src_ip);
    dst_ip.push_back(r.dst_ip);
    packets.push_back(r.packets);
    bytes.push_back(r.bytes);
    ingress.push_back(r.ingress);
  }

  /// Append one record column-wise (decoder fast paths that never build a
  /// FlowRecord).
  void push_back(util::Timestamp t, net::IpAddress src, net::IpAddress dst,
                 std::uint32_t pkts, std::uint64_t octets,
                 topology::LinkId link) {
    ts.push_back(t);
    src_ip.push_back(src);
    dst_ip.push_back(dst);
    packets.push_back(pkts);
    bytes.push_back(octets);
    ingress.push_back(link);
  }

  void append(const FlowBatch& other) {
    ts.insert(ts.end(), other.ts.begin(), other.ts.end());
    src_ip.insert(src_ip.end(), other.src_ip.begin(), other.src_ip.end());
    dst_ip.insert(dst_ip.end(), other.dst_ip.begin(), other.dst_ip.end());
    packets.insert(packets.end(), other.packets.begin(), other.packets.end());
    bytes.insert(bytes.end(), other.bytes.begin(), other.bytes.end());
    ingress.insert(ingress.end(), other.ingress.begin(), other.ingress.end());
  }

  /// Materialize the row view of record i (slow paths only).
  FlowRecord record(std::size_t i) const {
    return FlowRecord{ts[i],      src_ip[i], dst_ip[i],
                      packets[i], bytes[i],  ingress[i]};
  }

  /// Heap held by the parallel arrays (capacity, not size — this feeds the
  /// exact working-set accounting).
  std::uint64_t memory_bytes() const noexcept {
    return ts.capacity() * sizeof(util::Timestamp) +
           src_ip.capacity() * sizeof(net::IpAddress) +
           dst_ip.capacity() * sizeof(net::IpAddress) +
           packets.capacity() * sizeof(std::uint32_t) +
           bytes.capacity() * sizeof(std::uint64_t) +
           ingress.capacity() * sizeof(topology::LinkId);
  }

  friend bool operator==(const FlowBatch&, const FlowBatch&) = default;
};

/// Copy a row-major span into a batch (bridging existing call sites).
inline void append_records(FlowBatch& batch,
                           std::span<const FlowRecord> records) {
  batch.reserve(batch.size() + records.size());
  for (const FlowRecord& r : records) batch.push_back(r);
}

}  // namespace ipd::netflow
