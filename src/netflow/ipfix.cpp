#include "netflow/ipfix.hpp"

#include <algorithm>
#include <cstring>

#include "netflow/simd.hpp"

namespace ipd::netflow::ipfix {

namespace {

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v));
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put32(out, static_cast<std::uint32_t>(v >> 32));
  put32(out, static_cast<std::uint32_t>(v));
}

std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint32_t>(get16(in, at)) << 16) | get16(in, at + 2);
}

std::uint64_t get64(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint64_t>(get32(in, at)) << 32) | get32(in, at + 4);
}

std::uint64_t template_key(std::uint32_t domain, std::uint16_t id) {
  return (static_cast<std::uint64_t>(domain) << 16) | id;
}

/// SWAR word loads for the fixed-layout fast path (strict-aliasing-safe
/// unaligned loads; memcpy + bswap each compile to one instruction).
std::uint64_t load64be(const std::uint8_t* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return v;
#else
  return __builtin_bswap64(v);
#endif
}

std::uint32_t load32be(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  return v;
#else
  return __builtin_bswap32(v);
#endif
}

void append_template_record(std::vector<std::uint8_t>& out, const Template& t) {
  put16(out, t.template_id);
  put16(out, static_cast<std::uint16_t>(t.fields.size()));
  for (const auto& f : t.fields) {
    put16(out, f.id);
    put16(out, f.length);
  }
}

void append_record(std::vector<std::uint8_t>& out, const FlowRecord& flow,
                   bool v6) {
  if (v6) {
    put64(out, flow.src_ip.hi());
    put64(out, flow.src_ip.lo());
    if (flow.dst_ip.is_v4()) {
      put64(out, 0);
      put64(out, flow.dst_ip.v4_value());
    } else {
      put64(out, flow.dst_ip.hi());
      put64(out, flow.dst_ip.lo());
    }
  } else {
    put32(out, flow.src_ip.v4_value());
    put32(out, flow.dst_ip.is_v4() ? flow.dst_ip.v4_value() : 0);
  }
  put32(out, flow.ingress.iface);
  put64(out, flow.bytes);
  put64(out, flow.packets);
  put32(out, static_cast<std::uint32_t>(flow.ts));
}

}  // namespace

Template v4_flow_template() {
  return Template{256,
                  {{kIeSourceIPv4Address, 4},
                   {kIeDestinationIPv4Address, 4},
                   {kIeIngressInterface, 4},
                   {kIeOctetDeltaCount, 8},
                   {kIePacketDeltaCount, 8},
                   {kIeFlowStartSeconds, 4}}};
}

Template v6_flow_template() {
  return Template{257,
                  {{kIeSourceIPv6Address, 16},
                   {kIeDestinationIPv6Address, 16},
                   {kIeIngressInterface, 4},
                   {kIeOctetDeltaCount, 8},
                   {kIePacketDeltaCount, 8},
                   {kIeFlowStartSeconds, 4}}};
}

Exporter::Exporter(std::uint32_t observation_domain,
                   std::uint32_t template_refresh)
    : domain_(observation_domain),
      template_refresh_(std::max<std::uint32_t>(template_refresh, 1)) {}

std::vector<std::vector<std::uint8_t>> Exporter::export_flows(
    std::span<const FlowRecord> records, std::uint32_t export_time) {
  std::vector<std::vector<std::uint8_t>> messages;

  std::vector<const FlowRecord*> v4, v6;
  for (const auto& r : records) {
    (r.src_ip.is_v4() ? v4 : v6).push_back(&r);
  }

  std::vector<std::uint8_t> msg;
  const auto begin_message = [&] {
    msg.clear();
    put16(msg, kVersion);
    put16(msg, 0);  // length backpatched
    put32(msg, export_time);
    put32(msg, sequence_);
    put32(msg, domain_);
  };
  const auto end_message = [&] {
    msg[2] = static_cast<std::uint8_t>(msg.size() >> 8);
    msg[3] = static_cast<std::uint8_t>(msg.size());
    messages.push_back(msg);
  };

  begin_message();
  if (!templates_sent_ || messages_since_templates_ >= template_refresh_) {
    // Template set: header (id=2, length) + both templates.
    std::vector<std::uint8_t> set;
    append_template_record(set, v4_flow_template());
    append_template_record(set, v6_flow_template());
    put16(msg, kTemplateSetId);
    put16(msg, static_cast<std::uint16_t>(set.size() + 4));
    msg.insert(msg.end(), set.begin(), set.end());
    templates_sent_ = true;
    messages_since_templates_ = 0;
  }

  const auto append_data_set = [&](const std::vector<const FlowRecord*>& flows,
                                   const Template& tmpl, bool is_v6) {
    if (flows.empty()) return;
    std::vector<std::uint8_t> set;
    for (const auto* flow : flows) {
      append_record(set, *flow, is_v6);
      sequence_ += 1;  // IPFIX sequence counts data records
    }
    put16(msg, tmpl.template_id);
    put16(msg, static_cast<std::uint16_t>(set.size() + 4));
    msg.insert(msg.end(), set.begin(), set.end());
  };
  append_data_set(v4, v4_flow_template(), false);
  append_data_set(v6, v6_flow_template(), true);
  end_message();
  ++messages_since_templates_;
  return messages;
}

const Template* Parser::find_template(std::uint32_t domain,
                                      std::uint16_t id) const {
  const auto it = templates_.find(template_key(domain, id));
  return it == templates_.end() ? nullptr : &it->second;
}

bool Parser::parse(std::span<const std::uint8_t> bytes,
                   topology::RouterId exporter_router,
                   std::vector<FlowRecord>& out) {
  ++stats_.messages;
  if (bytes.size() < kMessageHeaderBytes || get16(bytes, 0) != kVersion) {
    ++stats_.malformed;
    return false;
  }
  const std::uint16_t length = get16(bytes, 2);
  if (length != bytes.size()) {
    ++stats_.malformed;
    return false;
  }
  const std::uint32_t export_time = get32(bytes, 4);
  const std::uint32_t domain = get32(bytes, 12);

  std::size_t at = kMessageHeaderBytes;
  while (at + 4 <= bytes.size()) {
    const std::uint16_t set_id = get16(bytes, at);
    const std::uint16_t set_len = get16(bytes, at + 2);
    if (set_len < 4 || at + set_len > bytes.size()) {
      ++stats_.malformed;
      return false;
    }
    const auto body = bytes.subspan(at + 4, set_len - 4);
    if (set_id == kTemplateSetId) {
      if (!parse_template_set(body, domain)) {
        ++stats_.malformed;
        return false;
      }
    } else if (set_id >= kMinDataSetId) {
      if (!parse_data_set(body, domain, set_id, export_time, exporter_router,
                          out)) {
        ++stats_.malformed;
        return false;
      }
    }
    // Other set ids (options templates etc.) are skipped.
    at += set_len;
  }
  if (at != bytes.size()) {
    ++stats_.malformed;
    return false;
  }
  return true;
}

bool Parser::parse_template_set(std::span<const std::uint8_t> body,
                                std::uint32_t domain) {
  std::size_t at = 0;
  while (at + 4 <= body.size()) {
    Template tmpl;
    tmpl.template_id = get16(body, at);
    const std::uint16_t field_count = get16(body, at + 2);
    at += 4;
    if (tmpl.template_id < kMinDataSetId) return false;
    if (at + 4u * field_count > body.size()) return false;
    bool supported = true;
    for (std::uint16_t f = 0; f < field_count; ++f) {
      FieldSpec spec{get16(body, at), get16(body, at + 2)};
      at += 4;
      if (spec.id & 0x8000u) {
        // Enterprise-specific element: 4 more bytes of enterprise number;
        // not supported — skip the template entirely.
        if (at + 4 > body.size()) return false;
        at += 4;
        supported = false;
        continue;
      }
      if (spec.length == 0xFFFF || spec.length == 0) supported = false;
      tmpl.fields.push_back(spec);
    }
    if (!supported) {
      ++stats_.unsupported_fields;
      continue;
    }
    templates_[template_key(domain, tmpl.template_id)] = std::move(tmpl);
    ++stats_.templates_learned;
  }
  return true;
}

bool Parser::parse_data_set(std::span<const std::uint8_t> body,
                            std::uint32_t domain, std::uint16_t set_id,
                            std::uint32_t export_time,
                            topology::RouterId exporter_router,
                            std::vector<FlowRecord>& out) {
  const Template* tmpl = find_template(domain, set_id);
  if (!tmpl) {
    // RFC-conformant: data for unknown templates must be tolerated (the
    // template announcement may simply not have arrived yet over UDP).
    ++stats_.data_without_template;
    return true;
  }
  const std::size_t stride = tmpl->record_bytes();
  if (stride == 0) return false;
  std::size_t at = 0;
  // Trailing padding shorter than one record is allowed.
  while (at + stride <= body.size()) {
    FlowRecord flow;
    flow.ts = export_time;
    flow.ingress.router = exporter_router;
    for (const auto& field : tmpl->fields) {
      const auto value = body.subspan(at, field.length);
      switch (field.id) {
        case kIeSourceIPv4Address:
          if (field.length == 4) flow.src_ip = net::IpAddress::v4(get32(value, 0));
          break;
        case kIeDestinationIPv4Address:
          if (field.length == 4) flow.dst_ip = net::IpAddress::v4(get32(value, 0));
          break;
        case kIeSourceIPv6Address:
          if (field.length == 16) {
            flow.src_ip = net::IpAddress::v6(get64(value, 0), get64(value, 8));
          }
          break;
        case kIeDestinationIPv6Address:
          if (field.length == 16) {
            flow.dst_ip = net::IpAddress::v6(get64(value, 0), get64(value, 8));
          }
          break;
        case kIeIngressInterface:
          if (field.length == 4) {
            flow.ingress.iface =
                static_cast<topology::InterfaceIndex>(get32(value, 0));
          }
          break;
        case kIeOctetDeltaCount:
          if (field.length == 8) flow.bytes = get64(value, 0);
          break;
        case kIePacketDeltaCount:
          if (field.length == 8) {
            flow.packets = static_cast<std::uint32_t>(get64(value, 0));
          }
          break;
        case kIeFlowStartSeconds:
          if (field.length == 4) {
            flow.ts = static_cast<util::Timestamp>(get32(value, 0));
          }
          break;
        default:
          break;  // unknown element: skipped by length
      }
      at += field.length;
    }
    out.push_back(flow);
    ++stats_.records;
  }
  return true;
}

bool Parser::parse_batch(std::span<const std::uint8_t> bytes,
                         topology::RouterId exporter_router, FlowBatch& out) {
  ++stats_.messages;
  if (bytes.size() < kMessageHeaderBytes || get16(bytes, 0) != kVersion) {
    ++stats_.malformed;
    return false;
  }
  const std::uint16_t length = get16(bytes, 2);
  if (length != bytes.size()) {
    ++stats_.malformed;
    return false;
  }
  const std::uint32_t export_time = get32(bytes, 4);
  const std::uint32_t domain = get32(bytes, 12);

  std::size_t at = kMessageHeaderBytes;
  while (at + 4 <= bytes.size()) {
    const std::uint16_t set_id = get16(bytes, at);
    const std::uint16_t set_len = get16(bytes, at + 2);
    if (set_len < 4 || at + set_len > bytes.size()) {
      ++stats_.malformed;
      return false;
    }
    const auto body = bytes.subspan(at + 4, set_len - 4);
    if (set_id == kTemplateSetId) {
      if (!parse_template_set(body, domain)) {
        ++stats_.malformed;
        return false;
      }
    } else if (set_id >= kMinDataSetId) {
      if (!parse_data_set_batch(body, domain, set_id, export_time,
                                exporter_router, out)) {
        ++stats_.malformed;
        return false;
      }
    }
    at += set_len;
  }
  if (at != bytes.size()) {
    ++stats_.malformed;
    return false;
  }
  return true;
}

bool Parser::parse_data_set_batch(std::span<const std::uint8_t> body,
                                  std::uint32_t domain, std::uint16_t set_id,
                                  std::uint32_t export_time,
                                  topology::RouterId exporter_router,
                                  FlowBatch& out) {
  const Template* tmpl = find_template(domain, set_id);
  if (!tmpl) {
    ++stats_.data_without_template;
    return true;
  }
  // Fixed-layout fast path: the exporter-side built-in templates have a
  // known field order, so a matching learned template decodes with three
  // to six word loads per record instead of the per-field switch.
  static const std::vector<FieldSpec> kV4Fields = v4_flow_template().fields;
  static const std::vector<FieldSpec> kV6Fields = v6_flow_template().fields;
  const bool swar = simd::swar_enabled() && !force_scalar_;
  if (swar && tmpl->fields == kV4Fields) {
    // src(4) dst(4) iface(4) octets(8) packets(8) start(4); stride 32.
    constexpr std::size_t kStride = 32;
    const std::size_t n = body.size() / kStride;
    out.reserve(out.size() + n);
    const std::uint8_t* p = body.data();
    for (std::size_t i = 0; i < n; ++i, p += kStride) {
      const std::uint64_t w0 = load64be(p);  // src | dst
      out.push_back(static_cast<util::Timestamp>(load32be(p + 28)),
                    net::IpAddress::v4(static_cast<std::uint32_t>(w0 >> 32)),
                    net::IpAddress::v4(static_cast<std::uint32_t>(w0)),
                    static_cast<std::uint32_t>(load64be(p + 20)),
                    load64be(p + 12),
                    topology::LinkId{
                        exporter_router,
                        static_cast<topology::InterfaceIndex>(load32be(p + 8))});
    }
    stats_.records += n;
    return true;
  }
  if (swar && tmpl->fields == kV6Fields) {
    // src(16) dst(16) iface(4) octets(8) packets(8) start(4); stride 56.
    constexpr std::size_t kStride = 56;
    const std::size_t n = body.size() / kStride;
    out.reserve(out.size() + n);
    const std::uint8_t* p = body.data();
    for (std::size_t i = 0; i < n; ++i, p += kStride) {
      out.push_back(
          static_cast<util::Timestamp>(load32be(p + 52)),
          net::IpAddress::v6(load64be(p), load64be(p + 8)),
          net::IpAddress::v6(load64be(p + 16), load64be(p + 24)),
          static_cast<std::uint32_t>(load64be(p + 44)), load64be(p + 36),
          topology::LinkId{
              exporter_router,
              static_cast<topology::InterfaceIndex>(load32be(p + 32))});
    }
    stats_.records += n;
    return true;
  }
  // Generic template: reuse the reference per-field walk, then append the
  // rows column-wise. Stats are updated inside parse_data_set.
  scratch_.clear();
  if (!parse_data_set(body, domain, set_id, export_time, exporter_router,
                      scratch_)) {
    return false;
  }
  append_records(out, scratch_);
  return true;
}

}  // namespace ipd::netflow::ipfix
