// NetFlow v5 export datagram codec (wire format).
//
// The deployment's border routers export NetFlow/IPFIX; the collector tier
// parses the datagrams and forwards (ts, src_ip, ingress) tuples to IPD.
// This implements the classic v5 wire format: a 24-byte header followed by
// up to 30 fixed 48-byte flow records, all fields big-endian. v5 is
// IPv4-only; v6 flows travel through the internal codec (codec.hpp) or
// IPFIX in real deployments.
//
// Field semantics follow the Cisco spec; fields IPD does not consume
// (AS numbers, TCP flags, ...) are carried faithfully so the codec is
// usable as a general substrate.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netflow/flow_batch.hpp"
#include "netflow/flow_record.hpp"

namespace ipd::netflow::v5 {

inline constexpr std::uint16_t kVersion = 5;
inline constexpr std::size_t kHeaderBytes = 24;
inline constexpr std::size_t kRecordBytes = 48;
inline constexpr std::size_t kMaxRecordsPerPacket = 30;

struct Header {
  std::uint16_t version = kVersion;
  std::uint16_t count = 0;          // records in this packet (1..30)
  std::uint32_t sys_uptime_ms = 0;  // router uptime at export
  std::uint32_t unix_secs = 0;      // export wall-clock seconds
  std::uint32_t unix_nsecs = 0;
  std::uint32_t flow_sequence = 0;  // total flows seen (for loss detection)
  std::uint8_t engine_type = 0;
  std::uint8_t engine_id = 0;
  std::uint16_t sampling = 0;  // 2-bit mode + 14-bit interval
};

struct Record {
  std::uint32_t src_addr = 0;  // host byte order here; big-endian on wire
  std::uint32_t dst_addr = 0;
  std::uint32_t next_hop = 0;
  std::uint16_t input_snmp = 0;  // ingress interface index (IPD's link)
  std::uint16_t output_snmp = 0;
  std::uint32_t packets = 0;
  std::uint32_t octets = 0;
  std::uint32_t first_ms = 0;  // sysuptime at flow start
  std::uint32_t last_ms = 0;   // sysuptime at flow end
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t tcp_flags = 0;
  std::uint8_t protocol = 0;
  std::uint8_t tos = 0;
  std::uint16_t src_as = 0;
  std::uint16_t dst_as = 0;
  std::uint8_t src_mask = 0;
  std::uint8_t dst_mask = 0;
};

struct Packet {
  Header header;
  std::vector<Record> records;
};

/// Serialize to wire bytes. Throws std::invalid_argument if the record
/// count is 0, exceeds kMaxRecordsPerPacket, or disagrees with header.count
/// (header.count == 0 auto-fills).
std::vector<std::uint8_t> encode(const Packet& packet);

/// Parse wire bytes. Returns nullopt for anything malformed (wrong version,
/// truncated buffer, count/size mismatch) — collectors must tolerate
/// garbage datagrams without throwing on the fast path.
std::optional<Packet> decode(std::span<const std::uint8_t> bytes);

/// Convenience bridge: build FlowRecords for IPD from a decoded packet.
/// `exporter_router` identifies the emitting border router; the ingress
/// interface comes from each record's input_snmp. Timestamps use the
/// export wall clock (unix_secs), i.e. any router clock error is carried
/// through — exactly what the statistical-time pre-processing exists for.
std::vector<FlowRecord> to_flow_records(const Packet& packet,
                                        topology::RouterId exporter_router);

/// Convenience bridge: pack FlowRecords (all from one router, IPv4 only)
/// into v5 packets of at most kMaxRecordsPerPacket records.
std::vector<Packet> from_flow_records(std::span<const FlowRecord> records,
                                      std::uint32_t first_sequence = 0);

/// Decode a datagram straight into `out` (one SoA row appended per flow
/// record) at the process's active simd::Level. Returns the number of
/// records appended, or nullopt for a malformed packet — in which case
/// `out` is untouched. Equivalent to decode() + to_flow_records() +
/// append, without materializing the intermediate Packet.
std::optional<std::size_t> decode_batch(std::span<const std::uint8_t> bytes,
                                        topology::RouterId exporter_router,
                                        FlowBatch& out);

/// Fixed-level implementations of decode_batch, public so the decode
/// differential fuzz test can compare them on the same bytes regardless
/// of IPD_NO_SIMD. decode_batch_scalar is the reference: it routes
/// through the original decode()/to_flow_records() byte-at-a-time path.
std::optional<std::size_t> decode_batch_swar(
    std::span<const std::uint8_t> bytes, topology::RouterId exporter_router,
    FlowBatch& out);
std::optional<std::size_t> decode_batch_scalar(
    std::span<const std::uint8_t> bytes, topology::RouterId exporter_router,
    FlowBatch& out);

}  // namespace ipd::netflow::v5
