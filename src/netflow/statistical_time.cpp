#include "netflow/statistical_time.hpp"

#include <stdexcept>
#include <utility>

namespace ipd::netflow {

StatisticalTime::StatisticalTime(StatisticalTimeConfig config, Sink sink)
    : config_(config), sink_(std::move(sink)) {
  if (config_.bucket_len <= 0) {
    throw std::invalid_argument("StatisticalTime: bucket_len must be > 0");
  }
  if (!sink_) throw std::invalid_argument("StatisticalTime: null sink");
}

void StatisticalTime::offer(const FlowRecord& record) {
  ++stats_.records_in;
  if (!have_watermark_) {
    watermark_ = record.ts;
    have_watermark_ = true;
  }
  // Records far from the plausible window are discarded outright; records
  // moderately ahead advance the watermark (the bulk of traffic defines
  // what "now" means — a single broken clock cannot drag it).
  if (record.ts > watermark_) {
    if (record.ts - watermark_ > config_.max_skew) {
      ++stats_.dropped_skew;
      return;
    }
    watermark_ = record.ts;
  } else if (watermark_ - record.ts > config_.max_skew) {
    ++stats_.dropped_skew;
    return;
  }
  pending_[util::bucket_index(record.ts, config_.bucket_len)].push_back(record);
  seal_up_to(util::bucket_index(watermark_, config_.bucket_len) -
             config_.settle_buckets);
}

void StatisticalTime::flush() {
  seal_up_to(pending_.empty() ? 0 : pending_.rbegin()->first + 1);
}

void StatisticalTime::seal_up_to(std::int64_t bucket_exclusive) {
  while (!pending_.empty() && pending_.begin()->first < bucket_exclusive) {
    auto node = pending_.extract(pending_.begin());
    auto& records = node.mapped();
    if (records.size() >= config_.activity_threshold) {
      ++stats_.buckets_emitted;
      for (const auto& r : records) {
        sink_(r);
        ++stats_.records_out;
      }
    } else {
      ++stats_.buckets_discarded;
      stats_.dropped_inactive += records.size();
    }
  }
}

}  // namespace ipd::netflow
