// Plain-text (CSV) flow I/O for interop.
//
// Columns: ts,src_ip,dst_ip,packets,bytes,router,iface
// Anything a spreadsheet, awk pipeline, or another collector can produce
// can feed IPD through this reader; the writer is the inverse. Robust
// parsing with per-line error reporting (strict) or skipping (lenient).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "netflow/flow_record.hpp"

namespace ipd::netflow {

inline constexpr const char* kCsvHeader =
    "ts,src_ip,dst_ip,packets,bytes,router,iface";

/// Write records as CSV (with header).
void write_csv(std::ostream& out, std::span<const FlowRecord> records);

struct CsvReadResult {
  std::vector<FlowRecord> records;
  std::uint64_t lines_skipped = 0;  // lenient mode only
};

/// Read CSV flows. Accepts an optional header line, blank lines and
/// '#' comments. In strict mode (default) a malformed line throws
/// std::runtime_error naming the line number; in lenient mode it is
/// counted and skipped.
CsvReadResult read_csv(std::istream& in, bool strict = true);

/// Parse a single CSV line (no header/comment handling).
/// Throws std::invalid_argument on malformed input.
FlowRecord parse_csv_line(std::string_view line);

/// Format a single record as a CSV line (no trailing newline).
std::string format_csv_line(const FlowRecord& record);

}  // namespace ipd::netflow
