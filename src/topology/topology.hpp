// ISP topology model: PoPs (sites in countries), border routers, and the
// interconnection interfaces through which external traffic ingresses.
//
// The model is intentionally flat — IPD never needs the internal (core)
// topology, only the identity and location of ingress links.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "topology/ids.hpp"

namespace ipd::topology {

struct Pop {
  PopId id = 0;
  std::string name;     // e.g. "FRA1"
  std::string country;  // e.g. "C2"
};

struct Router {
  RouterId id = 0;
  PopId pop = 0;
  std::string name;  // e.g. "R30"
};

struct Interface {
  LinkId id;
  LinkType type = LinkType::Transit;
  AsNumber peer_as = 0;  // AS on the far side of the link (0 = unset)
};

/// Container for the ISP's border infrastructure.
///
/// Build with add_pop/add_router/add_interface; all accessors are O(1)
/// except the per-AS interface listing which is precomputed on insert.
class Topology {
 public:
  PopId add_pop(std::string name, std::string country);
  RouterId add_router(PopId pop, std::string name = {});
  LinkId add_interface(RouterId router, LinkType type, AsNumber peer_as);

  std::size_t pop_count() const noexcept { return pops_.size(); }
  std::size_t router_count() const noexcept { return routers_.size(); }
  std::size_t interface_count() const noexcept { return interfaces_.size(); }

  const Pop& pop(PopId id) const { return pops_.at(id); }
  const Router& router(RouterId id) const { return routers_.at(id); }

  PopId pop_of(RouterId router) const { return routers_.at(router).pop; }
  const std::string& country_of(RouterId router) const {
    return pops_.at(routers_.at(router).pop).country;
  }

  /// Interface metadata for a link. Throws std::out_of_range if unknown.
  const Interface& interface(LinkId link) const;

  /// All interfaces on one router.
  std::vector<LinkId> interfaces_of_router(RouterId router) const;

  /// All interfaces facing a given peer AS (any router), in creation order.
  const std::vector<LinkId>& interfaces_of_as(AsNumber as) const;

  /// All interfaces of the ISP.
  const std::vector<Interface>& interfaces() const noexcept { return interfaces_; }
  const std::vector<Router>& routers() const noexcept { return routers_; }
  const std::vector<Pop>& pops() const noexcept { return pops_; }

  /// Paper-style rendering, e.g. "C2-R30.1".
  std::string link_name(LinkId link) const;

  /// True if `link` is a direct peering link (PNI or public peering) to `as`.
  bool is_peering_link_to(LinkId link, AsNumber as) const;

 private:
  std::vector<Pop> pops_;
  std::vector<Router> routers_;
  std::vector<InterfaceIndex> iface_count_;  // next interface index per router
  std::vector<Interface> interfaces_;
  std::unordered_map<std::uint64_t, std::size_t> interface_index_;
  std::unordered_map<AsNumber, std::vector<LinkId>> by_as_;
  std::vector<LinkId> empty_;
};

}  // namespace ipd::topology
