// Synthetic ISP topology construction.
//
// Builds a tier-1-style footprint: `n_pops` sites spread over `n_countries`
// countries, each with several border routers. Interfaces are added later
// by the workload module when peer ASes are attached.
#pragma once

#include "topology/topology.hpp"
#include "util/rng.hpp"

namespace ipd::topology {

struct BuilderConfig {
  int n_countries = 6;
  int n_pops = 12;
  int routers_per_pop = 5;
};

/// Deterministically construct the PoP/router skeleton.
Topology build_skeleton(const BuilderConfig& config);

}  // namespace ipd::topology
