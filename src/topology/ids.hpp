// Strongly-typed identifiers for the ISP topology model.
//
// A traffic ingress point is identified by (border router, interface); the
// paper renders these as "C2-R30.1" (country 2, router 30, interface 1).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace ipd::topology {

/// Point of Presence (a site in one country/metro).
using PopId = std::uint32_t;

/// Border router index, global across the ISP.
using RouterId = std::uint32_t;

/// Interface index local to a router.
using InterfaceIndex = std::uint16_t;

/// Autonomous system number of a peer/origin network.
using AsNumber = std::uint32_t;

inline constexpr RouterId kInvalidRouter = ~RouterId{0};

/// A single traffic ingress link: one interface on one border router.
struct LinkId {
  RouterId router = kInvalidRouter;
  InterfaceIndex iface = 0;

  friend constexpr bool operator==(const LinkId&, const LinkId&) noexcept = default;
  friend constexpr std::strong_ordering operator<=>(const LinkId&,
                                                    const LinkId&) noexcept = default;

  constexpr bool valid() const noexcept { return router != kInvalidRouter; }

  constexpr std::uint64_t key() const noexcept {
    return (static_cast<std::uint64_t>(router) << 16) | iface;
  }
};

struct LinkIdHash {
  std::size_t operator()(const LinkId& l) const noexcept {
    std::uint64_t h = l.key() * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h ^ (h >> 29));
  }
};

/// How the ISP classifies the interconnection behind an interface.
enum class LinkType : std::uint8_t {
  Pni,            // private network interconnect (direct, settlement-free)
  PublicPeering,  // via an IXP fabric
  Transit,        // paid upstream/downstream transit
  Customer,       // customer access aggregation
};

const char* to_string(LinkType type) noexcept;

}  // namespace ipd::topology
