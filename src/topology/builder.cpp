#include "topology/builder.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace ipd::topology {

Topology build_skeleton(const BuilderConfig& config) {
  if (config.n_countries <= 0 || config.n_pops < config.n_countries ||
      config.routers_per_pop <= 0) {
    throw std::invalid_argument("build_skeleton: invalid config");
  }
  Topology topo;
  for (int p = 0; p < config.n_pops; ++p) {
    // Round-robin PoPs over countries so every country has at least one.
    const int country = p % config.n_countries;
    const PopId pop = topo.add_pop(util::format("POP%d", p + 1),
                                   util::format("C%d", country + 1));
    for (int r = 0; r < config.routers_per_pop; ++r) {
      topo.add_router(pop);
    }
  }
  return topo;
}

}  // namespace ipd::topology
