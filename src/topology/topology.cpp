#include "topology/topology.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace ipd::topology {

const char* to_string(LinkType type) noexcept {
  switch (type) {
    case LinkType::Pni: return "PNI";
    case LinkType::PublicPeering: return "public-peering";
    case LinkType::Transit: return "transit";
    case LinkType::Customer: return "customer";
  }
  return "?";
}

PopId Topology::add_pop(std::string name, std::string country) {
  const PopId id = static_cast<PopId>(pops_.size());
  pops_.push_back(Pop{id, std::move(name), std::move(country)});
  return id;
}

RouterId Topology::add_router(PopId pop, std::string name) {
  if (pop >= pops_.size()) throw std::out_of_range("add_router: unknown pop");
  const RouterId id = static_cast<RouterId>(routers_.size());
  if (name.empty()) name = "R" + std::to_string(id);
  routers_.push_back(Router{id, pop, std::move(name)});
  return id;
}

LinkId Topology::add_interface(RouterId router, LinkType type, AsNumber peer_as) {
  if (router >= routers_.size()) {
    throw std::out_of_range("add_interface: unknown router");
  }
  if (iface_count_.size() <= router) iface_count_.resize(routers_.size(), 0);
  const LinkId link{router, iface_count_[router]++};
  interface_index_[link.key()] = interfaces_.size();
  interfaces_.push_back(Interface{link, type, peer_as});
  if (peer_as != 0) by_as_[peer_as].push_back(link);
  return link;
}

const Interface& Topology::interface(LinkId link) const {
  const auto it = interface_index_.find(link.key());
  if (it == interface_index_.end()) {
    throw std::out_of_range("unknown interface " + link_name(link));
  }
  return interfaces_[it->second];
}

std::vector<LinkId> Topology::interfaces_of_router(RouterId router) const {
  std::vector<LinkId> out;
  for (const auto& intf : interfaces_) {
    if (intf.id.router == router) out.push_back(intf.id);
  }
  return out;
}

const std::vector<LinkId>& Topology::interfaces_of_as(AsNumber as) const {
  const auto it = by_as_.find(as);
  return it == by_as_.end() ? empty_ : it->second;
}

std::string Topology::link_name(LinkId link) const {
  if (link.router < routers_.size()) {
    const auto& r = routers_[link.router];
    return pops_[r.pop].country + "-" + r.name + "." + std::to_string(link.iface);
  }
  return util::format("R%u.%u", link.router, link.iface);
}

bool Topology::is_peering_link_to(LinkId link, AsNumber as) const {
  const auto& intf = interface(link);
  return intf.peer_as == as &&
         (intf.type == LinkType::Pni || intf.type == LinkType::PublicPeering);
}

}  // namespace ipd::topology
