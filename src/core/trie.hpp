// Dynamic IPD range trie, arena-backed.
//
// The IP address space is a binary tree whose leaves form a disjoint
// partition into *IPD ranges* (paper §3.2). Leaves are either
//   Monitoring  — not yet classified; per-masked-IP detail state is kept so
//                 that splits redistribute samples exactly and per-IP
//                 expiry (parameter e) works as described, or
//   Classified  — a prevalent ingress was found; detail state is dropped
//                 and only aggregate per-ingress counters remain.
// Interior nodes carry no state.
//
// Memory layout: nodes live in a per-trie NodePool arena and refer to each
// other by 32-bit indices instead of unique_ptr/raw-pointer edges. Slots
// freed by join/compact are reused before the arena grows, node addresses
// are stable for the life of the trie (blocks never move), and per-IP
// detail sits in one contiguous FlatIpTable allocation per leaf. The
// upshot: half the edge bytes, no per-node heap allocation on split,
// cache-local stage-2 walks, and memory_bytes() that is *exact* (arena
// blocks + flat tables + spilled counters) rather than estimated.
//
// Navigation goes through the trie (`trie.child(node, bit)`, `trie.node(i)`)
// because an index is only meaningful relative to its pool; RangeNode
// itself exposes the raw indices.
//
// Concurrency: the trie is not synchronized — callers serialize structural
// changes externally (the sharded engine holds an exclusive lock during
// stage 2 and per-subtree mutexes during stage 1). Concurrent stage-2
// passes over disjoint subtrees are safe: the node/leaf counters are
// relaxed atomics, pool alloc/free is internally serialized, and index
// resolution is lock-free against concurrent allocation.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <vector>

#include "core/flat_ip_table.hpp"
#include "core/ingress.hpp"
#include "net/ip_address.hpp"
#include "net/prefix.hpp"
#include "util/index_arena.hpp"
#include "util/time.hpp"

namespace ipd::core {

class IpdTrie;
class RangeNode;

/// Snapshot serializer (core/snapshot.cpp). Friended into the engine's
/// state-bearing types so warm-restart save/restore can reproduce private
/// layout (slot placement, free chains, exact capacities) bit-for-bit
/// without widening the public API.
struct SnapshotAccess;

/// Node handle within one trie's pool.
using NodeIndex = std::uint32_t;
inline constexpr NodeIndex kInvalidNode = 0xffffffffu;

class alignas(64) RangeNode {
 public:
  enum class State : std::uint8_t { Monitoring, Classified, Internal };

  RangeNode(net::Prefix prefix, NodeIndex self,
            NodeIndex parent = kInvalidNode)
      : self_(self), parent_(parent), prefix_(prefix) {}

  const net::Prefix& prefix() const noexcept { return prefix_; }
  State state() const noexcept { return state_; }
  bool is_leaf() const noexcept { return state_ != State::Internal; }

  /// This node's pool index (stable for the node's lifetime).
  NodeIndex index() const noexcept { return self_; }
  NodeIndex parent_index() const noexcept { return parent_; }
  NodeIndex child_index(int bit) const noexcept {
    return bit ? child1_ : child0_;
  }

  /// Aggregate per-ingress counters (valid for leaves).
  const IngressCounts& counts() const noexcept { return counts_; }
  IngressCounts& counts() noexcept { return counts_; }

  /// Classified ingress; valid() only in Classified state.
  const IngressId& ingress() const noexcept { return ingress_; }

  util::Timestamp last_update() const noexcept { return last_update_; }
  util::Timestamp classified_at() const noexcept { return classified_at_; }

  const FlatIpTable& ips() const noexcept { return ips_; }
  FlatIpTable& ips() noexcept { return ips_; }

  /// Record one sample (stage 1). Leaf only.
  void add_sample(util::Timestamp ts, const net::IpAddress& masked_ip,
                  topology::LinkId link, std::uint64_t n = 1);

  /// The aggregate half of add_sample (per-ingress counters + freshness),
  /// without the Monitoring per-IP table probe. The batched ingest path
  /// applies aggregates row by row through this and batches the probes
  /// into FlatIpTable::apply_many; add_aggregate + (Monitoring ?
  /// apply_many op : nothing) == add_sample. Leaf only.
  void add_aggregate(util::Timestamp ts, topology::LinkId link,
                     std::uint64_t n) noexcept {
    counts_.add(link, static_cast<double>(n));
    if (ts > last_update_) last_update_ = ts;
  }

  /// Remove per-IP entries older than `cutoff`, rebuild the aggregate
  /// counters from what survives, and compact the detail table.
  /// Monitoring leaves only.
  void expire_before(util::Timestamp cutoff);

  /// Move to Classified: drop per-IP detail (releasing its memory), keep
  /// aggregates.
  void classify(const IngressId& ingress, util::Timestamp now);

  /// Drop a classification (or all state): back to empty Monitoring.
  void reset_to_monitoring();

  /// Exact heap bytes owned by this node beyond its pool slot: the flat
  /// table, spilled counters, and the ingress interface set.
  std::size_t memory_bytes() const noexcept;

 private:
  friend class IpdTrie;
  friend struct SnapshotAccess;

  /// Sentinel for child_off_: leaf, or a child outside the arena's first
  /// block (locate() then falls back to index resolution).
  static constexpr std::uint32_t kNoOffset = 0xffffffffu;

  // Hot fields first: locate() touches only child_off_/state_ per descent
  // level, and the 64-byte node alignment keeps them in the first cache
  // line of every node. child_off_ holds the children's precomputed byte
  // offsets inside the arena's first block, indexed by the address bit, so
  // the per-level critical path is a single load plus one add — the same
  // chain a pointer-linked trie would have (a child index would need a
  // ×sizeof multiply on the load-to-load path, which is 2-3× slower when
  // the upper levels sit in L1/L2).
  std::uint32_t child_off_[2] = {kNoOffset, kNoOffset};
  State state_ = State::Monitoring;
  NodeIndex child0_ = kInvalidNode;
  NodeIndex child1_ = kInvalidNode;
  NodeIndex self_ = kInvalidNode;
  NodeIndex parent_ = kInvalidNode;
  net::Prefix prefix_;

  FlatIpTable ips_;
  IngressCounts counts_;
  IngressId ingress_;
  util::Timestamp last_update_ = 0;
  util::Timestamp classified_at_ = 0;
};

/// One address family's partition of the address space.
class IpdTrie {
 public:
  /// Node arena: 4096-node blocks, up to ~67M nodes per family — beyond a
  /// full /24-grain IPv4 partition. Indices and addresses are stable.
  using NodePool = util::IndexArena<RangeNode>;
  static_assert(NodePool::kInvalid == kInvalidNode);

  explicit IpdTrie(net::Family family);
  ~IpdTrie();

  // Movable (the counters are atomic only for concurrent stage-2 passes;
  // moving a trie that is being cycled concurrently is a caller bug).
  IpdTrie(IpdTrie&& other) noexcept
      : family_(other.family_),
        pool_(std::move(other.pool_)),
        block0_(other.block0_),
        root_(other.root_),
        leaves_(other.leaves_.load(std::memory_order_relaxed)),
        nodes_(other.nodes_.load(std::memory_order_relaxed)) {
    other.root_ = kInvalidNode;
  }
  IpdTrie& operator=(IpdTrie&& other) noexcept {
    destroy_all();
    family_ = other.family_;
    pool_ = std::move(other.pool_);
    block0_ = other.block0_;
    root_ = other.root_;
    other.root_ = kInvalidNode;
    leaves_.store(other.leaves_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    nodes_.store(other.nodes_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  net::Family family() const noexcept { return family_; }
  const RangeNode& root() const noexcept { return resolve(root_); }
  RangeNode& root() noexcept { return resolve(root_); }
  NodeIndex root_index() const noexcept { return root_; }

  /// Resolve a node index against this trie's pool.
  RangeNode& node(NodeIndex index) noexcept { return resolve(index); }
  const RangeNode& node(NodeIndex index) const noexcept {
    return resolve(index);
  }

  /// `node`'s child, nullptr for leaves.
  RangeNode* child(const RangeNode& node, int bit) noexcept {
    const NodeIndex i = node.child_index(bit);
    return i == kInvalidNode ? nullptr : &resolve(i);
  }
  const RangeNode* child(const RangeNode& node, int bit) const noexcept {
    const NodeIndex i = node.child_index(bit);
    return i == kInvalidNode ? nullptr : &resolve(i);
  }

  /// The leaf range currently covering `ip` (always exists).
  RangeNode& locate(const net::IpAddress& ip) noexcept;

  /// Interleaved descents a single walk cannot: locate() is one dependent
  /// load per level, so a cold descent stalls for a full cache miss at
  /// every level. locate_many keeps kLocateWalks independent descents in
  /// flight round-robin; each visit advances a walk by one level and
  /// prefetches the next node, which then has (kLocateWalks - 1) other
  /// visits' worth of time to arrive before that walk is serviced again.
  /// `get_ip(i)` supplies address i (0..n-1, each read exactly once, in
  /// order); `emit(i, leaf)` receives the covering leaf. Emission order is
  /// unspecified — callers needing arrival order buffer by index. The trie
  /// must not be structurally mutated during the call (same contract as
  /// locate(); stage 1 never splits).
  static constexpr std::size_t kLocateWalks = 8;

  template <class GetIp, class Emit>
  void locate_many(std::size_t n, const GetIp& get_ip,
                   const Emit& emit) noexcept {
    if (n < 2) {
      if (n == 1) emit(std::size_t{0}, locate(get_ip(0)));
      return;
    }
    std::byte* const base = reinterpret_cast<std::byte*>(block0_);
    struct Walk {
      RangeNode* node;
      std::uint64_t word;  // top-aligned remaining address bits
      std::uint64_t rest;  // v6 bits 64..127 (crossover at depth 64)
      std::uint32_t depth;
      std::size_t idx;
    };
    Walk walks[kLocateWalks];
    std::size_t next = 0;
    const auto start = [&](Walk& w) {
      const net::IpAddress& ip = get_ip(next);
      w.idx = next++;
      w.node = &resolve(root_);
      w.word = ip.is_v4() ? ip.lo() << 32 : ip.hi();
      w.rest = ip.lo();
      w.depth = 0;
    };
    std::size_t active = n < kLocateWalks ? n : kLocateWalks;
    for (std::size_t i = 0; i < active; ++i) start(walks[i]);
    while (active > 0) {
      for (std::size_t s = 0; s < active;) {
        Walk& w = walks[s];
        RangeNode* const node = w.node;
        // The state load is this walk's first touch of the node prefetched
        // on its previous visit — the interleave exists to give that line
        // time to land.
        if (node->state_ != RangeNode::State::Internal) {
          emit(w.idx, *node);
          if (next < n) {
            start(w);
            ++s;
          } else {
            walks[s] = walks[--active];  // re-examine the moved walk at s
          }
          continue;
        }
        const bool one = static_cast<std::int64_t>(w.word) < 0;
        const std::uint32_t off = node->child_off_[one];
        w.word <<= 1;
        if (++w.depth == 64) w.word = w.rest;
        RangeNode* const child =
            off != RangeNode::kNoOffset
                ? std::launder(reinterpret_cast<RangeNode*>(base + off))
                : &resolve(one ? node->child1_ : node->child0_);
        __builtin_prefetch(child, 0, 3);
        w.node = child;
        ++s;
      }
    }
  }

  /// Split a Monitoring leaf into its two children, redistributing the
  /// per-IP detail by the next address bit. Returns false if the node is
  /// not splittable (not a Monitoring leaf, or already at full width).
  bool split(RangeNode& node);

  /// Join `parent`'s two children into `parent` if both are Classified
  /// leaves with the same ingress. Frees both child slots for reuse.
  bool join_children(RangeNode& parent);

  /// Collapse two empty Monitoring leaf children into the parent.
  bool compact_children(RangeNode& parent);

  /// Visit every leaf (the current partition), in address order.
  void for_each_leaf(const std::function<void(RangeNode&)>& fn);
  void for_each_leaf(const std::function<void(const RangeNode&)>& fn) const;

  /// Visit every leaf under `node`, in address order. `node` must belong
  /// to this trie (the sharded engine walks one cut subtree at a time
  /// while holding that subtree's lock).
  void for_each_leaf_from(
      const RangeNode& node,
      const std::function<void(const RangeNode&)>& fn) const;

  /// Post-order visit of every node (children before parents). The visitor
  /// may split the visited node; freshly created children are not visited
  /// in the same pass.
  void post_order(const std::function<void(RangeNode&)>& fn);

  /// Post-order visit limited to the subtree rooted at `node` (the
  /// sharded engine's per-cut stage-2 pass). Safe to run concurrently on
  /// disjoint subtrees: all structural mutations stay inside the subtree,
  /// pool allocation is internally serialized, and the trie-wide counters
  /// are atomic.
  void post_order_from(RangeNode& node,
                       const std::function<void(RangeNode&)>& fn);

  std::size_t leaf_count() const noexcept {
    return leaves_.load(std::memory_order_relaxed);
  }
  std::size_t node_count() const noexcept {
    return nodes_.load(std::memory_order_relaxed);
  }

  /// Exact total heap usage in bytes: the node arena (block table plus
  /// mapped blocks) plus every node's owned heap (flat tables, spilled
  /// counters, bundle interface sets).
  std::size_t memory_bytes() const noexcept;

  /// Exact arena footprint alone (blocks + block table).
  std::size_t arena_bytes() const noexcept { return pool_->bytes(); }

  /// Pool slots ever mapped (high-water mark). A join/split steady state
  /// reuses freed slots, so this stays flat — the free-list test pins it.
  std::size_t pool_high_water() const noexcept { return pool_->high_water(); }

 private:
  friend struct SnapshotAccess;

  /// Index resolution with a fast path through block 0 (installed by the
  /// constructor, never moved): one predictable branch and a direct index
  /// off a cached base instead of the arena's atomic block-table load.
  /// Tries up to 4096 nodes — virtually all of them — never leave it.
  RangeNode& resolve(NodeIndex index) noexcept {
    if (index < NodePool::kBlockSize) [[likely]] {
      return block0_[index];
    }
    return (*pool_)[index];
  }
  const RangeNode& resolve(NodeIndex index) const noexcept {
    if (index < NodePool::kBlockSize) [[likely]] {
      return block0_[index];
    }
    return (*pool_)[index];
  }

  /// Precomputed block-0 byte offset for a child edge (see
  /// RangeNode::child_off_); kNoOffset beyond the first block.
  std::uint32_t offset_of(NodeIndex index) const noexcept {
    return index < NodePool::kBlockSize
               ? static_cast<std::uint32_t>(index * sizeof(RangeNode))
               : RangeNode::kNoOffset;
  }

  void visit_leaves(RangeNode& node, const std::function<void(RangeNode&)>& fn);
  void visit_post(RangeNode& node, const std::function<void(RangeNode&)>& fn);
  void destroy_all() noexcept;
  void free_subtree(NodeIndex index) noexcept;

  net::Family family_;
  // unique_ptr keeps the trie movable (the arena itself holds a mutex).
  std::unique_ptr<NodePool> pool_;
  // Cached base of the pool's first block (see resolve()).
  RangeNode* block0_ = nullptr;
  NodeIndex root_ = kInvalidNode;
  // Relaxed atomics: adjusted from concurrent per-subtree stage-2 passes;
  // increments/decrements commute, so totals stay exact and deterministic.
  std::atomic<std::size_t> leaves_{1};
  std::atomic<std::size_t> nodes_{1};
};

}  // namespace ipd::core
