// Dynamic IPD range trie.
//
// The IP address space is a binary tree whose leaves form a disjoint
// partition into *IPD ranges* (paper §3.2). Leaves are either
//   Monitoring  — not yet classified; per-masked-IP detail state is kept so
//                 that splits redistribute samples exactly and per-IP
//                 expiry (parameter e) works as described, or
//   Classified  — a prevalent ingress was found; detail state is dropped
//                 and only aggregate per-ingress counters remain.
// Interior nodes carry no state.
//
// Concurrency: the trie itself is not synchronized — callers serialize
// structural changes externally (the sharded engine holds an exclusive
// lock during stage 2 and per-subtree mutexes during stage 1). The only
// internal concession to parallel stage-2 passes are the node/leaf
// counters, which are relaxed atomics so that disjoint subtrees can
// split/join/compact concurrently; every other mutation stays confined to
// the subtree it happens in.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/ingress.hpp"
#include "net/ip_address.hpp"
#include "net/prefix.hpp"
#include "util/time.hpp"

namespace ipd::core {

/// Per-masked-source-IP state inside a Monitoring range.
struct IpEntry {
  util::Timestamp last_seen = 0;
  std::uint64_t total = 0;
  // Per-ingress flow counts; nearly always one or two links.
  std::vector<std::pair<topology::LinkId, std::uint64_t>> counts;

  void add(topology::LinkId link, std::uint64_t n = 1) {
    total += n;
    for (auto& [l, c] : counts) {
      if (l == link) {
        c += n;
        return;
      }
    }
    counts.emplace_back(link, n);
  }
};

class RangeNode {
 public:
  enum class State : std::uint8_t { Monitoring, Classified, Internal };

  explicit RangeNode(net::Prefix prefix, RangeNode* parent = nullptr)
      : prefix_(prefix), parent_(parent) {}

  const net::Prefix& prefix() const noexcept { return prefix_; }
  State state() const noexcept { return state_; }
  bool is_leaf() const noexcept { return state_ != State::Internal; }
  RangeNode* parent() const noexcept { return parent_; }
  RangeNode* child(int bit) const noexcept {
    return bit ? child1_.get() : child0_.get();
  }

  /// Aggregate per-ingress counters (valid for leaves).
  const IngressCounts& counts() const noexcept { return counts_; }
  IngressCounts& counts() noexcept { return counts_; }

  /// Classified ingress; valid() only in Classified state.
  const IngressId& ingress() const noexcept { return ingress_; }

  util::Timestamp last_update() const noexcept { return last_update_; }
  util::Timestamp classified_at() const noexcept { return classified_at_; }

  const std::unordered_map<net::IpAddress, IpEntry, net::IpAddressHash>& ips()
      const noexcept {
    return ips_;
  }

  /// Record one sample (stage 1). Leaf only.
  void add_sample(util::Timestamp ts, const net::IpAddress& masked_ip,
                  topology::LinkId link, std::uint64_t n = 1);

  /// Remove per-IP entries older than `cutoff` and rebuild the aggregate
  /// counters from what survives. Monitoring leaves only.
  void expire_before(util::Timestamp cutoff);

  /// Move to Classified: drop per-IP detail, keep aggregates.
  void classify(const IngressId& ingress, util::Timestamp now);

  /// Drop a classification (or all state): back to empty Monitoring.
  void reset_to_monitoring();

  /// Rough heap usage of this node's state in bytes.
  std::size_t memory_bytes() const noexcept;

 private:
  friend class IpdTrie;

  net::Prefix prefix_;
  RangeNode* parent_ = nullptr;
  std::unique_ptr<RangeNode> child0_, child1_;
  State state_ = State::Monitoring;

  std::unordered_map<net::IpAddress, IpEntry, net::IpAddressHash> ips_;
  IngressCounts counts_;
  IngressId ingress_;
  util::Timestamp last_update_ = 0;
  util::Timestamp classified_at_ = 0;
};

/// One address family's partition of the address space.
class IpdTrie {
 public:
  explicit IpdTrie(net::Family family);

  // Movable (the counters are atomic only for concurrent stage-2 passes;
  // moving a trie that is being cycled concurrently is a caller bug).
  IpdTrie(IpdTrie&& other) noexcept
      : family_(other.family_),
        root_(std::move(other.root_)),
        leaves_(other.leaves_.load(std::memory_order_relaxed)),
        nodes_(other.nodes_.load(std::memory_order_relaxed)) {}
  IpdTrie& operator=(IpdTrie&& other) noexcept {
    family_ = other.family_;
    root_ = std::move(other.root_);
    leaves_.store(other.leaves_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    nodes_.store(other.nodes_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  net::Family family() const noexcept { return family_; }
  const RangeNode& root() const noexcept { return *root_; }
  RangeNode& root() noexcept { return *root_; }

  /// The leaf range currently covering `ip` (always exists).
  RangeNode& locate(const net::IpAddress& ip) noexcept;

  /// Split a Monitoring leaf into its two children, redistributing the
  /// per-IP detail by the next address bit. Returns false if the node is
  /// not splittable (not a Monitoring leaf, or already at full width).
  bool split(RangeNode& node);

  /// Join `parent`'s two children into `parent` if both are Classified
  /// leaves with the same ingress. Returns true on join.
  bool join_children(RangeNode& parent);

  /// Collapse two empty Monitoring leaf children into the parent.
  bool compact_children(RangeNode& parent);

  /// Visit every leaf (the current partition), in address order.
  void for_each_leaf(const std::function<void(RangeNode&)>& fn);
  void for_each_leaf(const std::function<void(const RangeNode&)>& fn) const;

  /// Visit every leaf under `node`, in address order. `node` must belong
  /// to this trie (the sharded engine walks one cut subtree at a time
  /// while holding that subtree's lock).
  void for_each_leaf_from(
      const RangeNode& node,
      const std::function<void(const RangeNode&)>& fn) const;

  /// Post-order visit of every node (children before parents). The visitor
  /// may split the visited node; freshly created children are not visited
  /// in the same pass.
  void post_order(const std::function<void(RangeNode&)>& fn);

  /// Post-order visit limited to the subtree rooted at `node` (the
  /// sharded engine's per-cut stage-2 pass). Safe to run concurrently on
  /// disjoint subtrees: all structural mutations stay inside the subtree
  /// and the trie-wide counters are atomic.
  void post_order_from(RangeNode& node,
                       const std::function<void(RangeNode&)>& fn);

  std::size_t leaf_count() const noexcept {
    return leaves_.load(std::memory_order_relaxed);
  }
  std::size_t node_count() const noexcept {
    return nodes_.load(std::memory_order_relaxed);
  }

  /// Rough total heap usage in bytes.
  std::size_t memory_bytes() const noexcept;

 private:
  void visit_leaves(RangeNode& node, const std::function<void(RangeNode&)>& fn);
  void visit_post(RangeNode& node, const std::function<void(RangeNode&)>& fn);

  net::Family family_;
  std::unique_ptr<RangeNode> root_;
  // Relaxed atomics: adjusted from concurrent per-subtree stage-2 passes;
  // increments/decrements commute, so totals stay exact and deterministic.
  std::atomic<std::size_t> leaves_{1};
  std::atomic<std::size_t> nodes_{1};
};

}  // namespace ipd::core
