#include "core/lpm_table.hpp"

namespace ipd::core {

LpmTable LpmTable::from_snapshot(const Snapshot& snapshot) {
  LpmTable table;
  for (const auto& row : snapshot) {
    if (row.classified) table.insert(row.range, row.ingress);
  }
  return table;
}

void LpmTable::insert(const net::Prefix& prefix, const IngressId& ingress) {
  (prefix.family() == net::Family::V4 ? trie4_ : trie6_).insert(prefix, ingress);
}

std::optional<IngressId> LpmTable::lookup(const net::IpAddress& ip) const {
  const auto& trie = ip.is_v4() ? trie4_ : trie6_;
  const IngressId* hit = trie.lookup(ip);
  if (!hit) return std::nullopt;
  return *hit;
}

std::optional<std::pair<net::Prefix, IngressId>> LpmTable::lookup_entry(
    const net::IpAddress& ip) const {
  const auto& trie = ip.is_v4() ? trie4_ : trie6_;
  const auto hit = trie.lookup_entry(ip);
  if (!hit) return std::nullopt;
  return std::make_pair(hit->first, *hit->second);
}

}  // namespace ipd::core
