#include "core/ingress.hpp"

namespace ipd::core {

std::string IngressId::to_string() const {
  std::string out = "R" + std::to_string(router) + ".";
  if (ifaces.size() == 1) {
    out += std::to_string(ifaces.front());
    return out;
  }
  out += '{';
  for (std::size_t i = 0; i < ifaces.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(ifaces[i]);
  }
  out += '}';
  return out;
}

void IngressCounts::add(topology::LinkId link, double n) noexcept {
  total_ += n;
  // Keep entries_ sorted ascending by link key: the canonical order makes
  // every derived quantity (top link, breakdowns, summation order of
  // totals) independent of the order in which samples arrived, which is
  // what lets split/expire rebuild aggregates from hash-ordered per-IP
  // state without perturbing engine output.
  //
  // A linear scan with early exit beats binary search here: ranges see a
  // handful of links, the scan is contiguous and predictable, and the hit
  // (one existing link getting another sample) is the per-flow hot path.
  const std::uint64_t key = link.key();
  auto* pos = entries_.begin();
  for (const auto* end = entries_.end(); pos != end; ++pos) {
    if (pos->first.key() >= key) {
      if (pos->first == link) {
        pos->second += n;
        return;
      }
      break;
    }
  }
  entries_.insert(pos, {link, n});
}

double IngressCounts::count_for(topology::LinkId link) const noexcept {
  for (const auto& [l, c] : entries_) {
    if (l == link) return c;
  }
  return 0.0;
}

double IngressCounts::count_for(const IngressId& ingress) const noexcept {
  double sum = 0.0;
  for (const auto& [l, c] : entries_) {
    if (ingress.matches(l)) sum += c;
  }
  return sum;
}

topology::LinkId IngressCounts::top_link() const noexcept {
  // entries_ is ascending by key, so strict `>` breaks ties toward the
  // lowest link key.
  topology::LinkId best{};
  double best_count = -1.0;
  for (const auto& [l, c] : entries_) {
    if (c > best_count) {
      best = l;
      best_count = c;
    }
  }
  return best;
}

std::vector<topology::RouterId> IngressCounts::routers() const {
  std::vector<topology::RouterId> out;
  for (const auto& [l, c] : entries_) {
    (void)c;
    bool seen = false;
    for (const auto r : out) {
      if (r == l.router) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(l.router);
  }
  return out;
}

double IngressCounts::count_for_router(topology::RouterId router) const noexcept {
  double sum = 0.0;
  for (const auto& [l, c] : entries_) {
    if (l.router == router) sum += c;
  }
  return sum;
}

std::vector<std::pair<topology::InterfaceIndex, double>>
IngressCounts::router_interfaces(topology::RouterId router) const {
  std::vector<std::pair<topology::InterfaceIndex, double>> out;
  for (const auto& [l, c] : entries_) {
    if (l.router == router) out.emplace_back(l.iface, c);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  return out;
}

void IngressCounts::scale(double factor) noexcept {
  constexpr double kEps = 1e-6;
  total_ = 0.0;
  std::size_t kept = 0;
  for (auto& entry : entries_) {
    entry.second *= factor;
    if (entry.second > kEps) {
      entries_[kept++] = entry;
      total_ += entry.second;
    }
  }
  entries_.truncate(kept);
}

void IngressCounts::merge(const IngressCounts& other) noexcept {
  for (const auto& [l, c] : other.entries_) add(l, c);
}

std::vector<std::pair<topology::LinkId, double>> IngressCounts::sorted_entries()
    const {
  std::vector<std::pair<topology::LinkId, double>> out;
  out.reserve(entries_.size());
  for (const auto& [l, c] : entries_) out.emplace_back(l, c);
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first.key() < b.first.key();  // deterministic tie-break
  });
  return out;
}

}  // namespace ipd::core
