// Ingress identity and per-ingress sample accounting.
//
// Stage 1 counts flows per physical link (router, interface). Stage 2
// classifies a range to an IngressId: either a single link or a *bundle* —
// several interfaces of one router over which traffic is evenly balanced
// and which the ISP treats as one logical ingress.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "topology/ids.hpp"
#include "util/small_vec.hpp"

namespace ipd::core {

struct SnapshotAccess;  // snapshot serializer; see trie.hpp

/// A classified ingress point: one router plus one or more interfaces.
struct IngressId {
  topology::RouterId router = topology::kInvalidRouter;
  std::vector<topology::InterfaceIndex> ifaces;  // sorted, unique, size >= 1

  IngressId() = default;

  explicit IngressId(topology::LinkId link)
      : router(link.router), ifaces{link.iface} {}

  IngressId(topology::RouterId r, std::vector<topology::InterfaceIndex> set)
      : router(r), ifaces(std::move(set)) {
    std::sort(ifaces.begin(), ifaces.end());
    ifaces.erase(std::unique(ifaces.begin(), ifaces.end()), ifaces.end());
  }

  bool valid() const noexcept { return router != topology::kInvalidRouter; }
  bool is_bundle() const noexcept { return ifaces.size() > 1; }

  /// True if traffic on `link` counts as entering through this ingress.
  bool matches(topology::LinkId link) const noexcept {
    return link.router == router &&
           std::binary_search(ifaces.begin(), ifaces.end(), link.iface);
  }

  /// Representative physical link (lowest interface index).
  topology::LinkId primary_link() const noexcept {
    return topology::LinkId{router, ifaces.empty() ? topology::InterfaceIndex{0}
                                                   : ifaces.front()};
  }

  friend bool operator==(const IngressId&, const IngressId&) = default;

  /// Compact rendering, e.g. "R30.1" or "R30.{1,2}" for bundles.
  std::string to_string() const;
};

/// Per-ingress-link sample counters for one IPD range.
///
/// Counts are doubles because the decay function shrinks them
/// multiplicatively. The container is a flat vector: ranges see only a
/// handful of distinct ingress links, so linear scans beat hashing. The
/// vector is kept sorted ascending by link key at all times — the
/// canonical order makes totals, top-link selection and breakdowns
/// independent of sample arrival order, so rebuilding aggregates from
/// hash-ordered per-IP detail is output-neutral.
class IngressCounts {
 public:
  /// Flat entry storage: two links inline (the overwhelmingly common
  /// case), heap spill beyond.
  using Entries = util::SmallVec<util::PodPair<topology::LinkId, double>, 2>;

  void add(topology::LinkId link, double n = 1.0) noexcept;

  double total() const noexcept { return total_; }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t distinct_links() const noexcept { return entries_.size(); }

  double count_for(topology::LinkId link) const noexcept;

  /// Combined count over every interface of `ingress`.
  double count_for(const IngressId& ingress) const noexcept;

  /// Share of `ingress` in the total; 0 if no samples.
  double share_of(const IngressId& ingress) const noexcept {
    return total_ > 0.0 ? count_for(ingress) / total_ : 0.0;
  }

  /// The link with the highest count; ties break to the lowest link key.
  /// Precondition: !empty().
  topology::LinkId top_link() const noexcept;

  /// Distinct routers present.
  std::vector<topology::RouterId> routers() const;

  /// Combined count of all interfaces on `router`.
  double count_for_router(topology::RouterId router) const noexcept;

  /// Interfaces of `router` with their counts, descending by count.
  std::vector<std::pair<topology::InterfaceIndex, double>> router_interfaces(
      topology::RouterId router) const;

  /// Multiply every counter by `factor` (decay); drops entries below eps.
  void scale(double factor) noexcept;

  /// Merge another range's counters into this one (used by joins).
  void merge(const IngressCounts& other) noexcept;

  void clear() noexcept {
    entries_.clear();
    total_ = 0.0;
  }

  /// Entries sorted descending by count (for output breakdowns).
  std::vector<std::pair<topology::LinkId, double>> sorted_entries() const;

  /// Raw entries, always sorted ascending by link key (canonical order).
  const Entries& entries() const noexcept { return entries_; }

  /// Exact heap footprint in bytes: zero while the entries sit inline.
  std::size_t memory_bytes() const noexcept { return entries_.heap_bytes(); }

 private:
  friend struct SnapshotAccess;

  Entries entries_;
  double total_ = 0.0;
};

}  // namespace ipd::core
