#include "core/engine.hpp"

#include <chrono>

namespace ipd::core {

IpdEngine::IpdEngine(IpdParams params)
    : params_(params), trie4_(net::Family::V4), trie6_(net::Family::V6) {
  params_.validate();
}

void IpdEngine::ingest(util::Timestamp ts, const net::IpAddress& src_ip,
                       topology::LinkId ingress, std::uint64_t weight) noexcept {
  IpdTrie& trie = src_ip.is_v4() ? trie4_ : trie6_;
  const net::IpAddress masked = src_ip.masked(params_.cidr_max(src_ip.family()));
  trie.locate(masked).add_sample(ts, masked, ingress, weight);
  ++stats_.flows_ingested;
}

std::optional<IngressId> IpdEngine::find_prevalent(
    const IngressCounts& counts) const {
  const double total = counts.total();
  if (total <= 0.0) return std::nullopt;

  const topology::LinkId top = counts.top_link();
  if (counts.count_for(top) / total >= params_.q) return IngressId(top);

  if (!params_.enable_bundles) return std::nullopt;

  // Bundle check: one router's interfaces jointly prevalent. The top link's
  // router is the only candidate that can reach q if the top link alone
  // cannot (any other router has an even smaller maximum share only when
  // its aggregate is larger — so scan all routers to be exact).
  for (const topology::RouterId router : counts.routers()) {
    const double router_count = counts.count_for_router(router);
    if (router_count / total < params_.q) continue;
    const auto ifaces = counts.router_interfaces(router);
    std::vector<topology::InterfaceIndex> members;
    for (const auto& [iface, c] : ifaces) {
      if (c >= params_.bundle_member_min_share * router_count) {
        members.push_back(iface);
      }
    }
    if (members.size() >= 2) return IngressId(router, std::move(members));
    // A single qualifying member means the rest of the router's traffic is
    // spread over below-threshold interfaces; treat as that single link.
    if (members.size() == 1) {
      return IngressId(topology::LinkId{router, members.front()});
    }
  }
  return std::nullopt;
}

CycleStats IpdEngine::run_cycle(util::Timestamp now) {
  const auto t0 = std::chrono::steady_clock::now();
  CycleStats out;
  out.now = now;
  cycle_family(trie4_, now, out);
  cycle_family(trie6_, now, out);

  // Partition census after all structural changes.
  for (const net::Family family : {net::Family::V4, net::Family::V6}) {
    const IpdTrie& trie = this->trie(family);
    trie.for_each_leaf([&out](const RangeNode& leaf) {
      ++out.ranges_total;
      if (leaf.state() == RangeNode::State::Classified) {
        ++out.ranges_classified;
      } else {
        ++out.ranges_monitoring;
        out.tracked_ips += leaf.ips().size();
      }
    });
    out.memory_bytes += trie.memory_bytes();
  }

  out.cycle_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  ++stats_.cycles_run;
  stats_.total_classifications += out.classifications;
  stats_.total_splits += out.splits;
  stats_.total_joins += out.joins;
  stats_.total_drops += out.drops;
  return out;
}

void IpdEngine::cycle_family(IpdTrie& trie, util::Timestamp now,
                             CycleStats& out) {
  trie.post_order([this, &trie, now, &out](RangeNode& node) {
    if (node.state() == RangeNode::State::Internal) {
      // Children were processed first: join same-ingress classified
      // siblings, fold away empty monitoring siblings.
      if (params_.enable_joins && trie.join_children(node)) {
        ++out.joins;
      } else if (trie.compact_children(node)) {
        ++out.compactions;
      }
      return;
    }
    handle_leaf(trie, node, now, out);
  });
}

void IpdEngine::handle_leaf(IpdTrie& trie, RangeNode& node, util::Timestamp now,
                            CycleStats& out) {
  const net::Family family = trie.family();

  if (node.state() == RangeNode::State::Classified) {
    // Quiet classified ranges decay; once the counters are negligible —
    // or the range has been quiet for too long — it is dropped so stale
    // mappings disappear quickly.
    const util::Duration age = now - node.last_update();
    if (age > params_.e) {
      node.counts().scale(params_.decay_factor(age));
      const double floor = std::max(
          params_.min_keep_samples,
          params_.drop_below_ncidr_fraction *
              params_.n_cidr(family, node.prefix().length()));
      if (node.counts().total() < floor || age > params_.drop_after) {
        node.reset_to_monitoring();
        ++out.drops;
        return;
      }
    }
    // "if prevalent ingress still valid (s_ingress >= q) then keep".
    if (node.counts().share_of(node.ingress()) < params_.q) {
      node.reset_to_monitoring();
      ++out.drops;
    }
    return;
  }

  // Monitoring leaf: expire per-IP state older than e seconds.
  node.expire_before(now - params_.e);

  const int len = node.prefix().length();
  const double n_cidr = params_.n_cidr(family, len);
  if (node.counts().total() < n_cidr) return;  // not enough data yet

  if (const auto prevalent = find_prevalent(node.counts())) {
    node.classify(*prevalent, now);
    ++out.classifications;
    return;
  }

  if (len < params_.cidr_max(family)) {
    if (trie.split(node)) ++out.splits;
    return;
  }
  // At cidr_max with no prevalent ingress ("try to join", Alg. 1 line 15):
  // nothing to do here — the range keeps monitoring; the join/compaction
  // pass above merges it with its sibling once either classifies or both
  // drain empty.
}

}  // namespace ipd::core
