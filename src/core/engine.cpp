#include "core/engine.hpp"

#include <chrono>
#include <string>

#include "obs/flow_trace.hpp"

namespace ipd::core {

namespace {

constexpr std::array<CyclePhase, kNumCyclePhases> kAllPhases = {
    CyclePhase::Expire, CyclePhase::Classify, CyclePhase::Split,
    CyclePhase::Join, CyclePhase::Compact};

/// The event counted under each phase's `ipd_cycle_events_total` series.
constexpr std::array<const char*, kNumCyclePhases> kPhaseEvent = {
    "drop", "classification", "split", "join", "compaction"};

/// Span names for the per-phase tracer output (string literals: the
/// flight-recorder ring stores the pointers).
constexpr std::array<const char*, kNumCyclePhases> kPhaseSpan = {
    "stage2.expire", "stage2.classify", "stage2.split", "stage2.join",
    "stage2.compact"};

/// Trace-event lane for stage-2 work ("tid" in the Chrome trace model;
/// stage-1 batches use lane 1, see BinnedRunner).
constexpr std::uint32_t kStage2Lane = 2;

constexpr int family_index(net::Family family) noexcept {
  return family == net::Family::V4 ? 0 : 1;
}

constexpr const char* family_label(int index) noexcept {
  return index == 0 ? "v4" : "v6";
}

}  // namespace

const char* to_string(CyclePhase phase) noexcept {
  switch (phase) {
    case CyclePhase::Expire: return "expire";
    case CyclePhase::Classify: return "classify";
    case CyclePhase::Split: return "split";
    case CyclePhase::Join: return "join";
    case CyclePhase::Compact: return "compact";
  }
  return "?";
}

EngineMetrics::EngineMetrics(obs::MetricsRegistry& registry)
    : registry_(&registry) {
  for (int f = 0; f < 2; ++f) {
    const obs::Labels family{{"family", family_label(f)}};
    ingest_flows[f] = &registry.counter(
        "ipd_ingest_flows_total", "Flow records ingested (stage 1)", family);
    ingest_weight[f] = &registry.counter(
        "ipd_ingest_weight_total",
        "Sample weight ingested (flows, or bytes in byte mode)", family);
    trie_nodes[f] = &registry.gauge("ipd_trie_nodes",
                                    "Nodes in the range trie", family);
    trie_leaves[f] = &registry.gauge(
        "ipd_trie_leaves", "Leaves (current IPD ranges) in the trie", family);
    trie_memory[f] = &registry.gauge(
        "ipd_trie_memory_bytes",
        "Exact heap usage of the trie (node pool + per-node tables)", family);
  }
  // Cycle wall time spans sub-millisecond toy runs to multi-second
  // deployment cycles (paper Fig. 20): exponential buckets 100 µs .. ~27 min.
  cycle_seconds = &registry.histogram(
      "ipd_cycle_seconds", "Stage-2 cycle wall time",
      obs::Histogram::exponential_bounds(1e-4, 2.0, 24));
  for (const CyclePhase phase : kAllPhases) {
    const auto i = static_cast<std::size_t>(phase);
    phase_seconds[i] = &registry.histogram(
        "ipd_cycle_phase_seconds", "Stage-2 wall time by phase",
        obs::Histogram::exponential_bounds(1e-5, 2.0, 24),
        {{"phase", to_string(phase)}});
    events[i] = &registry.counter("ipd_cycle_events_total",
                                  "Structural events applied by stage 2",
                                  {{"event", kPhaseEvent[i]}});
  }
  cycles_total =
      &registry.counter("ipd_cycles_total", "Stage-2 cycles executed");
  ranges_classified = &registry.gauge(
      "ipd_ranges", "Leaf ranges by state", {{"state", "classified"}});
  ranges_monitoring = &registry.gauge(
      "ipd_ranges", "Leaf ranges by state", {{"state", "monitoring"}});
  tracked_ips = &registry.gauge(
      "ipd_tracked_ips", "Per-IP entries held by monitoring ranges");
  memory_bytes = &registry.gauge(
      "ipd_memory_bytes",
      "Exact trie heap plus observability-layer heap usage");
}

obs::Counter& EngineMetrics::link_counter(topology::LinkId link) {
  auto [it, inserted] = link_counters_.try_emplace(link.key(), nullptr);
  if (inserted) {
    it->second = &registry_->counter(
        "ipd_ingest_link_flows_total", "Flow records ingested per ingress link",
        {{"router", std::to_string(link.router)},
         {"iface", std::to_string(link.iface)}});
  }
  return *it->second;
}

void EngineMetrics::evict_link_slot(LinkSlot& slot, std::uint64_t new_tag) {
  if (slot.tag != 0) link_overflow_[slot.tag - 1] += slot.count;
  slot.tag = new_tag;
  slot.count = 1;
}

void EngineMetrics::flush_ingest() {
  for (int f = 0; f < 2; ++f) {
    if (pending_flows_[f] != 0) {
      ingest_flows[f]->inc(pending_flows_[f]);
      ingest_weight[f]->inc(pending_weight_[f]);
      pending_flows_[f] = 0;
      pending_weight_[f] = 0;
    }
  }
  for (LinkSlot& slot : link_cache_) {
    if (slot.tag == 0) continue;
    const topology::LinkId link{
        static_cast<topology::RouterId>((slot.tag - 1) >> 16),
        static_cast<topology::InterfaceIndex>((slot.tag - 1) & 0xffff)};
    link_counter(link).inc(slot.count);
    slot.tag = 0;
    slot.count = 0;
  }
  for (const auto& [key, count] : link_overflow_) {
    const topology::LinkId link{static_cast<topology::RouterId>(key >> 16),
                                static_cast<topology::InterfaceIndex>(key & 0xffff)};
    link_counter(link).inc(count);
  }
  link_overflow_.clear();
}

void EngineMetrics::add_ingest_deltas(net::Family family, std::uint64_t flows,
                                      std::uint64_t weight) {
  const int f = family == net::Family::V4 ? 0 : 1;
  ingest_flows[f]->inc(flows);
  ingest_weight[f]->inc(weight);
}

void CycleDeltaLog::push(RangeTransition transition) {
  const std::lock_guard<obs::InstrumentedMutex> lock(mutex_);
  ++total_;
  if (items_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  items_.push_back(std::move(transition));
}

std::vector<RangeTransition> CycleDeltaLog::drain() {
  const std::lock_guard<obs::InstrumentedMutex> lock(mutex_);
  std::vector<RangeTransition> out;
  out.swap(items_);
  return out;
}

std::size_t CycleDeltaLog::size() const {
  const std::lock_guard<obs::InstrumentedMutex> lock(mutex_);
  return items_.size();
}

std::uint64_t CycleDeltaLog::total_recorded() const {
  const std::lock_guard<obs::InstrumentedMutex> lock(mutex_);
  return total_;
}

std::uint64_t CycleDeltaLog::dropped() const {
  const std::lock_guard<obs::InstrumentedMutex> lock(mutex_);
  return dropped_;
}

IpdEngine::IpdEngine(IpdParams params)
    : params_(params), trie4_(net::Family::V4), trie6_(net::Family::V6) {
  params_.validate();
}

void IpdEngine::attach_metrics(obs::MetricsRegistry& registry) {
  metrics_ = std::make_unique<EngineMetrics>(registry);
}

void IpdEngine::on_attach_perf() {
  perf_stage1_ = perf_->phase("stage1.ingest");
  perf_stage2_ = perf_->phase("stage2.cycle");
  for (std::size_t i = 0; i < kNumCyclePhases; ++i) {
    perf_phase_ids_[i] = perf_->phase(kPhaseSpan[i]);
  }
}

void IpdEngine::ingest_batch(
    std::span<const netflow::FlowRecord> records) noexcept {
  const obs::PerfScope scope(perf_, perf_stage1_);
  EngineBase::ingest_batch(records);
}

void IpdEngine::apply_batch(const netflow::FlowBatch& batch) noexcept {
  const std::size_t n = batch.size();
  if (n == 0) return;
  const obs::PerfScope scope(perf_, perf_stage1_);
  // Pass 1: mask every source to cidr_max and partition rows by family.
  batch_masked_.resize(n);
  batch_leaf_.resize(n);
  batch_idx4_.clear();
  batch_idx6_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const net::IpAddress& src = batch.src_ip[i];
    batch_masked_[i] = src.masked(params_.cidr_max(src.family()));
    (src.is_v4() ? batch_idx4_ : batch_idx6_)
        .push_back(static_cast<std::uint32_t>(i));
  }
  // Pass 2: interleaved read-only descents fill the leaf table. Stage 1
  // never splits, so the leaf for row i is the same whether located now or
  // at row i's turn in a sequential loop.
  const auto locate_family = [&](IpdTrie& trie,
                                 const std::vector<std::uint32_t>& idx) {
    if (idx.empty()) return;
    trie.locate_many(
        idx.size(),
        [&](std::size_t k) -> const net::IpAddress& {
          return batch_masked_[idx[k]];
        },
        [&](std::size_t k, RangeNode& leaf) { batch_leaf_[idx[k]] = &leaf; });
  };
  locate_family(trie4_, batch_idx4_);
  locate_family(trie6_, batch_idx6_);
  // Pass 3: aggregates, stats, and traces in arrival order — the exact
  // per-record effect sequence of ingest() — while the Monitoring rows'
  // per-IP probes are queued and run through FlatIpTable::apply_many,
  // whose interleaved probe walks overlap the dependent slot loads that
  // dominate this pass (byte-identity is apply_many's contract). The leaf
  // node lines are prefetched a window ahead for the aggregate bumps.
  const bool bytes_mode = params_.count_mode == CountMode::Bytes;
  constexpr std::size_t kNodeAhead = 32;
  batch_ops_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kNodeAhead < n) {
      __builtin_prefetch(batch_leaf_[i + kNodeAhead], 1, 3);
    }
    const topology::LinkId ingress = batch.ingress[i];
    if (metrics_) metrics_->prefetch_ingest(ingress);
    const net::IpAddress& masked = batch_masked_[i];
    const util::Timestamp ts = batch.ts[i];
    const std::uint64_t weight =
        bytes_mode ? std::max<std::uint64_t>(batch.bytes[i], 1) : 1;
    RangeNode& leaf = *batch_leaf_[i];
    leaf.add_aggregate(ts, ingress, weight);
    if (leaf.state() == RangeNode::State::Monitoring) {
      batch_ops_.push_back(
          {&leaf.ips(), &batch_masked_[i], ts, ingress, weight});
    }
    ++stats_.flows_ingested;
    if (metrics_) metrics_->record_ingest(masked.family(), ingress, weight);
    if (flow_trace_) {
      const std::uint64_t id = obs::FlowTracer::flow_id(ts, masked, ingress);
      if (flow_trace_->sampled(id)) {
        if (flow_trace_synth_decode_) {
          flow_trace_->record(id, obs::FlowHopKind::Decode, ts, masked,
                              ingress);
        }
        flow_trace_->record(id, obs::FlowHopKind::TrieApply, ts, masked,
                            ingress);
      }
    }
  }
  FlatIpTable::apply_many(batch_ops_);
}

void IpdEngine::ingest(util::Timestamp ts, const net::IpAddress& src_ip,
                       topology::LinkId ingress, std::uint64_t weight) noexcept {
  if (metrics_) metrics_->prefetch_ingest(ingress);
  IpdTrie& trie = src_ip.is_v4() ? trie4_ : trie6_;
  const net::IpAddress masked = src_ip.masked(params_.cidr_max(src_ip.family()));
  trie.locate(masked).add_sample(ts, masked, ingress, weight);
  ++stats_.flows_ingested;
  if (metrics_) metrics_->record_ingest(src_ip.family(), ingress, weight);
  if (flow_trace_) {
    const std::uint64_t id = obs::FlowTracer::flow_id(ts, masked, ingress);
    if (flow_trace_->sampled(id)) {
      if (flow_trace_synth_decode_) {
        flow_trace_->record(id, obs::FlowHopKind::Decode, ts, masked, ingress);
      }
      flow_trace_->record(id, obs::FlowHopKind::TrieApply, ts, masked,
                          ingress);
    }
  }
}

CycleStats IpdEngine::run_cycle(util::Timestamp now) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t trace_t0 = tracer_ ? tracer_->now_us() : 0;
  obs::PerfScope perf_scope(perf_, perf_stage2_);
  CycleStats out;
  out.now = now;
  PhaseAccum phases{metrics_ != nullptr || tracer_ != nullptr, {}};
  if (perf_ != nullptr) {
    phases.sampler = perf_->thread_sampler();
    if (phases.sampler != nullptr) phases.enabled = true;
  }
  const CycleSinks sinks{decision_log_, cycle_deltas_};
  cycle_over_trie(trie4_, params_, now, out, phases, sinks);
  cycle_over_trie(trie6_, params_, now, out, phases, sinks);

  // Partition census after all structural changes.
  for (const net::Family family : {net::Family::V4, net::Family::V6}) {
    const IpdTrie& trie = this->trie(family);
    trie.for_each_leaf([&out](const RangeNode& leaf) {
      ++out.ranges_total;
      if (leaf.state() == RangeNode::State::Classified) {
        ++out.ranges_classified;
      } else {
        ++out.ranges_monitoring;
        out.tracked_ips += leaf.ips().size();
      }
    });
    out.memory_bytes += trie.memory_bytes();
  }
  // Honest resource accounting: the observability layers themselves occupy
  // heap. (The runner additionally adds its validation bin buffer.)
  if (metrics_) out.memory_bytes += metrics_->registry().memory_bytes();
  if (decision_log_) out.memory_bytes += decision_log_->memory_bytes();
  if (tracer_) out.memory_bytes += tracer_->memory_bytes();
  if (perf_) out.memory_bytes += perf_->memory_bytes();

  for (std::size_t i = 0; i < kNumCyclePhases; ++i) {
    out.phase_micros[i] = phases.ns[i] / 1000;
  }
  out.cycle_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  ++stats_.cycles_run;
  stats_.total_classifications += out.classifications;
  stats_.total_splits += out.splits;
  stats_.total_joins += out.joins;
  stats_.total_drops += out.drops;
  if (metrics_) publish_cycle_metrics(out, phases);
  if (perf_ != nullptr && phases.sampler != nullptr) {
    for (std::size_t i = 0; i < kNumCyclePhases; ++i) {
      perf_->add_phase_point(perf_phase_ids_[i], phases.perf[i]);
    }
  }
  const bool perf_active = perf_scope.active();
  const obs::PerfReading perf_delta = perf_scope.close();
  if (tracer_) {
    // Phase time is accumulated across the whole tree walk, not contiguous
    // intervals — lay the accumulated durations end to end from the cycle
    // start so they render as a breakdown nested under the cycle span.
    std::int64_t cursor = trace_t0;
    for (std::size_t i = 0; i < kNumCyclePhases; ++i) {
      const std::int64_t dur = phases.ns[i] / 1000;
      tracer_->span(kPhaseSpan[i], cursor, dur, {}, kStage2Lane);
      cursor += dur;
    }
    tracer_->span("stage2.cycle", trace_t0, tracer_->now_us() - trace_t0,
                  {{"classifications", static_cast<double>(out.classifications)},
                   {"splits", static_cast<double>(out.splits)},
                   {"joins", static_cast<double>(out.joins)},
                   {"drops", static_cast<double>(out.drops)}},
                  kStage2Lane);
    // Counter deltas ride a companion span (stage2.cycle already carries
    // its four structural-event args).
    if (perf_active) {
      const auto cycles =
          static_cast<double>(perf_delta[obs::PerfEvent::Cycles]);
      const auto instructions =
          static_cast<double>(perf_delta[obs::PerfEvent::Instructions]);
      tracer_->span(
          "stage2.perf", trace_t0, tracer_->now_us() - trace_t0,
          {{"cycles", cycles},
           {"instructions", instructions},
           {"llc_misses",
            static_cast<double>(perf_delta[obs::PerfEvent::LlcMisses])},
           {"ipc", cycles > 0.0 ? instructions / cycles : 0.0}},
          kStage2Lane);
    }
  }
  return out;
}

void IpdEngine::publish_cycle_metrics(const CycleStats& out,
                                      const PhaseAccum& phases) {
  EngineMetrics& m = *metrics_;
  m.flush_ingest();
  m.cycles_total->inc();
  m.cycle_seconds->observe(static_cast<double>(out.cycle_micros) * 1e-6);
  for (std::size_t i = 0; i < kNumCyclePhases; ++i) {
    m.phase_seconds[i]->observe(static_cast<double>(phases.ns[i]) * 1e-9);
  }
  m.events[static_cast<std::size_t>(CyclePhase::Expire)]->inc(out.drops);
  m.events[static_cast<std::size_t>(CyclePhase::Classify)]->inc(
      out.classifications);
  m.events[static_cast<std::size_t>(CyclePhase::Split)]->inc(out.splits);
  m.events[static_cast<std::size_t>(CyclePhase::Join)]->inc(out.joins);
  m.events[static_cast<std::size_t>(CyclePhase::Compact)]->inc(
      out.compactions);
  for (const net::Family family : {net::Family::V4, net::Family::V6}) {
    const IpdTrie& trie = this->trie(family);
    const int f = family_index(family);
    m.trie_nodes[f]->set(static_cast<double>(trie.node_count()));
    m.trie_leaves[f]->set(static_cast<double>(trie.leaf_count()));
    m.trie_memory[f]->set(static_cast<double>(trie.memory_bytes()));
  }
  m.ranges_classified->set(static_cast<double>(out.ranges_classified));
  m.ranges_monitoring->set(static_cast<double>(out.ranges_monitoring));
  m.tracked_ips->set(static_cast<double>(out.tracked_ips));
  m.memory_bytes->set(static_cast<double>(out.memory_bytes));
}

}  // namespace ipd::core
