// Longest-prefix-match lookup table over IPD output.
//
// Validation and downstream consumers (traffic engineering, dashboards)
// resolve an arbitrary IP to its detected ingress point via this table,
// rebuilt from each (5-minute) snapshot as in §5.1 of the paper.
#pragma once

#include <optional>

#include "core/output.hpp"
#include "net/lpm_trie.hpp"

namespace ipd::core {

class LpmTable {
 public:
  LpmTable() : trie4_(net::Family::V4), trie6_(net::Family::V6) {}

  /// Build from the classified rows of a snapshot.
  static LpmTable from_snapshot(const Snapshot& snapshot);

  void insert(const net::Prefix& prefix, const IngressId& ingress);

  /// Detected ingress for `ip`, or nullopt if unmapped address space.
  std::optional<IngressId> lookup(const net::IpAddress& ip) const;

  /// Detected ingress plus the matching IPD prefix.
  std::optional<std::pair<net::Prefix, IngressId>> lookup_entry(
      const net::IpAddress& ip) const;

  std::size_t size() const noexcept { return trie4_.size() + trie6_.size(); }

  const net::LpmTrie<IngressId>& trie(net::Family family) const noexcept {
    return family == net::Family::V4 ? trie4_ : trie6_;
  }

 private:
  net::LpmTrie<IngressId> trie4_;
  net::LpmTrie<IngressId> trie6_;
};

}  // namespace ipd::core
