// Decision audit trail for the stage-2 lifecycle loop.
//
// Every structural decision the engine takes about a range — classify,
// split, join, demote (classified back to monitoring), expire (a monitoring
// range draining empty), compact — is recorded with the *numbers that drove
// it*: observed samples vs. the n_cidr threshold, the dominant-ingress
// share vs. q, and the quiet age feeding the decay rule. Operators can then
// ask "why was 203.0.113.0/25 split?" against a live process instead of
// re-deriving the answer from aggregate counters.
//
// Storage is a bounded ring: record() overwrites the oldest event once the
// ring is full, and overwritten events are counted (dropped()), never
// silently lost. Decisions only happen in stage 2 (once per cycle per
// range, at most), so a mutex per record is cheap; the stage-1 ingest path
// never touches the log. Reason strings must be string literals — events
// store the pointer, not a copy, so the ring never allocates for them.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/ingress.hpp"
#include "net/prefix.hpp"
#include "obs/lock_stats.hpp"
#include "util/time.hpp"

namespace ipd::core {

/// The range lifecycle transitions of Algorithm 1, stage 2.
enum class DecisionKind : std::uint8_t {
  Classify,  // monitoring -> classified: share >= q with samples >= n_cidr
  Split,     // monitoring split: samples >= n_cidr but no prevalent ingress
  Join,      // classified siblings with the same ingress merged into parent
  Demote,    // classified -> monitoring: decayed away or share fell below q
  Expire,    // monitoring range drained empty by per-IP expiry (e)
  Compact,   // two empty monitoring siblings folded into their parent
};

const char* to_string(DecisionKind kind) noexcept;

/// One recorded decision with its quantitative reason. Field semantics per
/// kind are documented in DESIGN.md §6c ("Decision audit trail"); briefly:
///   samples    total sample count of the range when the decision fired
///   threshold  the bound it was tested against (n_cidr for classify/split,
///              the decayed-drop floor for demote-by-decay, 0 otherwise)
///   share      dominant-ingress share at decision time (vs. q)
///   q          the configured dominance threshold
///   age        seconds since the range last saw traffic (decay/demote)
struct DecisionEvent {
  std::uint64_t seq = 0;  // global sequence number, stamped by record()
  util::Timestamp ts = 0;  // simulated time of the stage-2 cycle
  DecisionKind kind = DecisionKind::Classify;
  net::Prefix prefix;  // the range the decision applied to
  double samples = 0.0;
  double threshold = 0.0;
  double share = 0.0;
  double q = 0.0;
  util::Duration age = 0;
  IngressId ingress;        // classify/join: the winner; demote: the loser
  const char* reason = "";  // static human-readable rule, e.g. "share >= q"
};

/// Render one event as a JSON object (used by /explain and tests).
std::string to_json(const DecisionEvent& event);

class DecisionLog {
 public:
  explicit DecisionLog(std::size_t capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 8192;

  /// Record one event (stamps `seq`). Overwrites the oldest entry when
  /// full. Thread-safe.
  void record(DecisionEvent event);

  std::size_t capacity() const noexcept { return capacity_; }

  /// Events currently held (<= capacity()).
  std::size_t size() const;

  /// Events ever recorded.
  std::uint64_t total_recorded() const;

  /// Events overwritten by the ring (total_recorded() - size()).
  std::uint64_t dropped() const;

  /// All held events, oldest first.
  std::vector<DecisionEvent> snapshot() const;

  /// Held events whose range covers `ip` (the decision history of every
  /// ancestor of the current covering leaf, plus the leaf itself), oldest
  /// first. Cross-family events never match.
  std::vector<DecisionEvent> events_covering(const net::IpAddress& ip) const;

  /// Held events whose range is contained in `within` (drill-down view),
  /// oldest first.
  std::vector<DecisionEvent> events_within(const net::Prefix& within) const;

  /// Rough heap usage (ring slots + bundle interface vectors).
  std::size_t memory_bytes() const;

  /// Drop all held events (total_recorded keeps counting).
  void clear();

 private:
  template <typename Pred>
  std::vector<DecisionEvent> filtered(Pred&& pred) const;

  const std::size_t capacity_;
  mutable obs::InstrumentedMutex mutex_{"decision.log"};
  std::vector<DecisionEvent> ring_;  // capacity_ slots once saturated
  std::uint64_t next_seq_ = 0;       // == total recorded
};

}  // namespace ipd::core
