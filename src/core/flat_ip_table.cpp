#include "core/flat_ip_table.hpp"

#include <cassert>

namespace ipd::core {

std::size_t FlatIpTable::capacity_for(std::size_t n) noexcept {
  if (n == 0) return 0;
  std::size_t cap = kMinCapacity;
  while (cap < 2 * n) cap <<= 1;
  return cap;
}

IpEntry& FlatIpTable::find_or_insert(const net::IpAddress& key) {
  if (4 * (size_ + 1) > 3 * capacity_) {
    rehash(capacity_ == 0 ? kMinCapacity : capacity_ * 2);
  }
  std::size_t i = ideal_slot(key);
  while (slots_[i].used) {
    if (slots_[i].kv.first == key) return slots_[i].kv.second;
    i = (i + 1) & (capacity_ - 1);
  }
  Slot& slot = slots_[i];
  slot.kv.first = key;
  slot.used = true;
  ++size_;
  return slot.kv.second;
}

const IpEntry* FlatIpTable::find(const net::IpAddress& key) const noexcept {
  if (size_ == 0) return nullptr;
  std::size_t i = ideal_slot(key);
  while (slots_[i].used) {
    if (slots_[i].kv.first == key) return &slots_[i].kv.second;
    i = (i + 1) & (capacity_ - 1);
  }
  return nullptr;
}

void FlatIpTable::insert_moved(const net::IpAddress& key, IpEntry&& entry) {
  IpEntry& dst = find_or_insert(key);
  assert(dst.total == 0 && "insert_moved requires an absent key");
  dst = std::move(entry);
}

void FlatIpTable::compact() {
  // Hysteresis: only shrink when at least three quarters of the array
  // would be reclaimed. Expiry trims a few entries per cycle, and a table
  // that shrinks on every trim is regrown by the next minute of ingest —
  // two full copies per leaf per cycle for no retained memory. Mass
  // removals (classify, big expirations) still collapse the table.
  const std::size_t target = capacity_for(size_);
  if (target <= capacity_ / 4) rehash(target);
}

std::size_t FlatIpTable::memory_bytes() const noexcept {
  std::size_t bytes = capacity_ * sizeof(Slot);
  for (const auto& [ip, entry] : *this) {
    (void)ip;
    bytes += entry.counts.heap_bytes();
  }
  return bytes;
}

void FlatIpTable::rehash(std::size_t new_capacity) {
  assert(new_capacity >= capacity_for(size_) || new_capacity == 0);
  Slot* old_slots = slots_;
  const std::size_t old_capacity = capacity_;
  slots_ = new_capacity != 0 ? new Slot[new_capacity] : nullptr;
  capacity_ = new_capacity;
  for (std::size_t i = 0; i < old_capacity; ++i) {
    Slot& src = old_slots[i];
    if (!src.used) continue;
    std::size_t j = ideal_slot(src.kv.first);
    while (slots_[j].used) j = (j + 1) & (capacity_ - 1);
    slots_[j].kv = std::move(src.kv);
    slots_[j].used = true;
  }
  delete[] old_slots;
}

/// Backward-shift deletion at slot `i` (classic tombstone-free open
/// addressing): walk the probe chain after the hole and move back every
/// entry whose ideal slot does not lie cyclically within (hole, entry].
/// The caller adjusts size_.
void FlatIpTable::erase_slot(std::size_t i) noexcept {
  const std::size_t mask = capacity_ - 1;
  for (;;) {
    slots_[i].kv = value_type{};  // releases the entry's spilled counters
    slots_[i].used = false;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (!slots_[j].used) return;
      const std::size_t h = ideal_slot(slots_[j].kv.first);
      const bool reachable =
          i <= j ? (h > i && h <= j) : (h > i || h <= j);
      if (!reachable) {
        slots_[i].kv = std::move(slots_[j].kv);
        slots_[i].used = true;
        i = j;
        break;
      }
    }
  }
}

void FlatIpTable::destroy() noexcept {
  delete[] slots_;
  slots_ = nullptr;
  capacity_ = 0;
  size_ = 0;
}

}  // namespace ipd::core
