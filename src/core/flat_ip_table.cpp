#include "core/flat_ip_table.hpp"

#include <algorithm>
#include <cassert>
#include <memory>
#include <new>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace ipd::core {

std::size_t FlatIpTable::capacity_for(std::size_t n) noexcept {
  if (n == 0) return 0;
  std::size_t cap = kMinCapacity;
  while (cap < 2 * n) cap <<= 1;
  return cap;
}

namespace {

/// Sequential reference semantics for one op (also the tail/fallback path).
void apply_one(const FlatIpTable::ApplyOp& op) {
  IpEntry& entry = op.table->find_or_insert(*op.key);
  if (op.ts > entry.last_seen) entry.last_seen = op.ts;
  entry.add(op.link, op.n);
}

}  // namespace

void FlatIpTable::apply_many(std::span<const ApplyOp> ops) {
  // Chains the out-of-order window can't span: keep this many probe walks
  // in flight. Each visit touches one slot and prefetches the next, so a
  // walk gets (kProbeWalks - 1) other visits' worth of time for its line
  // to arrive.
  constexpr std::size_t kProbeWalks = 16;
  if (ops.size() < 2 * kProbeWalks) {
    for (const ApplyOp& op : ops) apply_one(op);
    return;
  }
  struct Walk {
    FlatIpTable* table;
    const net::IpAddress* key;
    std::size_t slot;
    std::uint32_t op;
  };
  // Misses insert, and insertion order fixes slot placement, growth
  // points, and future chain shapes — so misses are deferred and replayed
  // in span order below. Walk completion order is arbitrary, hence the
  // sort. Steady-state batches are nearly all hits, so this stays empty.
  std::vector<std::uint32_t> deferred;
  Walk walks[kProbeWalks];
  std::size_t next = 0;
  std::size_t active = 0;
  const auto prefetch_slot = [](const Walk& w) {
    const char* p =
        reinterpret_cast<const char*>(&w.table->slots_[w.slot]);
    __builtin_prefetch(p, 1, 3);
    __builtin_prefetch(p + 64, 1, 3);
  };
  // Start the next op's walk in `w`; returns false once ops are drained.
  // Empty tables miss without a walk.
  const auto start = [&](Walk& w) {
    while (next < ops.size()) {
      const std::uint32_t idx = static_cast<std::uint32_t>(next++);
      const ApplyOp& op = ops[idx];
      if (op.table->capacity_ == 0) {
        deferred.push_back(idx);
        continue;
      }
      w.table = op.table;
      w.key = op.key;
      w.slot = op.table->ideal_slot(*op.key);
      w.op = idx;
      prefetch_slot(w);
      return true;
    }
    return false;
  };
  while (active < kProbeWalks && start(walks[active])) ++active;
  while (active > 0) {
    for (std::size_t s = 0; s < active;) {
      Walk& w = walks[s];
      Slot& slot = w.table->slots_[w.slot];
      if (!slot.used) {
        deferred.push_back(w.op);
      } else if (slot.kv.first == *w.key) {
        const ApplyOp& op = ops[w.op];
        IpEntry& entry = slot.kv.second;
        if (op.ts > entry.last_seen) entry.last_seen = op.ts;
        entry.add(op.link, op.n);
      } else {
        w.slot = (w.slot + 1) & (w.table->capacity_ - 1);
        prefetch_slot(w);
        ++s;
        continue;
      }
      if (start(w)) {
        ++s;
      } else {
        walks[s] = walks[--active];  // re-examine the moved walk at s
      }
    }
  }
  std::sort(deferred.begin(), deferred.end());
  for (const std::uint32_t idx : deferred) apply_one(ops[idx]);
}

FlatIpTable::Slot* FlatIpTable::allocate_slots(std::size_t n) {
  const std::size_t bytes = n * sizeof(Slot);
  if (bytes < kHugePageBytes) return new Slot[n];
  void* raw = ::operator new(bytes, std::align_val_t{kHugePageBytes});
#if defined(__linux__)
  // Advisory only: without THP the array just stays on base pages.
  madvise(raw, bytes, MADV_HUGEPAGE);
#endif
  Slot* slots = static_cast<Slot*>(raw);
  std::uninitialized_default_construct_n(slots, n);
  return slots;
}

void FlatIpTable::free_slots(Slot* slots, std::size_t n) noexcept {
  if (slots == nullptr) return;
  if (n * sizeof(Slot) < kHugePageBytes) {
    delete[] slots;
    return;
  }
  std::destroy_n(slots, n);
  ::operator delete(slots, std::align_val_t{kHugePageBytes});
}

IpEntry& FlatIpTable::find_or_insert(const net::IpAddress& key) {
  if (4 * (size_ + 1) > 3 * capacity_) {
    rehash(capacity_ == 0 ? kMinCapacity : capacity_ * 2);
  }
  std::size_t i = ideal_slot(key);
  while (slots_[i].used) {
    if (slots_[i].kv.first == key) return slots_[i].kv.second;
    i = (i + 1) & (capacity_ - 1);
  }
  Slot& slot = slots_[i];
  slot.kv.first = key;
  slot.used = true;
  ++size_;
  return slot.kv.second;
}

const IpEntry* FlatIpTable::find(const net::IpAddress& key) const noexcept {
  if (size_ == 0) return nullptr;
  std::size_t i = ideal_slot(key);
  while (slots_[i].used) {
    if (slots_[i].kv.first == key) return &slots_[i].kv.second;
    i = (i + 1) & (capacity_ - 1);
  }
  return nullptr;
}

void FlatIpTable::insert_moved(const net::IpAddress& key, IpEntry&& entry) {
  IpEntry& dst = find_or_insert(key);
  assert(dst.total == 0 && "insert_moved requires an absent key");
  dst = std::move(entry);
}

void FlatIpTable::compact() {
  // Hysteresis: only shrink when at least three quarters of the array
  // would be reclaimed. Expiry trims a few entries per cycle, and a table
  // that shrinks on every trim is regrown by the next minute of ingest —
  // two full copies per leaf per cycle for no retained memory. Mass
  // removals (classify, big expirations) still collapse the table.
  const std::size_t target = capacity_for(size_);
  if (target <= capacity_ / 4) rehash(target);
}

std::size_t FlatIpTable::memory_bytes() const noexcept {
  std::size_t bytes = capacity_ * sizeof(Slot);
  for (const auto& [ip, entry] : *this) {
    (void)ip;
    bytes += entry.counts.heap_bytes();
  }
  return bytes;
}

void FlatIpTable::rehash(std::size_t new_capacity) {
  assert(new_capacity >= capacity_for(size_) || new_capacity == 0);
  Slot* old_slots = slots_;
  const std::size_t old_capacity = capacity_;
  slots_ = new_capacity != 0 ? allocate_slots(new_capacity) : nullptr;
  capacity_ = new_capacity;
  for (std::size_t i = 0; i < old_capacity; ++i) {
    Slot& src = old_slots[i];
    if (!src.used) continue;
    std::size_t j = ideal_slot(src.kv.first);
    while (slots_[j].used) j = (j + 1) & (capacity_ - 1);
    slots_[j].kv = std::move(src.kv);
    slots_[j].used = true;
  }
  free_slots(old_slots, old_capacity);
}

/// Backward-shift deletion at slot `i` (classic tombstone-free open
/// addressing): walk the probe chain after the hole and move back every
/// entry whose ideal slot does not lie cyclically within (hole, entry].
/// The caller adjusts size_.
void FlatIpTable::erase_slot(std::size_t i) noexcept {
  const std::size_t mask = capacity_ - 1;
  for (;;) {
    slots_[i].kv = value_type{};  // releases the entry's spilled counters
    slots_[i].used = false;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask;
      if (!slots_[j].used) return;
      const std::size_t h = ideal_slot(slots_[j].kv.first);
      const bool reachable =
          i <= j ? (h > i && h <= j) : (h > i || h <= j);
      if (!reachable) {
        slots_[i].kv = std::move(slots_[j].kv);
        slots_[i].used = true;
        i = j;
        break;
      }
    }
  }
}

void FlatIpTable::destroy() noexcept {
  free_slots(slots_, capacity_);
  slots_ = nullptr;
  capacity_ = 0;
  size_ = 0;
}

}  // namespace ipd::core
