// IPD algorithm parameters (paper Table 1).
//
//   cidr_max        /28 (IPv4), /48 (IPv6) — max. IPD prefix length
//   n_cidr_factor   64, 24 — minimal sample factor;
//                   n_cidr = factor * sqrt(2^(bits_eff - len))
//   q               0.95 — error margin (dominance threshold)
//   t               60 s — time bucket length
//   e               120 s — expiration time
//   decay           1 - 0.9 / ((age/t) + 1) — shrink factor for counters of
//                   classified ranges that stopped receiving traffic
//
// For IPv6 the paper keeps the formula's exponent base implicit; we use an
// effective 64-bit span (2^(64-len)) so thresholds stay finite — documented
// as a substitution in DESIGN.md.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "net/ip_address.hpp"
#include "util/time.hpp"

namespace ipd::core {

/// What a "sample" is (paper §3.1, design choice 2). The deployment counts
/// flows — byte counters overflow too quickly on high-capacity links and
/// bigint arithmetic slowed everything down; flow and byte counts correlate
/// strongly (0.82 in their traffic). Byte mode is provided for deployments
/// with other requirements, exactly as the paper suggests; sample
/// thresholds (n_cidr) must then be calibrated in bytes.
enum class CountMode : std::uint8_t { Flows, Bytes };

struct IpdParams {
  int cidr_max4 = 28;           // max IPD prefix length, IPv4
  int cidr_max6 = 48;           // max IPD prefix length, IPv6
  double ncidr_factor4 = 64.0;  // minimal sample factor, IPv4
  double ncidr_factor6 = 24.0;  // minimal sample factor, IPv6
  double q = 0.95;              // dominance threshold (1 - error margin)
  util::Duration t = 60;        // time bucket length (stage-2 cadence), s
  util::Duration e = 120;       // expiration time for per-IP state, s

  // Lower bound on n_cidr regardless of the formula. The deployment's
  // absolute thresholds are large (factor 64 at 32M flows/min); simulations
  // running at a fraction of that volume scale the factors down and use
  // this floor to keep tiny ranges from classifying on a handful of
  // samples. 0 = paper-faithful (no floor).
  double ncidr_floor = 0.0;

  // Bundle detection (paper: interfaces of one router over which traffic is
  // evenly balanced are classified as one logical ingress).
  bool enable_bundles = true;
  double bundle_member_min_share = 0.10;  // of the router's traffic

  // Joining of same-ingress sibling ranges ("adjacent ranges may also be
  // joined"). Disabling is only useful for ablation studies: the partition
  // then monotonically fragments toward cidr_max.
  bool enable_joins = true;

  // Flow- vs byte-based sample counting (see CountMode).
  CountMode count_mode = CountMode::Flows;

  // Drop rules for quiet classified ranges ("ranges are quickly removed
  // from classification when no new traffic is received", §3.2): a range is
  // dropped once its decayed counters fall below min_keep_samples or below
  // drop_below_ncidr_fraction of its own n_cidr threshold, or — as a hard
  // bound — once it has been quiet for drop_after seconds.
  double min_keep_samples = 1.0;
  double drop_below_ncidr_fraction = 0.5;
  util::Duration drop_after = 1200;

  /// Validate invariants; throws std::invalid_argument on nonsense.
  void validate() const;

  /// Effective bit span used by the n_cidr law (32 for v4, 64 for v6).
  static constexpr int effective_bits(net::Family family) noexcept {
    return family == net::Family::V4 ? 32 : 64;
  }

  int cidr_max(net::Family family) const noexcept {
    return family == net::Family::V4 ? cidr_max4 : cidr_max6;
  }

  double ncidr_factor(net::Family family) const noexcept {
    return family == net::Family::V4 ? ncidr_factor4 : ncidr_factor6;
  }

  /// Minimum sample count required before a range of length `len` may be
  /// classified or split: factor * sqrt(2^(bits_eff - len)).
  double n_cidr(net::Family family, int len) const noexcept {
    const int span = effective_bits(family) - len;
    const double formula =
        ncidr_factor(family) * std::exp2(static_cast<double>(span) / 2.0);
    return formula > ncidr_floor ? formula : ncidr_floor;
  }

  /// Decay factor for a classified range whose last traffic is `age`
  /// seconds old: 1 - 0.9 / ((age/t) + 1). Applied multiplicatively each
  /// stage-2 cycle while the range stays quiet, so counters collapse fast
  /// at first and the range is dropped once they fall below
  /// `min_keep_samples`.
  double decay_factor(util::Duration age) const noexcept {
    const double ratio = static_cast<double>(age) / static_cast<double>(t);
    return 1.0 - 0.9 / (ratio + 1.0);
  }
};

}  // namespace ipd::core
