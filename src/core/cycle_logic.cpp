#include "core/cycle_logic.hpp"

namespace ipd::core {

namespace {

/// A phase boundary: wall clock plus (when a sampler is wired) an rdpmc
/// counter snapshot, so phase attribution costs two userspace reads — no
/// syscalls — per boundary.
struct Mark {
  std::int64_t ns = 0;
  obs::PerfPoint perf{};
  bool perf_ok = false;
};

inline Mark mark_now(const PhaseAccum& phases) noexcept {
  Mark mark;
  if (phases.enabled) {
    mark.ns = obs::monotonic_ns();
    if (phases.sampler != nullptr) {
      mark.perf_ok = phases.sampler->read(mark.perf);
    }
  }
  return mark;
}

inline void charge_to(PhaseAccum& phases, CyclePhase phase,
                      const Mark& from) noexcept {
  if (!phases.enabled) return;
  const auto i = static_cast<std::size_t>(phase);
  phases.ns[i] += obs::monotonic_ns() - from.ns;
  if (from.perf_ok) {
    obs::PerfPoint now{};
    if (phases.sampler->read(now)) {
      phases.perf[i].cycles += now.cycles - from.perf.cycles;
      phases.perf[i].instructions += now.instructions - from.perf.instructions;
      phases.perf[i].llc_misses += now.llc_misses - from.perf.llc_misses;
    }
  }
}

void handle_leaf(IpdTrie& trie, RangeNode& node, const IpdParams& params,
                 util::Timestamp now, CycleStats& out, PhaseAccum& phases,
                 const CycleSinks& sinks) {
  const net::Family family = trie.family();
  const auto charge = [&phases](CyclePhase phase, const Mark& from) {
    charge_to(phases, phase, from);
  };

  const auto record_decision = [&sinks, &params, &node, now](
                                   DecisionKind kind, double samples,
                                   double threshold, double share,
                                   util::Duration age, const IngressId& ingress,
                                   const char* reason) {
    DecisionEvent event;
    event.ts = now;
    event.kind = kind;
    event.prefix = node.prefix();
    event.samples = samples;
    event.threshold = threshold;
    event.share = share;
    event.q = params.q;
    event.age = age;
    event.ingress = ingress;
    event.reason = reason;
    sinks.decision_log->record(std::move(event));
  };

  const auto record_transition = [&sinks, &node, now](
                                     RangeTransition::Kind kind,
                                     const IngressId& ingress, double share,
                                     double samples) {
    RangeTransition t;
    t.ts = now;
    t.kind = kind;
    t.prefix = node.prefix();
    t.ingress = ingress;
    t.share = share;
    t.samples = samples;
    sinks.cycle_deltas->push(std::move(t));
  };

  if (node.state() == RangeNode::State::Classified) {
    // Quiet classified ranges decay; once the counters are negligible —
    // or the range has been quiet for too long — it is dropped so stale
    // mappings disappear quickly.
    const Mark t0 = mark_now(phases);
    const util::Duration age = now - node.last_update();
    if (age > params.e) {
      node.counts().scale(params.decay_factor(age));
      const double floor = std::max(
          params.min_keep_samples,
          params.drop_below_ncidr_fraction *
              params.n_cidr(family, node.prefix().length()));
      if (node.counts().total() < floor || age > params.drop_after) {
        if (sinks.decision_log) {
          record_decision(DecisionKind::Demote, node.counts().total(), floor,
                          node.counts().share_of(node.ingress()), age,
                          node.ingress(),
                          node.counts().total() < floor
                              ? "decayed counters fell below the drop floor"
                              : "quiet longer than drop_after");
        }
        if (sinks.cycle_deltas) {
          record_transition(RangeTransition::Kind::Demote, node.ingress(),
                            node.counts().share_of(node.ingress()),
                            node.counts().total());
        }
        node.reset_to_monitoring();
        ++out.drops;
        charge(CyclePhase::Expire, t0);
        return;
      }
    }
    // "if prevalent ingress still valid (s_ingress >= q) then keep".
    if (node.counts().share_of(node.ingress()) < params.q) {
      if (sinks.decision_log) {
        record_decision(DecisionKind::Demote, node.counts().total(), 0.0,
                        node.counts().share_of(node.ingress()), age,
                        node.ingress(), "dominant-ingress share fell below q");
      }
      if (sinks.cycle_deltas) {
        record_transition(RangeTransition::Kind::Demote, node.ingress(),
                          node.counts().share_of(node.ingress()),
                          node.counts().total());
      }
      node.reset_to_monitoring();
      ++out.drops;
    }
    charge(CyclePhase::Expire, t0);
    return;
  }

  // Monitoring leaf: expire per-IP state older than e seconds.
  Mark t0 = mark_now(phases);
  const std::size_t ips_before = sinks.decision_log ? node.ips().size() : 0;
  node.expire_before(now - params.e);
  if (sinks.decision_log && ips_before > 0 && node.ips().empty()) {
    record_decision(DecisionKind::Expire, 0.0, 0.0, 0.0, params.e,
                    IngressId{}, "all per-IP state older than e; range empty");
  }
  charge(CyclePhase::Expire, t0);

  const int len = node.prefix().length();
  const double n_cidr = params.n_cidr(family, len);
  if (node.counts().total() < n_cidr) return;  // not enough data yet

  t0 = mark_now(phases);
  if (const auto prevalent = find_prevalent(params, node.counts())) {
    if (sinks.decision_log) {
      record_decision(DecisionKind::Classify, node.counts().total(), n_cidr,
                      node.counts().share_of(*prevalent), 0, *prevalent,
                      "dominant-ingress share >= q with samples >= n_cidr");
    }
    if (sinks.cycle_deltas) {
      record_transition(RangeTransition::Kind::Classify, *prevalent,
                        node.counts().share_of(*prevalent),
                        node.counts().total());
    }
    node.classify(*prevalent, now);
    ++out.classifications;
    charge(CyclePhase::Classify, t0);
    return;
  }
  charge(CyclePhase::Classify, t0);

  if (len < params.cidr_max(family)) {
    t0 = mark_now(phases);
    const double samples = node.counts().total();
    const double top_share =
        samples > 0.0
            ? node.counts().count_for(node.counts().top_link()) / samples
            : 0.0;
    if (trie.split(node)) {
      ++out.splits;
      if (sinks.decision_log) {
        record_decision(DecisionKind::Split, samples, n_cidr, top_share, 0,
                        IngressId{},
                        "samples >= n_cidr but no prevalent ingress");
      }
    }
    charge(CyclePhase::Split, t0);
    return;
  }
  // At cidr_max with no prevalent ingress ("try to join", Alg. 1 line 15):
  // nothing to do here — the range keeps monitoring; the join/compaction
  // pass above merges it with its sibling once either classifies or both
  // drain empty.
}

}  // namespace

std::optional<IngressId> find_prevalent(const IpdParams& params,
                                        const IngressCounts& counts) {
  const double total = counts.total();
  if (total <= 0.0) return std::nullopt;

  const topology::LinkId top = counts.top_link();
  if (counts.count_for(top) / total >= params.q) return IngressId(top);

  if (!params.enable_bundles) return std::nullopt;

  // Bundle check: one router's interfaces jointly prevalent. The top link's
  // router is the only candidate that can reach q if the top link alone
  // cannot (any other router has an even smaller maximum share only when
  // its aggregate is larger — so scan all routers to be exact).
  for (const topology::RouterId router : counts.routers()) {
    const double router_count = counts.count_for_router(router);
    if (router_count / total < params.q) continue;
    const auto ifaces = counts.router_interfaces(router);
    std::vector<topology::InterfaceIndex> members;
    for (const auto& [iface, c] : ifaces) {
      if (c >= params.bundle_member_min_share * router_count) {
        members.push_back(iface);
      }
    }
    if (members.size() >= 2) return IngressId(router, std::move(members));
    // A single qualifying member means the rest of the router's traffic is
    // spread over below-threshold interfaces; treat as that single link.
    if (members.size() == 1) {
      return IngressId(topology::LinkId{router, members.front()});
    }
  }
  return std::nullopt;
}

void join_or_compact(IpdTrie& trie, RangeNode& node, const IpdParams& params,
                     util::Timestamp now, CycleStats& out, PhaseAccum& phases,
                     const CycleSinks& sinks) {
  // Children were processed first: join same-ingress classified siblings,
  // fold away empty monitoring siblings.
  Mark t = mark_now(phases);
  if (params.enable_joins && trie.join_children(node)) {
    ++out.joins;
    if (sinks.decision_log) {
      DecisionEvent event;
      event.ts = now;
      event.kind = DecisionKind::Join;
      event.prefix = node.prefix();
      event.samples = node.counts().total();
      event.share = node.counts().share_of(node.ingress());
      event.q = params.q;
      event.ingress = node.ingress();
      event.reason = "sibling ranges classified to the same ingress";
      sinks.decision_log->record(std::move(event));
    }
    charge_to(phases, CyclePhase::Join, t);
    return;
  }
  if (phases.enabled) {
    charge_to(phases, CyclePhase::Join, t);
    t = mark_now(phases);
  }
  if (trie.compact_children(node)) {
    ++out.compactions;
    if (sinks.decision_log) {
      DecisionEvent event;
      event.ts = now;
      event.kind = DecisionKind::Compact;
      event.prefix = node.prefix();
      event.reason = "both monitoring children drained empty";
      sinks.decision_log->record(std::move(event));
    }
  }
  charge_to(phases, CyclePhase::Compact, t);
}

void cycle_over_trie(IpdTrie& trie, const IpdParams& params,
                     util::Timestamp now, CycleStats& out, PhaseAccum& phases,
                     const CycleSinks& sinks) {
  cycle_over_subtree(trie, trie.root(), params, now, out, phases, sinks);
}

void cycle_over_subtree(IpdTrie& trie, RangeNode& subtree_root,
                        const IpdParams& params, util::Timestamp now,
                        CycleStats& out, PhaseAccum& phases,
                        const CycleSinks& sinks) {
  trie.post_order_from(subtree_root, [&](RangeNode& node) {
    if (node.state() == RangeNode::State::Internal) {
      join_or_compact(trie, node, params, now, out, phases, sinks);
      return;
    }
    handle_leaf(trie, node, params, now, out, phases, sinks);
  });
}

}  // namespace ipd::core
