// Versioned engine snapshot / warm restart.
//
// A snapshot captures the *complete* algorithm state of an engine —
// per-family trie structure with exact arena layout (node indices, free
// chain, high-water mark), every leaf's FlatIpTable with exact slot
// placement and capacity, SmallVec ingress counters with exact
// capacities and bit-exact float totals, lifetime stats, and the runner
// clock — such that a restored engine continues *byte-identically* to
// the uninterrupted run: same InstanceOutput rows, same per-cycle
// transition stream, same memory_bytes(). That determinism claim is
// enforced by test_snapshot_differential.
//
// Restore is engine-shape-agnostic: a snapshot taken from a sequential
// IpdEngine restores into a ShardedEngine of any shard count and vice
// versa, because both engines operate one physical trie per family — the
// sharded engine just rebuilds its cut over the restored trie
// (DESIGN.md §10 "re-shard semantics").
//
// Fail-closed: restore parses and validates the entire file into staged
// structures (fresh node pools, decoded tables) and only then swaps them
// into the engine. Any magic/version/checksum/structural failure throws
// util::SnapshotError and leaves the engine exactly as it was.
//
// File container: see util/snapshot_io.hpp. Sections used here:
//   1 meta    — engine kind, clock, lifetime stats, build info, params hash
//   2 params  — canonical IpdParams encoding (its crc64 is the params hash)
//   3 trie v4 — arena shape + node records
//   4 trie v6
//   5 lpm     — classified (prefix, ingress) rows, address order, so a
//               restored process can answer ingress queries before its
//               first cycle without decoding the tries
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine_base.hpp"
#include "obs/metrics.hpp"
#include "util/snapshot_io.hpp"
#include "util/time.hpp"

namespace ipd::core {

/// Bump on any incompatible change to the section payload encodings.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

// Section ids within the snapshot container.
inline constexpr std::uint32_t kSectionMeta = 1;
inline constexpr std::uint32_t kSectionParams = 2;
inline constexpr std::uint32_t kSectionTrieV4 = 3;
inline constexpr std::uint32_t kSectionTrieV6 = 4;
inline constexpr std::uint32_t kSectionLpm = 5;

/// The runner's position in simulated time at snapshot instant: resuming
/// a BinnedRunner from these values continues the cycle/snapshot cadence
/// exactly where the donor left off.
struct SnapshotClock {
  util::Timestamp saved_at = 0;       // bin boundary the snapshot was cut at
  util::Timestamp next_cycle = 0;     // donor runner's next stage-2 cycle
  util::Timestamp next_snapshot = 0;  // donor runner's next 5-min bin

  friend bool operator==(const SnapshotClock&, const SnapshotClock&) = default;
};

/// Header-level description of a snapshot, readable without decoding the
/// trie payload (the /snapshot endpoint and `ipd_replay` print this).
struct SnapshotInfo {
  std::uint32_t format_version = 0;
  std::string build_info;           // writer's build, informational only
  std::uint64_t params_hash = 0;    // crc64 of the canonical params encoding
  bool sharded = false;             // donor engine shape, informational
  int shard_bits = 0;
  SnapshotClock clock;
  EngineStats stats;
  std::uint64_t lpm_rows = 0;       // classified ranges at snapshot time
};

/// One classified range, as served by the snapshot's LPM section.
struct LpmRow {
  net::Prefix prefix;
  IngressId ingress;
};

/// Canonical byte encoding of the params (snapshot section 2). Two params
/// structs are equal iff their encodings are equal, so restore compares
/// encodings directly and the params hash is the encoding's crc64.
std::string encode_params(const IpdParams& params);
std::uint64_t params_hash(const IpdParams& params);

/// Serialize the full engine state. The engine must be quiescent or
/// internally lockable (the sharded engine is locked exclusively for the
/// duration; the sequential engine relies on the caller's serialization,
/// same contract as run_cycle). Accepts IpdEngine and ShardedEngine;
/// throws SnapshotError(kBadValue) for other EngineBase implementations.
std::string save_snapshot(const EngineBase& engine, const SnapshotClock& clock);

/// save_snapshot + atomic file publish (tmp + fsync + rename).
void save_snapshot_file(const std::string& path, const EngineBase& engine,
                        const SnapshotClock& clock);

/// Decode and validate header + meta only (cheap; no trie decode).
SnapshotInfo read_snapshot_info(std::string_view data);
SnapshotInfo read_snapshot_info_file(const std::string& path);

/// Decode the LPM section: every classified range with its ingress, in
/// address order (v4 then v6).
std::vector<LpmRow> read_snapshot_lpm(std::string_view data);

/// Replace `engine`'s algorithm state with the snapshot's. The engine
/// must have been constructed with byte-identical params (compared via
/// encode_params; kParamsMismatch otherwise) but may have any shape —
/// restoring an N-shard snapshot into an M-shard engine rebuilds the cut
/// over the restored tries. Fully fail-closed: on any SnapshotError the
/// engine is untouched. Returns the donor's clock for runner resume.
SnapshotClock restore_snapshot(EngineBase& engine, std::string_view data);
SnapshotClock restore_snapshot_file(EngineBase& engine,
                                    const std::string& path);

/// Mutex-guarded snapshot lifecycle state + its metric surface
/// (ipd_snapshot_*). One instance per process, shared by whatever does
/// the saving (ipd_replay) and whatever reports (/snapshot endpoint,
/// TSDB, the snapshot-age health rule).
class SnapshotTelemetry {
 public:
  struct State {
    std::uint64_t saves = 0;
    std::uint64_t restores = 0;
    std::uint64_t errors = 0;
    std::uint64_t last_bytes = 0;
    double last_save_seconds = 0.0;
    double last_restore_seconds = 0.0;
    util::Timestamp last_saved_at = 0;  // data time of the newest snapshot
    double age_seconds = -1.0;          // -1 until a snapshot exists
    std::string path;                   // where snapshots are written
    std::string last_error;
  };

  /// Create the ipd_snapshot_* instruments in `registry`; updates flow
  /// through from then on. Call before the first record_*.
  void bind(obs::MetricsRegistry& registry);

  void set_path(std::string path);
  void record_save(std::uint64_t bytes, double seconds,
                   util::Timestamp data_ts);
  void record_restore(std::uint64_t bytes, double seconds,
                      util::Timestamp data_ts);
  void record_error(const std::string& what);

  /// Refresh ipd_snapshot_age_seconds against the current data time
  /// (called from the runner's per-bin metrics hook so the health rule
  /// sees a live value).
  void update_age(util::Timestamp now_data_ts);

  State state() const;

 private:
  mutable std::mutex mutex_;
  State state_;
  obs::Counter* saves_total_ = nullptr;
  obs::Counter* restores_total_ = nullptr;
  obs::Counter* errors_total_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;
  obs::Gauge* age_gauge_ = nullptr;
  obs::Histogram* save_seconds_ = nullptr;
};

}  // namespace ipd::core
