// IPD output snapshot — the paper's raw output rows (Table 3):
//
//   timestamp  ip  s_ingress  s_ipcount  n_cidr  range  ingress(breakdown)
//
// A snapshot covers all current leaves; classified rows carry the prevalent
// ingress, monitoring rows the current top candidate. The deployment's
// stage-2 consumers filter to prevalent (classified) rows only.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/ingress.hpp"
#include "core/trie.hpp"
#include "net/prefix.hpp"
#include "topology/topology.hpp"
#include "util/time.hpp"

namespace ipd::core {

struct RangeOutput {
  util::Timestamp ts = 0;
  bool classified = false;
  double s_ingress = 0.0;  // confidence: share of the prevalent/top ingress
  double s_ipcount = 0.0;  // total samples held for the range
  double n_cidr = 0.0;     // the range's classification threshold
  net::Prefix range;
  IngressId ingress;  // prevalent (classified) or top candidate
  // All ingress links and their counts, descending (Table 3 parentheses).
  std::vector<std::pair<topology::LinkId, double>> breakdown;
};

using Snapshot = std::vector<RangeOutput>;

class EngineBase;

/// Extract the current ranges of both address families (works on any
/// engine implementation; leaves come back in address order, so the same
/// partition yields the same snapshot regardless of engine).
/// If `classified_only`, monitoring ranges are skipped (the deployment's
/// stage-2 filter).
Snapshot take_snapshot(const EngineBase& engine, util::Timestamp ts,
                       bool classified_only = false);

/// One Table-3-style text line. Uses paper naming ("C2-R30.1") when a
/// topology is supplied, raw ids otherwise.
std::string format_row(const RangeOutput& row,
                       const topology::Topology* topo = nullptr);

/// Parse a raw-id (non-topology) line produced by format_row back into a
/// RangeOutput. The deployment stores years of such rows; this enables
/// offline tooling over stored output. Throws std::invalid_argument on
/// malformed input. The `classified` flag is restored from the confidence
/// annotation (rows written with classified=false lose that distinction
/// and are re-marked classified when s_ingress >= q_hint).
RangeOutput parse_row(std::string_view line, double q_hint = 0.95);

}  // namespace ipd::core
