// Stage-2 cycle logic, factored out of the engines.
//
// One cycle over one trie is a pure function of (trie state, params, now):
// the post-order walk that expires/decays, classifies, splits, drops,
// joins and compacts exactly as Algorithm 1 describes. Both IpdEngine
// (whole-family tries) and ShardedEngine (per-shard subtrees plus a spine
// merge pass) call the same functions, which is what makes the
// determinism-differential test meaningful: there is a single copy of the
// decision logic, applied to identical per-node operation sequences.
#pragma once

#include <optional>

#include "core/engine_base.hpp"
#include "core/params.hpp"
#include "core/trie.hpp"
#include "obs/perf_counters.hpp"

namespace ipd::core {

/// Per-cycle phase-time accumulator (nanoseconds); timing is skipped
/// entirely when `enabled` is false (neither metrics nor a tracer).
struct PhaseAccum {
  bool enabled = false;
  std::array<std::int64_t, kNumCyclePhases> ns{};
  /// Optional userspace (rdpmc) counter sampler for per-phase attribution
  /// of cycles/instructions/LLC misses. Thread-affine: the engine sets it
  /// on the thread that runs the walk (each sharded worker points at its
  /// own). Null — the common case — skips counter sampling entirely.
  const obs::PerfThreadSampler* sampler = nullptr;
  std::array<obs::PerfPoint, kNumCyclePhases> perf{};
};

/// Optional decision/transition sinks for one cycle pass. The sharded
/// engine points these at per-shard buffers during the parallel section
/// and drains them into the globally attached logs in shard order.
struct CycleSinks {
  DecisionLog* decision_log = nullptr;
  CycleDeltaLog* cycle_deltas = nullptr;
};

/// Dominance test of stage 2: the classified ingress if `counts` has a
/// single prevalent ingress point (share >= q), possibly a bundle of
/// interfaces on one router.
std::optional<IngressId> find_prevalent(const IpdParams& params,
                                        const IngressCounts& counts);

/// The join/compact step for one Internal node whose children are already
/// final for this cycle. Used by cycle_over_trie on every internal node
/// and by the sharded engine's cross-shard merge on spine nodes.
void join_or_compact(IpdTrie& trie, RangeNode& node, const IpdParams& params,
                     util::Timestamp now, CycleStats& out, PhaseAccum& phases,
                     const CycleSinks& sinks);

/// One full stage-2 pass over `trie` (Algorithm 1 stage 2): post-order
/// walk doing expire/decay/drop, classify, split, join, compact. Event
/// totals accumulate into `out`, per-phase wall time into `phases`.
void cycle_over_trie(IpdTrie& trie, const IpdParams& params,
                     util::Timestamp now, CycleStats& out, PhaseAccum& phases,
                     const CycleSinks& sinks);

/// The same pass restricted to the subtree rooted at `node`. All structural
/// mutation stays inside the subtree, so the sharded engine runs this
/// concurrently on the disjoint subtrees of its cut and follows up with
/// join_or_compact over the spine above them.
void cycle_over_subtree(IpdTrie& trie, RangeNode& node, const IpdParams& params,
                        util::Timestamp now, CycleStats& out,
                        PhaseAccum& phases, const CycleSinks& sinks);

}  // namespace ipd::core
