#include "core/params.hpp"

namespace ipd::core {

void IpdParams::validate() const {
  if (cidr_max4 < 1 || cidr_max4 > 32) {
    throw std::invalid_argument("cidr_max4 out of [1,32]");
  }
  if (cidr_max6 < 1 || cidr_max6 > 64) {
    throw std::invalid_argument("cidr_max6 out of [1,64]");
  }
  if (ncidr_factor4 <= 0.0 || ncidr_factor6 <= 0.0) {
    throw std::invalid_argument("n_cidr factors must be positive");
  }
  // q <= 0.5 permits two simultaneously 'dominant' ingress points; the
  // paper's factor screening marks such configurations as failing.
  if (q <= 0.5 || q > 1.0) {
    throw std::invalid_argument("q must be in (0.5, 1.0]");
  }
  if (t <= 0) throw std::invalid_argument("t must be positive");
  if (e < t) throw std::invalid_argument("e must be >= t");
  if (bundle_member_min_share <= 0.0 || bundle_member_min_share > 0.5) {
    throw std::invalid_argument("bundle_member_min_share out of (0, 0.5]");
  }
  if (drop_below_ncidr_fraction < 0.0 || drop_below_ncidr_fraction >= 1.0) {
    throw std::invalid_argument("drop_below_ncidr_fraction out of [0, 1)");
  }
  if (drop_after < e) throw std::invalid_argument("drop_after must be >= e");
}

}  // namespace ipd::core
