#include "core/decision_log.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace ipd::core {

const char* to_string(DecisionKind kind) noexcept {
  switch (kind) {
    case DecisionKind::Classify: return "classify";
    case DecisionKind::Split: return "split";
    case DecisionKind::Join: return "join";
    case DecisionKind::Demote: return "demote";
    case DecisionKind::Expire: return "expire";
    case DecisionKind::Compact: return "compact";
  }
  return "?";
}

std::string to_json(const DecisionEvent& event) {
  std::string out = util::format(
      "{\"seq\":%llu,\"ts\":%lld,\"kind\":\"%s\",\"range\":\"%s\","
      "\"samples\":%.6g,\"threshold\":%.6g,\"share\":%.6g,\"q\":%.6g,"
      "\"age_s\":%lld",
      static_cast<unsigned long long>(event.seq),
      static_cast<long long>(event.ts), to_string(event.kind),
      event.prefix.to_string().c_str(), event.samples, event.threshold,
      event.share, event.q, static_cast<long long>(event.age));
  if (event.ingress.valid()) {
    out += ",\"ingress\":\"" + util::json_escape(event.ingress.to_string()) +
           "\"";
  }
  out += ",\"reason\":\"" + util::json_escape(event.reason) + "\"}";
  return out;
}

DecisionLog::DecisionLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void DecisionLog::record(DecisionEvent event) {
  const std::lock_guard<obs::InstrumentedMutex> lock(mutex_);
  event.seq = next_seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[static_cast<std::size_t>(event.seq % capacity_)] = std::move(event);
  }
}

std::size_t DecisionLog::size() const {
  const std::lock_guard<obs::InstrumentedMutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t DecisionLog::total_recorded() const {
  const std::lock_guard<obs::InstrumentedMutex> lock(mutex_);
  return next_seq_;
}

std::uint64_t DecisionLog::dropped() const {
  const std::lock_guard<obs::InstrumentedMutex> lock(mutex_);
  return next_seq_ - ring_.size();
}

template <typename Pred>
std::vector<DecisionEvent> DecisionLog::filtered(Pred&& pred) const {
  std::vector<DecisionEvent> out;
  {
    const std::lock_guard<obs::InstrumentedMutex> lock(mutex_);
    for (const DecisionEvent& event : ring_) {
      if (pred(event)) out.push_back(event);
    }
  }
  // The ring is a rotating window: slot order is not age order once it has
  // wrapped. Sequence numbers are, always.
  std::sort(out.begin(), out.end(),
            [](const DecisionEvent& a, const DecisionEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<DecisionEvent> DecisionLog::snapshot() const {
  return filtered([](const DecisionEvent&) { return true; });
}

std::vector<DecisionEvent> DecisionLog::events_covering(
    const net::IpAddress& ip) const {
  return filtered(
      [&ip](const DecisionEvent& event) { return event.prefix.contains(ip); });
}

std::vector<DecisionEvent> DecisionLog::events_within(
    const net::Prefix& within) const {
  return filtered([&within](const DecisionEvent& event) {
    return within.contains(event.prefix);
  });
}

std::size_t DecisionLog::memory_bytes() const {
  const std::lock_guard<obs::InstrumentedMutex> lock(mutex_);
  std::size_t bytes = sizeof(DecisionLog) + ring_.capacity() * sizeof(DecisionEvent);
  for (const DecisionEvent& event : ring_) {
    bytes += event.ingress.ifaces.capacity() * sizeof(topology::InterfaceIndex);
  }
  return bytes;
}

void DecisionLog::clear() {
  const std::lock_guard<obs::InstrumentedMutex> lock(mutex_);
  ring_.clear();
}

}  // namespace ipd::core
