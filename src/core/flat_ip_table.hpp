// Flat open-addressing table for per-IP detail state.
//
// Every Monitoring leaf keeps one of these instead of a node-based
// std::unordered_map: all entries live in a single contiguous slot array
// (linear probing, power-of-two capacity), so the stage-2 expire walk and
// split redistribution stream through one allocation instead of chasing a
// heap node per IP. Deletion uses backward-shift (no tombstones), so probe
// chains never rot; compact() re-homes the survivors into the smallest
// fitting array, which is what the cycle uses where the old code resorted
// to `clear(); rehash(0)` hacks. An empty table owns no heap at all —
// classify()/reset really do return the memory.
//
// Iteration order is slot order: a pure function of the insert/erase
// sequence, identical between the sequential and sharded engines (both
// apply the same per-leaf operation sequence), so the determinism
// differential holds. Aggregate rebuilds feed IngressCounts, which is
// canonically ordered anyway.
//
// memory_bytes() is exact: capacity * sizeof(Slot) plus every entry's
// spilled counter storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "net/ip_address.hpp"
#include "topology/ids.hpp"
#include "util/small_vec.hpp"
#include "util/time.hpp"

namespace ipd::core {

struct SnapshotAccess;  // snapshot serializer; see trie.hpp

/// Per-masked-source-IP state inside a Monitoring range.
struct IpEntry {
  util::Timestamp last_seen = 0;
  std::uint64_t total = 0;
  // Per-ingress flow counts; nearly always one or two links (paper §3.2),
  // so two pairs stay inline with the entry.
  util::SmallVec<util::PodPair<topology::LinkId, std::uint64_t>, 2> counts;

  void add(topology::LinkId link, std::uint64_t n = 1) {
    total += n;
    for (auto& [l, c] : counts) {
      if (l == link) {
        c += n;
        return;
      }
    }
    counts.emplace_back(link, n);
  }
};

class FlatIpTable {
 public:
  using value_type = std::pair<net::IpAddress, IpEntry>;

  FlatIpTable() noexcept = default;
  FlatIpTable(FlatIpTable&& other) noexcept
      : slots_(other.slots_), capacity_(other.capacity_), size_(other.size_) {
    other.slots_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
  }
  FlatIpTable& operator=(FlatIpTable&& other) noexcept {
    if (this != &other) {
      destroy();
      slots_ = other.slots_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.slots_ = nullptr;
      other.capacity_ = 0;
      other.size_ = 0;
    }
    return *this;
  }
  FlatIpTable(const FlatIpTable&) = delete;
  FlatIpTable& operator=(const FlatIpTable&) = delete;
  ~FlatIpTable() { destroy(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// The entry for `key`, inserted default-initialized if absent.
  IpEntry& find_or_insert(const net::IpAddress& key);

  /// One per-IP sample application against a specific table; the unit of
  /// apply_many().
  struct ApplyOp {
    FlatIpTable* table;
    const net::IpAddress* key;
    util::Timestamp ts;
    topology::LinkId link;
    std::uint64_t n;
  };

  /// Apply every op exactly as the sequential loop
  ///   `IpEntry& e = op.table->find_or_insert(*op.key);
  ///    if (op.ts > e.last_seen) e.last_seen = op.ts;
  ///    e.add(op.link, op.n);`
  /// would in span order, but with the probe chains software-interleaved:
  /// ~16 independent walks stay in flight round-robin, each visit advances
  /// one chain a slot and prefetches the next, so dependent slot loads
  /// from many records overlap instead of serializing. Out-of-order
  /// hardware only spans a couple of records' chains; this is the same
  /// trick IpdTrie::locate_many plays for descents, applied to the
  /// open-addressing probe.
  ///
  /// Byte-identity with the sequential loop holds because hits only do
  /// commutative updates (max on timestamps, exact integer-valued sums,
  /// first-appearance link order is per-key and keys are walked to
  /// completion), while misses — which would insert and therefore fix
  /// slot placement, growth points, and probe-chain shape — are deferred
  /// and replayed through find_or_insert in span order.
  static void apply_many(std::span<const ApplyOp> ops);

  /// Prefetch the start of the probe chain for `key`. The batched ingest
  /// path issues this a few records ahead of the matching find_or_insert
  /// so the (usually LLC-missing) slot lines are in flight while other
  /// records are applied. A Slot spans more than one cache line and linear
  /// probing often reads into the next slot, so fetch the two lines the
  /// probe touches first plus the line the chain continues into. Write
  /// hint: the probe ends in a counter bump or an insert either way.
  void prefetch(const net::IpAddress& key) const noexcept {
    if (capacity_ == 0) return;
    const char* p =
        reinterpret_cast<const char*>(&slots_[ideal_slot(key)]);
    __builtin_prefetch(p, 1, 3);
    __builtin_prefetch(p + 64, 1, 3);
    __builtin_prefetch(p + 128, 1, 3);
  }

  /// nullptr if absent.
  const IpEntry* find(const net::IpAddress& key) const noexcept;

  /// Move `entry` in under `key` (split redistribution). `key` must be
  /// absent.
  void insert_moved(const net::IpAddress& key, IpEntry&& entry);

  /// Erase every entry for which `pred(key, entry)` holds; returns the
  /// number removed. Backward-shift deletion, no tombstones.
  template <class Pred>
  std::size_t erase_if(Pred&& pred) {
    if (size_ == 0) return 0;
    std::size_t removed = 0;
    for (std::size_t i = 0; i < capacity_;) {
      Slot& slot = slots_[i];
      if (slot.used && pred(static_cast<const net::IpAddress&>(slot.kv.first),
                            static_cast<const IpEntry&>(slot.kv.second))) {
        erase_slot(i);
        ++removed;
        // Backward shift may pull an unexamined entry into slot i;
        // re-test it before advancing.
        continue;
      }
      ++i;
    }
    size_ -= removed;
    return removed;
  }

  /// Drop everything and release the slot array.
  void clear() noexcept { destroy(); }

  /// Shrink the slot array to the smallest capacity fitting the current
  /// entries (releases everything when empty). The cycle calls this after
  /// expiry so quiet ranges give memory back instead of holding their
  /// high-water bucket count.
  void compact();

  /// Exact heap bytes owned by this table: the slot array plus spilled
  /// per-entry counter storage.
  std::size_t memory_bytes() const noexcept;

  // Slot-order iteration over used entries.
  template <class SlotT, class ValueT>
  class Iter {
   public:
    Iter(SlotT* slot, SlotT* end) noexcept : slot_(slot), end_(end) {
      skip();
    }
    ValueT& operator*() const noexcept { return slot_->kv; }
    ValueT* operator->() const noexcept { return &slot_->kv; }
    Iter& operator++() noexcept {
      ++slot_;
      skip();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) noexcept {
      return a.slot_ == b.slot_;
    }

   private:
    void skip() noexcept {
      while (slot_ != end_ && !slot_->used) ++slot_;
    }
    SlotT* slot_;
    SlotT* end_;
  };

 private:
  struct Slot {
    value_type kv;
    bool used = false;
  };

 public:
  using iterator = Iter<Slot, value_type>;
  using const_iterator = Iter<const Slot, const value_type>;

  iterator begin() noexcept { return {slots_, slots_ + capacity_}; }
  iterator end() noexcept { return {slots_ + capacity_, slots_ + capacity_}; }
  const_iterator begin() const noexcept {
    return {slots_, slots_ + capacity_};
  }
  const_iterator end() const noexcept {
    return {slots_ + capacity_, slots_ + capacity_};
  }

 private:
  friend struct SnapshotAccess;

  static constexpr std::size_t kMinCapacity = 8;

  /// Slot arrays at least this large are allocated 2 MiB-aligned and
  /// advised onto transparent huge pages. Busy Monitoring leaves hold
  /// multi-MB arrays probed at random offsets; on 4 KiB pages every probe
  /// is a dTLB miss whose page walk both serializes the lookup and gets
  /// the look-ahead software prefetches dropped (prefetches do not take
  /// TLB misses). Huge pages collapse the array to a handful of TLB
  /// entries, which is what lets the batched ingest pipeline actually
  /// hide the slot fetch.
  static constexpr std::size_t kHugePageBytes = std::size_t{2} << 20;

  /// Paired allocate/release for the slot array (default-initialized).
  /// The allocation strategy is a pure function of the element count, so
  /// callers only need to pass the same count to both. Snapshot restore
  /// allocates through this too.
  static Slot* allocate_slots(std::size_t n);
  static void free_slots(Slot* slots, std::size_t n) noexcept;

  std::size_t ideal_slot(const net::IpAddress& key) const noexcept {
    return static_cast<std::size_t>(key.hash()) & (capacity_ - 1);
  }

  /// Smallest power-of-two capacity holding `n` entries at <= 50% load
  /// (grow-on-insert triggers at 75%, so compact leaves headroom).
  static std::size_t capacity_for(std::size_t n) noexcept;

  void rehash(std::size_t new_capacity);
  void erase_slot(std::size_t i) noexcept;
  void destroy() noexcept;

  Slot* slots_ = nullptr;
  std::size_t capacity_ = 0;  // 0 or a power of two
  std::size_t size_ = 0;
};

}  // namespace ipd::core
