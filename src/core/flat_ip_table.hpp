// Flat open-addressing table for per-IP detail state.
//
// Every Monitoring leaf keeps one of these instead of a node-based
// std::unordered_map: all entries live in a single contiguous slot array
// (linear probing, power-of-two capacity), so the stage-2 expire walk and
// split redistribution stream through one allocation instead of chasing a
// heap node per IP. Deletion uses backward-shift (no tombstones), so probe
// chains never rot; compact() re-homes the survivors into the smallest
// fitting array, which is what the cycle uses where the old code resorted
// to `clear(); rehash(0)` hacks. An empty table owns no heap at all —
// classify()/reset really do return the memory.
//
// Iteration order is slot order: a pure function of the insert/erase
// sequence, identical between the sequential and sharded engines (both
// apply the same per-leaf operation sequence), so the determinism
// differential holds. Aggregate rebuilds feed IngressCounts, which is
// canonically ordered anyway.
//
// memory_bytes() is exact: capacity * sizeof(Slot) plus every entry's
// spilled counter storage.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "net/ip_address.hpp"
#include "topology/ids.hpp"
#include "util/small_vec.hpp"
#include "util/time.hpp"

namespace ipd::core {

struct SnapshotAccess;  // snapshot serializer; see trie.hpp

/// Per-masked-source-IP state inside a Monitoring range.
struct IpEntry {
  util::Timestamp last_seen = 0;
  std::uint64_t total = 0;
  // Per-ingress flow counts; nearly always one or two links (paper §3.2),
  // so two pairs stay inline with the entry.
  util::SmallVec<util::PodPair<topology::LinkId, std::uint64_t>, 2> counts;

  void add(topology::LinkId link, std::uint64_t n = 1) {
    total += n;
    for (auto& [l, c] : counts) {
      if (l == link) {
        c += n;
        return;
      }
    }
    counts.emplace_back(link, n);
  }
};

class FlatIpTable {
 public:
  using value_type = std::pair<net::IpAddress, IpEntry>;

  FlatIpTable() noexcept = default;
  FlatIpTable(FlatIpTable&& other) noexcept
      : slots_(other.slots_), capacity_(other.capacity_), size_(other.size_) {
    other.slots_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
  }
  FlatIpTable& operator=(FlatIpTable&& other) noexcept {
    if (this != &other) {
      destroy();
      slots_ = other.slots_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.slots_ = nullptr;
      other.capacity_ = 0;
      other.size_ = 0;
    }
    return *this;
  }
  FlatIpTable(const FlatIpTable&) = delete;
  FlatIpTable& operator=(const FlatIpTable&) = delete;
  ~FlatIpTable() { destroy(); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// The entry for `key`, inserted default-initialized if absent.
  IpEntry& find_or_insert(const net::IpAddress& key);

  /// nullptr if absent.
  const IpEntry* find(const net::IpAddress& key) const noexcept;

  /// Move `entry` in under `key` (split redistribution). `key` must be
  /// absent.
  void insert_moved(const net::IpAddress& key, IpEntry&& entry);

  /// Erase every entry for which `pred(key, entry)` holds; returns the
  /// number removed. Backward-shift deletion, no tombstones.
  template <class Pred>
  std::size_t erase_if(Pred&& pred) {
    if (size_ == 0) return 0;
    std::size_t removed = 0;
    for (std::size_t i = 0; i < capacity_;) {
      Slot& slot = slots_[i];
      if (slot.used && pred(static_cast<const net::IpAddress&>(slot.kv.first),
                            static_cast<const IpEntry&>(slot.kv.second))) {
        erase_slot(i);
        ++removed;
        // Backward shift may pull an unexamined entry into slot i;
        // re-test it before advancing.
        continue;
      }
      ++i;
    }
    size_ -= removed;
    return removed;
  }

  /// Drop everything and release the slot array.
  void clear() noexcept { destroy(); }

  /// Shrink the slot array to the smallest capacity fitting the current
  /// entries (releases everything when empty). The cycle calls this after
  /// expiry so quiet ranges give memory back instead of holding their
  /// high-water bucket count.
  void compact();

  /// Exact heap bytes owned by this table: the slot array plus spilled
  /// per-entry counter storage.
  std::size_t memory_bytes() const noexcept;

  // Slot-order iteration over used entries.
  template <class SlotT, class ValueT>
  class Iter {
   public:
    Iter(SlotT* slot, SlotT* end) noexcept : slot_(slot), end_(end) {
      skip();
    }
    ValueT& operator*() const noexcept { return slot_->kv; }
    ValueT* operator->() const noexcept { return &slot_->kv; }
    Iter& operator++() noexcept {
      ++slot_;
      skip();
      return *this;
    }
    friend bool operator==(const Iter& a, const Iter& b) noexcept {
      return a.slot_ == b.slot_;
    }

   private:
    void skip() noexcept {
      while (slot_ != end_ && !slot_->used) ++slot_;
    }
    SlotT* slot_;
    SlotT* end_;
  };

 private:
  struct Slot {
    value_type kv;
    bool used = false;
  };

 public:
  using iterator = Iter<Slot, value_type>;
  using const_iterator = Iter<const Slot, const value_type>;

  iterator begin() noexcept { return {slots_, slots_ + capacity_}; }
  iterator end() noexcept { return {slots_ + capacity_, slots_ + capacity_}; }
  const_iterator begin() const noexcept {
    return {slots_, slots_ + capacity_};
  }
  const_iterator end() const noexcept {
    return {slots_ + capacity_, slots_ + capacity_};
  }

 private:
  friend struct SnapshotAccess;

  static constexpr std::size_t kMinCapacity = 8;

  std::size_t ideal_slot(const net::IpAddress& key) const noexcept {
    return static_cast<std::size_t>(key.hash()) & (capacity_ - 1);
  }

  /// Smallest power-of-two capacity holding `n` entries at <= 50% load
  /// (grow-on-insert triggers at 75%, so compact leaves headroom).
  static std::size_t capacity_for(std::size_t n) noexcept;

  void rehash(std::size_t new_capacity);
  void erase_slot(std::size_t i) noexcept;
  void destroy() noexcept;

  Slot* slots_ = nullptr;
  std::size_t capacity_ = 0;  // 0 or a power of two
  std::size_t size_ = 0;
};

}  // namespace ipd::core
