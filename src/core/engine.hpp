// The IPD engine: both stages of Algorithm 1.
//
// Stage 1 (ingest): every flow's source IP is masked to cidr_max and added,
// with its ingress link, to the leaf range covering it.
//
// Stage 2 (run_cycle, every t seconds): per range —
//   * expire per-IP state older than e; decay quiet classified ranges,
//   * unclassified ranges with enough samples (n_cidr) are classified if a
//     single ingress (or an interface bundle on one router) carries a share
//     >= q, otherwise split until cidr_max,
//   * classified ranges whose prevalent ingress is no longer valid are
//     dropped,
//   * sibling ranges classified to the same ingress are joined.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "core/params.hpp"
#include "core/trie.hpp"
#include "netflow/flow_record.hpp"

namespace ipd::core {

/// Counters describing one stage-2 cycle.
struct CycleStats {
  util::Timestamp now = 0;
  std::uint64_t classifications = 0;  // monitoring -> classified
  std::uint64_t splits = 0;
  std::uint64_t joins = 0;
  std::uint64_t drops = 0;        // classified -> dropped (invalid/decayed)
  std::uint64_t compactions = 0;  // empty siblings folded into parent
  std::uint64_t ranges_total = 0;
  std::uint64_t ranges_classified = 0;
  std::uint64_t ranges_monitoring = 0;
  std::uint64_t tracked_ips = 0;      // per-IP entries held (stage-1 state)
  std::uint64_t memory_bytes = 0;     // estimated heap usage of both tries
  std::int64_t cycle_micros = 0;      // wall-clock stage-2 runtime
};

/// Lifetime counters.
struct EngineStats {
  std::uint64_t flows_ingested = 0;
  std::uint64_t cycles_run = 0;
  std::uint64_t total_classifications = 0;
  std::uint64_t total_splits = 0;
  std::uint64_t total_joins = 0;
  std::uint64_t total_drops = 0;
};

class IpdEngine {
 public:
  explicit IpdEngine(IpdParams params);

  const IpdParams& params() const noexcept { return params_; }

  /// Stage 1: add one sample of `weight` (1 flow, or its byte count when
  /// count_mode is Bytes). Hot path.
  void ingest(util::Timestamp ts, const net::IpAddress& src_ip,
              topology::LinkId ingress, std::uint64_t weight = 1) noexcept;

  void ingest(const netflow::FlowRecord& record) noexcept {
    ingest(record.ts, record.src_ip, record.ingress,
           params_.count_mode == CountMode::Bytes
               ? std::max<std::uint64_t>(record.bytes, 1)
               : 1);
  }

  /// Stage 2: one classification cycle at simulated time `now`.
  CycleStats run_cycle(util::Timestamp now);

  const IpdTrie& trie(net::Family family) const noexcept {
    return family == net::Family::V4 ? trie4_ : trie6_;
  }
  IpdTrie& trie(net::Family family) noexcept {
    return family == net::Family::V4 ? trie4_ : trie6_;
  }

  const EngineStats& stats() const noexcept { return stats_; }

  /// Dominance test used by stage 2; exposed for tests. Returns the
  /// classified ingress if `counts` has a single prevalent ingress point
  /// (share >= q), possibly a bundle of interfaces on one router.
  std::optional<IngressId> find_prevalent(const IngressCounts& counts) const;

 private:
  void cycle_family(IpdTrie& trie, util::Timestamp now, CycleStats& out);
  void handle_leaf(IpdTrie& trie, RangeNode& node, util::Timestamp now,
                   CycleStats& out);

  IpdParams params_;
  IpdTrie trie4_;
  IpdTrie trie6_;
  EngineStats stats_;
};

}  // namespace ipd::core
