// The sequential IPD engine: both stages of Algorithm 1 on one thread.
//
// Stage 1 (ingest): every flow's source IP is masked to cidr_max and added,
// with its ingress link, to the leaf range covering it.
//
// Stage 2 (run_cycle, every t seconds): per range —
//   * expire per-IP state older than e; decay quiet classified ranges,
//   * unclassified ranges with enough samples (n_cidr) are classified if a
//     single ingress (or an interface bundle on one router) carries a share
//     >= q, otherwise split until cidr_max,
//   * classified ranges whose prevalent ingress is no longer valid are
//     dropped,
//   * sibling ranges classified to the same ingress are joined.
//
// The cycle logic itself lives in core/cycle_logic.hpp, shared verbatim
// with the parallel ShardedEngine (core/sharded_engine.hpp); the common
// API both implement is core/engine_base.hpp.
//
// Observability: attach_metrics() hooks the engine into an
// obs::MetricsRegistry — per-family/per-ingress-link ingest counters,
// per-phase stage-2 timing histograms, trie size/memory gauges. With no
// registry attached the hot paths carry a single null check and nothing
// else; phase timing is only measured while metrics or a tracer are
// attached. attach_decision_log() additionally records every structural
// stage-2 decision (classify/split/join/demote/expire/compact) with the
// numbers that drove it; attach_tracer() emits per-cycle and per-phase
// spans into a flight-recorder ring. Both are stage-2 only — the stage-1
// ingest path never touches them.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>

#include "core/cycle_logic.hpp"
#include "core/engine_base.hpp"

namespace ipd::core {

/// Stable handles into a MetricsRegistry for everything the engine exports.
/// Construction registers the full metric surface; updating is relaxed
/// atomics only. Kept public so the runner/collector layers can share the
/// same registry and naming conventions (see README "Observability").
///
/// Ingest counters are *delta-buffered*: record_ingest() only bumps plain
/// (single-writer — stage 1 runs on one thread, §5.7) integers plus a
/// direct-mapped per-link slot, and flush_ingest() publishes the deltas to
/// the registry at every stage-2 cycle. This keeps the per-flow cost to a
/// few adds, well inside the < 2% ingest budget; the registry trails live
/// ingest by at most one cycle (t = 60 s of data time). The sharded engine
/// keeps its own per-shard delta buffers instead (one writer per shard)
/// and publishes them through add_ingest_deltas()/link_counter().
class EngineMetrics {
 public:
  explicit EngineMetrics(obs::MetricsRegistry& registry);

  obs::MetricsRegistry& registry() noexcept { return *registry_; }
  const obs::MetricsRegistry& registry() const noexcept { return *registry_; }

  /// Hot path (stage 1), step 1: start pulling the link's cache slot into
  /// L1 while the caller does the (much larger) trie work. The slot array
  /// is too big to stay cache-resident next to the trie's working set, so
  /// without this the slot access eats an L2 round trip per flow.
  void prefetch_ingest(topology::LinkId link) const noexcept {
    __builtin_prefetch(&link_cache_[slot_index(link)], 1, 3);
  }

  /// Hot path (stage 1), step 2: buffer one ingested sample.
  void record_ingest(net::Family family, topology::LinkId link,
                     std::uint64_t weight) noexcept {
    const int f = family == net::Family::V4 ? 0 : 1;
    ++pending_flows_[f];
    pending_weight_[f] += weight;
    const std::uint64_t tag = link.key() + 1;  // 0 = empty slot
    LinkSlot& slot = link_cache_[slot_index(link)];
    if (slot.tag == tag) {
      ++slot.count;
      return;
    }
    evict_link_slot(slot, tag);
  }

  /// Publish buffered ingest deltas into the registry (called from
  /// run_cycle; cheap enough to call ad hoc before scraping).
  void flush_ingest();

  /// Publish pre-aggregated stage-1 deltas directly (the sharded engine's
  /// per-shard buffers, flushed under its structure lock).
  void add_ingest_deltas(net::Family family, std::uint64_t flows,
                         std::uint64_t weight);

  /// Per-ingress-link ingest counter, created on first use.
  obs::Counter& link_counter(topology::LinkId link);

  // Hot-path handles, indexed by family (0 = v4, 1 = v6) / CyclePhase.
  std::array<obs::Counter*, 2> ingest_flows{};
  std::array<obs::Counter*, 2> ingest_weight{};
  obs::Histogram* cycle_seconds = nullptr;
  std::array<obs::Histogram*, kNumCyclePhases> phase_seconds{};
  obs::Counter* cycles_total = nullptr;
  std::array<obs::Counter*, kNumCyclePhases> events{};  // by phase outcome
  std::array<obs::Gauge*, 2> trie_nodes{};
  std::array<obs::Gauge*, 2> trie_leaves{};
  std::array<obs::Gauge*, 2> trie_memory{};
  obs::Gauge* ranges_classified = nullptr;
  obs::Gauge* ranges_monitoring = nullptr;
  obs::Gauge* tracked_ips = nullptr;
  obs::Gauge* memory_bytes = nullptr;

 private:
  struct LinkSlot {
    std::uint64_t tag = 0;  // link.key() + 1; 0 = empty
    std::uint64_t count = 0;
  };
  // 4096 slots (64 KiB) keeps the expected number of colliding hot-link
  // pairs near zero even for a deployment-scale set of ~1000 links; only
  // the hot slots occupy cache.
  static constexpr std::size_t kLinkCacheBits = 12;
  static constexpr std::size_t kLinkCacheShift = 64 - kLinkCacheBits;

  static constexpr std::size_t slot_index(topology::LinkId link) noexcept {
    return (link.key() * 0x9e3779b97f4a7c15ULL) >> kLinkCacheShift;
  }

  void evict_link_slot(LinkSlot& slot, std::uint64_t new_tag);

  obs::MetricsRegistry* registry_;
  std::unordered_map<std::uint64_t, obs::Counter*> link_counters_;

  // Single-writer ingest delta buffers (see class comment).
  std::array<std::uint64_t, 2> pending_flows_{};
  std::array<std::uint64_t, 2> pending_weight_{};
  std::array<LinkSlot, std::size_t{1} << kLinkCacheBits> link_cache_{};
  std::unordered_map<std::uint64_t, std::uint64_t> link_overflow_;
};

class IpdEngine final : public EngineBase {
 public:
  explicit IpdEngine(IpdParams params);

  const IpdParams& params() const noexcept override { return params_; }

  void attach_metrics(obs::MetricsRegistry& registry) override;

  /// The attached registry, or nullptr.
  obs::MetricsRegistry* metrics_registry() const noexcept override {
    return metrics_ ? &metrics_->registry() : nullptr;
  }
  EngineMetrics* metrics() noexcept override { return metrics_.get(); }
  void flush_ingest_metrics() override {
    if (metrics_) metrics_->flush_ingest();
  }

  void attach_decision_log(DecisionLog& log) noexcept override {
    decision_log_ = &log;
  }
  DecisionLog* decision_log() const noexcept override { return decision_log_; }

  void attach_tracer(obs::Tracer& tracer) noexcept override {
    tracer_ = &tracer;
  }
  obs::Tracer* tracer() const noexcept override { return tracer_; }

  void attach_cycle_deltas(CycleDeltaLog& log) noexcept override {
    cycle_deltas_ = &log;
  }
  CycleDeltaLog* cycle_deltas() const noexcept override {
    return cycle_deltas_;
  }

  using EngineBase::ingest;
  void ingest(util::Timestamp ts, const net::IpAddress& src_ip,
              topology::LinkId ingress,
              std::uint64_t weight = 1) noexcept override;

  /// Same order as the default loop, bracketed by a stage-1 PerfScope
  /// when counters are attached (scoping per batch, not per record,
  /// amortizes the two read(2) syscalls over ~4096 flows).
  void ingest_batch(
      std::span<const netflow::FlowRecord> records) noexcept override;

  /// Batched stage 1: mask and family-partition the whole batch, run
  /// kLocateWalks-way interleaved trie descents (IpdTrie::locate_many),
  /// then apply samples in arrival order while prefetching each record's
  /// per-IP table slot a few records ahead. Byte-identical to the default
  /// row-wise loop: stage 1 never mutates trie structure, so locating
  /// every record up front and applying in order reproduces the exact
  /// per-record effect sequence.
  void apply_batch(const netflow::FlowBatch& batch) noexcept override;

  CycleStats run_cycle(util::Timestamp now) override;

  const IpdTrie& trie(net::Family family) const noexcept {
    return family == net::Family::V4 ? trie4_ : trie6_;
  }
  IpdTrie& trie(net::Family family) noexcept {
    return family == net::Family::V4 ? trie4_ : trie6_;
  }

  EngineStats stats() const noexcept override { return stats_; }

  void for_each_leaf(net::Family family,
                     const std::function<void(const RangeNode&)>& fn)
      const override {
    trie(family).for_each_leaf(fn);
  }

  const RangeNode& locate(const net::IpAddress& ip) const override {
    return const_cast<IpdEngine*>(this)->trie(ip.family()).locate(ip);
  }

  /// Dominance test used by stage 2; exposed for tests. Returns the
  /// classified ingress if `counts` has a single prevalent ingress point
  /// (share >= q), possibly a bundle of interfaces on one router.
  std::optional<IngressId> find_prevalent(const IngressCounts& counts) const {
    return core::find_prevalent(params_, counts);
  }

 private:
  friend struct SnapshotAccess;

  void publish_cycle_metrics(const CycleStats& out, const PhaseAccum& phases);
  void on_attach_perf() override;

  IpdParams params_;
  IpdTrie trie4_;
  IpdTrie trie6_;
  EngineStats stats_;
  // apply_batch scratch, kept across batches to amortize allocation.
  std::vector<net::IpAddress> batch_masked_;
  std::vector<RangeNode*> batch_leaf_;
  std::vector<FlatIpTable::ApplyOp> batch_ops_;
  std::vector<std::uint32_t> batch_idx4_;
  std::vector<std::uint32_t> batch_idx6_;
  std::unique_ptr<EngineMetrics> metrics_;
  DecisionLog* decision_log_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  CycleDeltaLog* cycle_deltas_ = nullptr;
  // Perf phase ids, cached at attach_perf (phase() takes a mutex).
  int perf_stage1_ = -1;
  int perf_stage2_ = -1;
  std::array<int, kNumCyclePhases> perf_phase_ids_{-1, -1, -1, -1, -1};
};

}  // namespace ipd::core
