// The IPD engine: both stages of Algorithm 1.
//
// Stage 1 (ingest): every flow's source IP is masked to cidr_max and added,
// with its ingress link, to the leaf range covering it.
//
// Stage 2 (run_cycle, every t seconds): per range —
//   * expire per-IP state older than e; decay quiet classified ranges,
//   * unclassified ranges with enough samples (n_cidr) are classified if a
//     single ingress (or an interface bundle on one router) carries a share
//     >= q, otherwise split until cidr_max,
//   * classified ranges whose prevalent ingress is no longer valid are
//     dropped,
//   * sibling ranges classified to the same ingress are joined.
//
// Observability: attach_metrics() hooks the engine into an
// obs::MetricsRegistry — per-family/per-ingress-link ingest counters,
// per-phase stage-2 timing histograms, trie size/memory gauges. With no
// registry attached the hot paths carry a single null check and nothing
// else; phase timing is only measured while metrics or a tracer are
// attached. attach_decision_log() additionally records every structural
// stage-2 decision (classify/split/join/demote/expire/compact) with the
// numbers that drove it; attach_tracer() emits per-cycle and per-phase
// spans into a flight-recorder ring. Both are stage-2 only — the stage-1
// ingest path never touches them.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/decision_log.hpp"
#include "core/params.hpp"
#include "core/trie.hpp"
#include "netflow/flow_record.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ipd::core {

/// The distinct kinds of stage-2 work, timed separately per cycle.
enum class CyclePhase : std::uint8_t {
  Expire = 0,  // per-IP expiry + decay/drop of quiet classified ranges
  Classify,    // dominance test + classification
  Split,       // splitting undecided ranges
  Join,        // joining same-ingress classified siblings
  Compact,     // folding empty sibling pairs into their parent
};
inline constexpr std::size_t kNumCyclePhases = 5;

const char* to_string(CyclePhase phase) noexcept;

/// Counters describing one stage-2 cycle.
struct CycleStats {
  util::Timestamp now = 0;
  std::uint64_t classifications = 0;  // monitoring -> classified
  std::uint64_t splits = 0;
  std::uint64_t joins = 0;
  std::uint64_t drops = 0;        // classified -> dropped (invalid/decayed)
  std::uint64_t compactions = 0;  // empty siblings folded into parent
  std::uint64_t ranges_total = 0;
  std::uint64_t ranges_classified = 0;
  std::uint64_t ranges_monitoring = 0;
  std::uint64_t tracked_ips = 0;      // per-IP entries held (stage-1 state)
  std::uint64_t memory_bytes = 0;     // estimated heap: tries + metrics
                                      // registry (+ bin buffer, see runner)
  std::int64_t cycle_micros = 0;      // wall-clock stage-2 runtime
  // Per-phase wall time, indexed by CyclePhase. Only populated while
  // metrics are attached (timing every leaf visit is not free).
  std::array<std::int64_t, kNumCyclePhases> phase_micros{};
};

/// One stage-2 structural transition relevant to ingress-shift detection:
/// a classified range losing its prevalent ingress (Demote) or a range
/// (re-)gaining one (Classify), with the quantities at decision time.
struct RangeTransition {
  enum class Kind : std::uint8_t { Demote, Classify };
  util::Timestamp ts = 0;
  Kind kind = Kind::Demote;
  net::Prefix prefix;
  IngressId ingress;     // Demote: the lost ingress; Classify: the new one
  double share = 0.0;    // dominant-ingress share at decision time
  double samples = 0.0;  // range sample total at decision time
};

/// Accumulating sink for per-cycle demotion/re-classification deltas.
/// The engine appends while one is attached; a consumer (the health
/// engine's shift rule) drains at its own cadence. Bounded: beyond
/// `capacity` the newest transitions are dropped and counted, so a
/// misbehaving cycle cannot grow the buffer without bound. Stage-2 only —
/// the ingest path never touches it.
class CycleDeltaLog {
 public:
  explicit CycleDeltaLog(std::size_t capacity = 65536)
      : capacity_(capacity) {}

  void push(RangeTransition transition);

  /// Consume-and-clear all buffered transitions, oldest first.
  std::vector<RangeTransition> drain();

  std::size_t size() const;
  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<RangeTransition> items_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Lifetime counters.
struct EngineStats {
  std::uint64_t flows_ingested = 0;
  std::uint64_t cycles_run = 0;
  std::uint64_t total_classifications = 0;
  std::uint64_t total_splits = 0;
  std::uint64_t total_joins = 0;
  std::uint64_t total_drops = 0;
};

/// Stable handles into a MetricsRegistry for everything the engine exports.
/// Construction registers the full metric surface; updating is relaxed
/// atomics only. Kept public so the runner/collector layers can share the
/// same registry and naming conventions (see README "Observability").
///
/// Ingest counters are *delta-buffered*: record_ingest() only bumps plain
/// (single-writer — stage 1 runs on one thread, §5.7) integers plus a
/// direct-mapped per-link slot, and flush_ingest() publishes the deltas to
/// the registry at every stage-2 cycle. This keeps the per-flow cost to a
/// few adds, well inside the < 2% ingest budget; the registry trails live
/// ingest by at most one cycle (t = 60 s of data time).
class EngineMetrics {
 public:
  explicit EngineMetrics(obs::MetricsRegistry& registry);

  obs::MetricsRegistry& registry() noexcept { return *registry_; }
  const obs::MetricsRegistry& registry() const noexcept { return *registry_; }

  /// Hot path (stage 1), step 1: start pulling the link's cache slot into
  /// L1 while the caller does the (much larger) trie work. The slot array
  /// is too big to stay cache-resident next to the trie's working set, so
  /// without this the slot access eats an L2 round trip per flow.
  void prefetch_ingest(topology::LinkId link) const noexcept {
    __builtin_prefetch(&link_cache_[slot_index(link)], 1, 3);
  }

  /// Hot path (stage 1), step 2: buffer one ingested sample.
  void record_ingest(net::Family family, topology::LinkId link,
                     std::uint64_t weight) noexcept {
    const int f = family == net::Family::V4 ? 0 : 1;
    ++pending_flows_[f];
    pending_weight_[f] += weight;
    const std::uint64_t tag = link.key() + 1;  // 0 = empty slot
    LinkSlot& slot = link_cache_[slot_index(link)];
    if (slot.tag == tag) {
      ++slot.count;
      return;
    }
    evict_link_slot(slot, tag);
  }

  /// Publish buffered ingest deltas into the registry (called from
  /// run_cycle; cheap enough to call ad hoc before scraping).
  void flush_ingest();

  /// Per-ingress-link ingest counter, created on first use.
  obs::Counter& link_counter(topology::LinkId link);

  // Hot-path handles, indexed by family (0 = v4, 1 = v6) / CyclePhase.
  std::array<obs::Counter*, 2> ingest_flows{};
  std::array<obs::Counter*, 2> ingest_weight{};
  obs::Histogram* cycle_seconds = nullptr;
  std::array<obs::Histogram*, kNumCyclePhases> phase_seconds{};
  obs::Counter* cycles_total = nullptr;
  std::array<obs::Counter*, kNumCyclePhases> events{};  // by phase outcome
  std::array<obs::Gauge*, 2> trie_nodes{};
  std::array<obs::Gauge*, 2> trie_leaves{};
  std::array<obs::Gauge*, 2> trie_memory{};
  obs::Gauge* ranges_classified = nullptr;
  obs::Gauge* ranges_monitoring = nullptr;
  obs::Gauge* tracked_ips = nullptr;
  obs::Gauge* memory_bytes = nullptr;

 private:
  struct LinkSlot {
    std::uint64_t tag = 0;  // link.key() + 1; 0 = empty
    std::uint64_t count = 0;
  };
  // 4096 slots (64 KiB) keeps the expected number of colliding hot-link
  // pairs near zero even for a deployment-scale set of ~1000 links; only
  // the hot slots occupy cache.
  static constexpr std::size_t kLinkCacheBits = 12;
  static constexpr std::size_t kLinkCacheShift = 64 - kLinkCacheBits;

  static constexpr std::size_t slot_index(topology::LinkId link) noexcept {
    return (link.key() * 0x9e3779b97f4a7c15ULL) >> kLinkCacheShift;
  }

  void evict_link_slot(LinkSlot& slot, std::uint64_t new_tag);

  obs::MetricsRegistry* registry_;
  std::unordered_map<std::uint64_t, obs::Counter*> link_counters_;

  // Single-writer ingest delta buffers (see class comment).
  std::array<std::uint64_t, 2> pending_flows_{};
  std::array<std::uint64_t, 2> pending_weight_{};
  std::array<LinkSlot, std::size_t{1} << kLinkCacheBits> link_cache_{};
  std::unordered_map<std::uint64_t, std::uint64_t> link_overflow_;
};

class IpdEngine {
 public:
  explicit IpdEngine(IpdParams params);

  const IpdParams& params() const noexcept { return params_; }

  /// Export metrics into `registry` from now on (replaces any previous
  /// attachment). The registry must outlive the engine.
  void attach_metrics(obs::MetricsRegistry& registry);

  /// The attached registry, or nullptr.
  obs::MetricsRegistry* metrics_registry() const noexcept {
    return metrics_ ? &metrics_->registry() : nullptr;
  }
  EngineMetrics* metrics() noexcept { return metrics_.get(); }

  /// Record every stage-2 structural decision into `log` from now on (the
  /// log must outlive the engine; pass by reference — detach by attaching
  /// a different log or destroying the engine first).
  void attach_decision_log(DecisionLog& log) noexcept { decision_log_ = &log; }
  DecisionLog* decision_log() const noexcept { return decision_log_; }

  /// Emit per-cycle/per-phase spans into `tracer` from now on (same
  /// lifetime contract as the decision log).
  void attach_tracer(obs::Tracer& tracer) noexcept { tracer_ = &tracer; }
  obs::Tracer* tracer() const noexcept { return tracer_; }

  /// Append every stage-2 demotion/classification transition into `log`
  /// from now on (same lifetime contract as the decision log). Consumed by
  /// the health engine's ingress-shift rule.
  void attach_cycle_deltas(CycleDeltaLog& log) noexcept {
    cycle_deltas_ = &log;
  }
  CycleDeltaLog* cycle_deltas() const noexcept { return cycle_deltas_; }

  /// Stage 1: add one sample of `weight` (1 flow, or its byte count when
  /// count_mode is Bytes). Hot path.
  void ingest(util::Timestamp ts, const net::IpAddress& src_ip,
              topology::LinkId ingress, std::uint64_t weight = 1) noexcept;

  void ingest(const netflow::FlowRecord& record) noexcept {
    ingest(record.ts, record.src_ip, record.ingress,
           params_.count_mode == CountMode::Bytes
               ? std::max<std::uint64_t>(record.bytes, 1)
               : 1);
  }

  /// Stage 2: one classification cycle at simulated time `now`.
  CycleStats run_cycle(util::Timestamp now);

  const IpdTrie& trie(net::Family family) const noexcept {
    return family == net::Family::V4 ? trie4_ : trie6_;
  }
  IpdTrie& trie(net::Family family) noexcept {
    return family == net::Family::V4 ? trie4_ : trie6_;
  }

  const EngineStats& stats() const noexcept { return stats_; }

  /// Dominance test used by stage 2; exposed for tests. Returns the
  /// classified ingress if `counts` has a single prevalent ingress point
  /// (share >= q), possibly a bundle of interfaces on one router.
  std::optional<IngressId> find_prevalent(const IngressCounts& counts) const;

 private:
  /// Per-cycle phase-time accumulator (nanoseconds); timing is skipped
  /// entirely when neither metrics nor a tracer are attached.
  struct PhaseAccum {
    bool enabled = false;
    std::array<std::int64_t, kNumCyclePhases> ns{};
  };

  void cycle_family(IpdTrie& trie, util::Timestamp now, CycleStats& out,
                    PhaseAccum& phases);
  void handle_leaf(IpdTrie& trie, RangeNode& node, util::Timestamp now,
                   CycleStats& out, PhaseAccum& phases);
  void publish_cycle_metrics(const CycleStats& out, const PhaseAccum& phases);

  IpdParams params_;
  IpdTrie trie4_;
  IpdTrie trie6_;
  EngineStats stats_;
  std::unique_ptr<EngineMetrics> metrics_;
  DecisionLog* decision_log_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  CycleDeltaLog* cycle_deltas_ = nullptr;
};

}  // namespace ipd::core
