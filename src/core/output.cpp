#include "core/output.hpp"

#include <cstdlib>
#include <stdexcept>

#include "core/engine_base.hpp"
#include "util/strings.hpp"

namespace ipd::core {

Snapshot take_snapshot(const EngineBase& engine, util::Timestamp ts,
                       bool classified_only) {
  Snapshot snapshot;
  for (const net::Family family : {net::Family::V4, net::Family::V6}) {
    engine.for_each_leaf(family, [&](const RangeNode& leaf) {
      const bool classified = leaf.state() == RangeNode::State::Classified;
      if (classified_only && !classified) return;
      if (leaf.counts().empty() && !classified) return;  // idle monitoring
      RangeOutput row;
      row.ts = ts;
      row.classified = classified;
      row.s_ipcount = leaf.counts().total();
      row.n_cidr = engine.params().n_cidr(family, leaf.prefix().length());
      row.range = leaf.prefix();
      if (classified) {
        row.ingress = leaf.ingress();
      } else if (!leaf.counts().empty()) {
        row.ingress = IngressId(leaf.counts().top_link());
      }
      row.s_ingress =
          row.ingress.valid() ? leaf.counts().share_of(row.ingress) : 0.0;
      row.breakdown = leaf.counts().sorted_entries();
      snapshot.push_back(std::move(row));
    });
  }
  return snapshot;
}

std::string format_row(const RangeOutput& row, const topology::Topology* topo) {
  const auto link_name = [&](topology::LinkId link) {
    return topo ? topo->link_name(link)
                : util::format("R%u.%u", link.router, link.iface);
  };
  std::string ingress_text =
      row.ingress.valid()
          ? (topo && !row.ingress.is_bundle() ? link_name(row.ingress.primary_link())
                                              : row.ingress.to_string())
          : std::string("-");
  ingress_text += '(';
  for (std::size_t i = 0; i < row.breakdown.size(); ++i) {
    if (i) ingress_text += ',';
    ingress_text += link_name(row.breakdown[i].first) + "=" +
                    util::format("%.0f", row.breakdown[i].second);
  }
  ingress_text += ')';
  return util::format(
      "%lld %d %.3f %.0f %.0f %s %s", static_cast<long long>(row.ts),
      row.range.family() == net::Family::V4 ? 4 : 6, row.s_ingress,
      row.s_ipcount, row.n_cidr, row.range.to_string().c_str(),
      ingress_text.c_str());
}

namespace {

topology::LinkId parse_link(std::string_view text) {
  // "R<router>.<iface>"
  if (text.empty() || text.front() != 'R') {
    throw std::invalid_argument("parse_row: bad link '" + std::string(text) + "'");
  }
  const std::size_t dot = text.find('.');
  if (dot == std::string_view::npos) {
    throw std::invalid_argument("parse_row: bad link '" + std::string(text) + "'");
  }
  return topology::LinkId{
      static_cast<topology::RouterId>(util::parse_uint(text.substr(1, dot - 1),
                                                       0xFFFFFFFEull)),
      static_cast<topology::InterfaceIndex>(
          util::parse_uint(text.substr(dot + 1), 0xFFFFull))};
}

IngressId parse_ingress(std::string_view text) {
  // "R7.3" or "R7.{1,3}" or "-"
  if (text == "-") return IngressId{};
  const std::size_t brace = text.find('{');
  if (brace == std::string_view::npos) {
    return IngressId(parse_link(text));
  }
  if (text.empty() || text.front() != 'R' || text.back() != '}') {
    throw std::invalid_argument("parse_row: bad bundle '" + std::string(text) + "'");
  }
  const std::size_t dot = text.find('.');
  const auto router = static_cast<topology::RouterId>(
      util::parse_uint(text.substr(1, dot - 1), 0xFFFFFFFEull));
  std::vector<topology::InterfaceIndex> ifaces;
  for (const auto part :
       util::split(text.substr(brace + 1, text.size() - brace - 2), ',')) {
    ifaces.push_back(static_cast<topology::InterfaceIndex>(
        util::parse_uint(part, 0xFFFFull)));
  }
  return IngressId(router, std::move(ifaces));
}

}  // namespace

RangeOutput parse_row(std::string_view line, double q_hint) {
  const auto fields = util::split(util::trim(line), ' ');
  if (fields.size() != 7) {
    throw std::invalid_argument("parse_row: expected 7 fields, got " +
                                std::to_string(fields.size()));
  }
  RangeOutput row;
  row.ts = static_cast<util::Timestamp>(
      util::parse_uint(fields[0], ~0ull >> 1));
  const auto family = util::parse_uint(fields[1], 6);
  row.s_ingress = std::strtod(std::string(fields[2]).c_str(), nullptr);
  row.s_ipcount = std::strtod(std::string(fields[3]).c_str(), nullptr);
  row.n_cidr = std::strtod(std::string(fields[4]).c_str(), nullptr);
  row.range = net::Prefix::from_string(fields[5]);
  if ((family == 4) != (row.range.family() == net::Family::V4)) {
    throw std::invalid_argument("parse_row: family tag/prefix mismatch");
  }

  // "R2.4(R2.4=4798963,R3.54=12220)"
  const std::string_view ingress_text = fields[6];
  const std::size_t paren = ingress_text.find('(');
  if (paren == std::string_view::npos || ingress_text.back() != ')') {
    throw std::invalid_argument("parse_row: bad ingress field");
  }
  row.ingress = parse_ingress(ingress_text.substr(0, paren));
  const std::string_view breakdown =
      ingress_text.substr(paren + 1, ingress_text.size() - paren - 2);
  if (!breakdown.empty()) {
    for (const auto part : util::split(breakdown, ',')) {
      const std::size_t eq = part.find('=');
      if (eq == std::string_view::npos) {
        throw std::invalid_argument("parse_row: bad breakdown entry");
      }
      row.breakdown.emplace_back(
          parse_link(part.substr(0, eq)),
          std::strtod(std::string(part.substr(eq + 1)).c_str(), nullptr));
    }
  }
  row.classified = row.ingress.valid() && row.s_ingress >= q_hint;
  return row;
}

}  // namespace ipd::core
