// Common engine surface shared by the sequential IpdEngine and the
// parallel ShardedEngine.
//
// Everything downstream of stage 1/2 — the binned runner, the snapshot
// writer, the introspection server, the collector — programs against this
// interface so the two engines are drop-in interchangeable (ipd_replay
// selects one with --shards / --ingest-threads). The per-cycle and
// lifetime counter types live here too, so both implementations report
// through identical structures and the determinism-differential tests can
// compare them field by field.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "core/decision_log.hpp"
#include "core/params.hpp"
#include "core/trie.hpp"
#include "netflow/flow_batch.hpp"
#include "netflow/flow_record.hpp"
#include "obs/lock_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ipd::obs {
class PerfCounters;
class FlowTracer;
}

namespace ipd::core {

/// The distinct kinds of stage-2 work, timed separately per cycle.
enum class CyclePhase : std::uint8_t {
  Expire = 0,  // per-IP expiry + decay/drop of quiet classified ranges
  Classify,    // dominance test + classification
  Split,       // splitting undecided ranges
  Join,        // joining same-ingress classified siblings
  Compact,     // folding empty sibling pairs into their parent
};
inline constexpr std::size_t kNumCyclePhases = 5;

const char* to_string(CyclePhase phase) noexcept;

/// Counters describing one stage-2 cycle.
struct CycleStats {
  util::Timestamp now = 0;
  std::uint64_t classifications = 0;  // monitoring -> classified
  std::uint64_t splits = 0;
  std::uint64_t joins = 0;
  std::uint64_t drops = 0;        // classified -> dropped (invalid/decayed)
  std::uint64_t compactions = 0;  // empty siblings folded into parent
  std::uint64_t ranges_total = 0;
  std::uint64_t ranges_classified = 0;
  std::uint64_t ranges_monitoring = 0;
  std::uint64_t tracked_ips = 0;      // per-IP entries held (stage-1 state)
  std::uint64_t memory_bytes = 0;     // exact trie heap (arena + per-node
                                      // tables) + observability layers
                                      // (+ bin buffer, see runner)
  std::int64_t cycle_micros = 0;      // wall-clock stage-2 runtime
  // Per-phase wall time, indexed by CyclePhase. Only populated while
  // metrics are attached (timing every leaf visit is not free). For the
  // sharded engine this is summed CPU time across worker threads, so it
  // can exceed cycle_micros.
  std::array<std::int64_t, kNumCyclePhases> phase_micros{};
};

/// One stage-2 structural transition relevant to ingress-shift detection:
/// a classified range losing its prevalent ingress (Demote) or a range
/// (re-)gaining one (Classify), with the quantities at decision time.
struct RangeTransition {
  enum class Kind : std::uint8_t { Demote, Classify };
  util::Timestamp ts = 0;
  Kind kind = Kind::Demote;
  net::Prefix prefix;
  IngressId ingress;     // Demote: the lost ingress; Classify: the new one
  double share = 0.0;    // dominant-ingress share at decision time
  double samples = 0.0;  // range sample total at decision time
};

/// Accumulating sink for per-cycle demotion/re-classification deltas.
/// The engine appends while one is attached; a consumer (the health
/// engine's shift rule) drains at its own cadence. Bounded: beyond
/// `capacity` the newest transitions are dropped and counted, so a
/// misbehaving cycle cannot grow the buffer without bound. Stage-2 only —
/// the ingest path never touches it.
class CycleDeltaLog {
 public:
  explicit CycleDeltaLog(std::size_t capacity = 65536)
      : capacity_(capacity) {}

  void push(RangeTransition transition);

  /// Consume-and-clear all buffered transitions, oldest first.
  std::vector<RangeTransition> drain();

  std::size_t size() const;
  std::uint64_t total_recorded() const;
  std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  mutable obs::InstrumentedMutex mutex_{"engine.cycle_deltas"};
  std::vector<RangeTransition> items_;
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Lifetime counters.
struct EngineStats {
  std::uint64_t flows_ingested = 0;
  std::uint64_t cycles_run = 0;
  std::uint64_t total_classifications = 0;
  std::uint64_t total_splits = 0;
  std::uint64_t total_joins = 0;
  std::uint64_t total_drops = 0;
};

class EngineMetrics;

/// Abstract engine: Algorithm 1 behind a uniform surface.
///
/// Thread-safety is implementation-defined: IpdEngine is single-threaded
/// (callers serialize externally, e.g. ipd_replay's engine mutex), while
/// ShardedEngine synchronizes ingest/run_cycle/for_each_leaf internally.
/// References returned by locate() are only stable while the caller keeps
/// the engine quiescent (no run_cycle), which the introspection server
/// guarantees via the shared engine mutex.
class EngineBase {
 public:
  virtual ~EngineBase() = default;

  virtual const IpdParams& params() const noexcept = 0;

  /// Stage 1: add one sample of `weight` (1 flow, or its byte count when
  /// count_mode is Bytes). Hot path.
  virtual void ingest(util::Timestamp ts, const net::IpAddress& src_ip,
                      topology::LinkId ingress,
                      std::uint64_t weight = 1) noexcept = 0;

  void ingest(const netflow::FlowRecord& record) noexcept {
    ingest(record.ts, record.src_ip, record.ingress,
           params().count_mode == CountMode::Bytes
               ? std::max<std::uint64_t>(record.bytes, 1)
               : 1);
  }

  /// Stage 1, amortized: ingest a batch of records in order. The sharded
  /// engine buckets the batch per shard and fans it out to worker threads;
  /// the default keeps the exact sequential per-record order.
  virtual void ingest_batch(
      std::span<const netflow::FlowRecord> records) noexcept {
    for (const auto& record : records) ingest(record);
  }

  /// Stage 1 from a structure-of-arrays batch — the decode path's native
  /// currency. Effect is defined to be byte-identical to ingesting the
  /// batch's rows one at a time in order (`ingest(batch.record(i))` for
  /// i = 0..n-1), which is what this default does. IpdEngine overrides
  /// with interleaved prefetched trie descents; ShardedEngine buckets the
  /// whole batch per cut member before fanning out.
  virtual void apply_batch(const netflow::FlowBatch& batch) noexcept {
    const bool bytes_mode = params().count_mode == CountMode::Bytes;
    const std::size_t n = batch.size();
    for (std::size_t i = 0; i < n; ++i) {
      ingest(batch.ts[i], batch.src_ip[i], batch.ingress[i],
             bytes_mode ? std::max<std::uint64_t>(batch.bytes[i], 1) : 1);
    }
  }

  /// Stage 2: one classification cycle at simulated time `now`.
  virtual CycleStats run_cycle(util::Timestamp now) = 0;

  virtual EngineStats stats() const noexcept = 0;

  /// Visit every leaf of one family's partition, in address order (the
  /// order snapshots are written in — identical across implementations).
  virtual void for_each_leaf(
      net::Family family,
      const std::function<void(const RangeNode&)>& fn) const = 0;

  /// The leaf range currently covering `ip` (/explain routing).
  virtual const RangeNode& locate(const net::IpAddress& ip) const = 0;

  /// Export metrics into `registry` from now on (replaces any previous
  /// attachment). The registry must outlive the engine.
  virtual void attach_metrics(obs::MetricsRegistry& registry) = 0;
  virtual obs::MetricsRegistry* metrics_registry() const noexcept = 0;
  virtual EngineMetrics* metrics() noexcept = 0;

  /// Publish any buffered stage-1 metric deltas into the registry (called
  /// ad hoc before scraping; run_cycle flushes too).
  virtual void flush_ingest_metrics() = 0;

  /// Record every stage-2 structural decision into `log` from now on (the
  /// log must outlive the engine; detach by attaching a different log or
  /// destroying the engine first).
  virtual void attach_decision_log(DecisionLog& log) noexcept = 0;
  virtual DecisionLog* decision_log() const noexcept = 0;

  /// Emit per-cycle/per-phase spans into `tracer` from now on (same
  /// lifetime contract as the decision log).
  virtual void attach_tracer(obs::Tracer& tracer) noexcept = 0;
  virtual obs::Tracer* tracer() const noexcept = 0;

  /// Append every stage-2 demotion/classification transition into `log`
  /// from now on (same lifetime contract as the decision log).
  virtual void attach_cycle_deltas(CycleDeltaLog& log) noexcept = 0;
  virtual CycleDeltaLog* cycle_deltas() const noexcept = 0;

  /// Charge stage-1 batches and stage-2 cycles to `perf` phases from now
  /// on (same lifetime contract as the decision log). Unlike the other
  /// attach_* hooks this one is implemented here — both engines share the
  /// pointer — with a virtual hook for caching phase ids.
  void attach_perf(obs::PerfCounters& perf) noexcept {
    perf_ = &perf;
    on_attach_perf();
  }
  obs::PerfCounters* perf() const noexcept { return perf_; }

  /// Record stage-1 provenance hops (shard routing, trie apply) for
  /// hash-sampled flows into `tracer` from now on (same lifetime contract
  /// as the decision log). Shared-pointer pattern as attach_perf.
  void attach_flow_trace(obs::FlowTracer& tracer) noexcept {
    flow_trace_ = &tracer;
  }
  obs::FlowTracer* flow_trace() const noexcept { return flow_trace_; }

  /// When set, the engine also records a Decode hop for sampled flows as
  /// they enter stage 1. Drivers without a real decode stage in front
  /// (the replay BinnedRunner) enable this so journeys still begin with a
  /// decode hop at zero extra hot-path cost — the sampling hash is
  /// computed once either way. The collector leaves it off and records
  /// Decode itself at datagram-decode time.
  void set_flow_trace_synth_decode(bool on) noexcept {
    flow_trace_synth_decode_ = on;
  }
  bool flow_trace_synth_decode() const noexcept {
    return flow_trace_synth_decode_;
  }

 protected:
  virtual void on_attach_perf() {}

  obs::PerfCounters* perf_ = nullptr;
  obs::FlowTracer* flow_trace_ = nullptr;
  bool flow_trace_synth_decode_ = false;
};

}  // namespace ipd::core
