#include "core/trie.hpp"

#include <cassert>

namespace ipd::core {

void RangeNode::add_sample(util::Timestamp ts, const net::IpAddress& masked_ip,
                           topology::LinkId link, std::uint64_t n) {
  assert(state_ != State::Internal);
  counts_.add(link, static_cast<double>(n));
  if (ts > last_update_) last_update_ = ts;
  if (state_ == State::Monitoring) {
    auto& entry = ips_[masked_ip];
    if (ts > entry.last_seen) entry.last_seen = ts;
    entry.add(link, n);
  }
}

void RangeNode::expire_before(util::Timestamp cutoff) {
  if (state_ != State::Monitoring || ips_.empty()) return;
  bool removed = false;
  for (auto it = ips_.begin(); it != ips_.end();) {
    if (it->second.last_seen < cutoff) {
      it = ips_.erase(it);
      removed = true;
    } else {
      ++it;
    }
  }
  if (!removed) return;
  // Rebuild aggregates from the surviving per-IP detail so that the
  // aggregate counters never drift from their source of truth.
  counts_.clear();
  for (const auto& [ip, entry] : ips_) {
    (void)ip;
    for (const auto& [link, c] : entry.counts) {
      counts_.add(link, static_cast<double>(c));
    }
  }
}

void RangeNode::classify(const IngressId& ingress, util::Timestamp now) {
  assert(state_ == State::Monitoring);
  ingress_ = ingress;
  state_ = State::Classified;
  classified_at_ = now;
  // "Once a prevalent ingress is found, all state is removed for efficiency
  // reasons, and only the total number of samples, the counters for the
  // respective ingresses, and the last timestamp are retained."
  ips_.clear();
  ips_.rehash(0);
}

void RangeNode::reset_to_monitoring() {
  state_ = State::Monitoring;
  ingress_ = IngressId{};
  classified_at_ = 0;
  ips_.clear();
  ips_.rehash(0);
  counts_.clear();
}

std::size_t RangeNode::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(RangeNode) + counts_.memory_bytes();
  // unordered_map footprint: buckets + one heap node per entry.
  bytes += ips_.bucket_count() * sizeof(void*);
  for (const auto& [ip, entry] : ips_) {
    (void)ip;
    bytes += sizeof(net::IpAddress) + sizeof(IpEntry) + 2 * sizeof(void*);
    bytes += entry.counts.capacity() * sizeof(entry.counts[0]);
  }
  return bytes;
}

IpdTrie::IpdTrie(net::Family family)
    : family_(family),
      root_(std::make_unique<RangeNode>(net::Prefix::root(family))) {}

RangeNode& IpdTrie::locate(const net::IpAddress& ip) noexcept {
  RangeNode* node = root_.get();
  int depth = 0;
  while (node->state_ == RangeNode::State::Internal) {
    node = ip.bit(depth) ? node->child1_.get() : node->child0_.get();
    ++depth;
  }
  return *node;
}

bool IpdTrie::split(RangeNode& node) {
  if (node.state_ != RangeNode::State::Monitoring) return false;
  const int len = node.prefix_.length();
  if (len >= node.prefix_.width()) return false;

  node.child0_ = std::make_unique<RangeNode>(node.prefix_.child(0), &node);
  node.child1_ = std::make_unique<RangeNode>(node.prefix_.child(1), &node);
  nodes_.fetch_add(2, std::memory_order_relaxed);
  leaves_.fetch_add(1, std::memory_order_relaxed);  // one leaf becomes two

  for (auto& [ip, entry] : node.ips_) {
    RangeNode& child = ip.bit(len) ? *node.child1_ : *node.child0_;
    for (const auto& [link, c] : entry.counts) {
      child.counts_.add(link, static_cast<double>(c));
    }
    if (entry.last_seen > child.last_update_) child.last_update_ = entry.last_seen;
    child.ips_.emplace(ip, std::move(entry));
  }
  node.state_ = RangeNode::State::Internal;
  node.ips_.clear();
  node.ips_.rehash(0);
  node.counts_.clear();
  node.last_update_ = 0;
  return true;
}

bool IpdTrie::join_children(RangeNode& parent) {
  RangeNode* a = parent.child0_.get();
  RangeNode* b = parent.child1_.get();
  if (!a || !b) return false;
  if (a->state_ != RangeNode::State::Classified ||
      b->state_ != RangeNode::State::Classified) {
    return false;
  }
  if (!(a->ingress_ == b->ingress_)) return false;

  parent.state_ = RangeNode::State::Classified;
  parent.ingress_ = a->ingress_;
  parent.counts_ = a->counts_;
  parent.counts_.merge(b->counts_);
  parent.last_update_ = std::max(a->last_update_, b->last_update_);
  parent.classified_at_ = std::min(a->classified_at_, b->classified_at_);
  parent.child0_.reset();
  parent.child1_.reset();
  nodes_.fetch_sub(2, std::memory_order_relaxed);
  leaves_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool IpdTrie::compact_children(RangeNode& parent) {
  RangeNode* a = parent.child0_.get();
  RangeNode* b = parent.child1_.get();
  if (!a || !b) return false;
  const auto empty_monitoring = [](const RangeNode& n) {
    return n.state_ == RangeNode::State::Monitoring && n.ips_.empty() &&
           n.counts_.empty();
  };
  if (!empty_monitoring(*a) || !empty_monitoring(*b)) return false;
  parent.state_ = RangeNode::State::Monitoring;
  parent.last_update_ = 0;
  parent.child0_.reset();
  parent.child1_.reset();
  nodes_.fetch_sub(2, std::memory_order_relaxed);
  leaves_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void IpdTrie::for_each_leaf(const std::function<void(RangeNode&)>& fn) {
  visit_leaves(*root_, fn);
}

void IpdTrie::for_each_leaf(const std::function<void(const RangeNode&)>& fn) const {
  const_cast<IpdTrie*>(this)->visit_leaves(
      *root_, [&fn](RangeNode& n) { fn(static_cast<const RangeNode&>(n)); });
}

void IpdTrie::for_each_leaf_from(
    const RangeNode& node,
    const std::function<void(const RangeNode&)>& fn) const {
  const_cast<IpdTrie*>(this)->visit_leaves(
      const_cast<RangeNode&>(node),
      [&fn](RangeNode& n) { fn(static_cast<const RangeNode&>(n)); });
}

void IpdTrie::post_order(const std::function<void(RangeNode&)>& fn) {
  visit_post(*root_, fn);
}

void IpdTrie::post_order_from(RangeNode& node,
                              const std::function<void(RangeNode&)>& fn) {
  visit_post(node, fn);
}

void IpdTrie::visit_leaves(RangeNode& node,
                           const std::function<void(RangeNode&)>& fn) {
  if (node.state_ == RangeNode::State::Internal) {
    visit_leaves(*node.child0_, fn);
    visit_leaves(*node.child1_, fn);
    return;
  }
  fn(node);
}

void IpdTrie::visit_post(RangeNode& node,
                         const std::function<void(RangeNode&)>& fn) {
  if (node.state_ == RangeNode::State::Internal) {
    // Children first; they may themselves split (their new children are
    // intentionally not visited in this pass).
    visit_post(*node.child0_, fn);
    visit_post(*node.child1_, fn);
  }
  fn(node);
}

std::size_t IpdTrie::memory_bytes() const noexcept {
  std::size_t bytes = 0;
  // Walk iteratively to avoid std::function overhead in a hot-ish metric.
  std::vector<const RangeNode*> stack{root_.get()};
  while (!stack.empty()) {
    const RangeNode* n = stack.back();
    stack.pop_back();
    bytes += n->memory_bytes();
    if (n->child(0)) stack.push_back(n->child(0));
    if (n->child(1)) stack.push_back(n->child(1));
  }
  return bytes;
}

}  // namespace ipd::core
