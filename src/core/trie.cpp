#include "core/trie.hpp"

#include <cassert>

namespace ipd::core {

void RangeNode::add_sample(util::Timestamp ts, const net::IpAddress& masked_ip,
                           topology::LinkId link, std::uint64_t n) {
  assert(state_ != State::Internal);
  counts_.add(link, static_cast<double>(n));
  if (ts > last_update_) last_update_ = ts;
  if (state_ == State::Monitoring) {
    IpEntry& entry = ips_.find_or_insert(masked_ip);
    if (ts > entry.last_seen) entry.last_seen = ts;
    entry.add(link, n);
  }
}

void RangeNode::expire_before(util::Timestamp cutoff) {
  if (state_ != State::Monitoring || ips_.empty()) return;
  const std::size_t removed =
      ips_.erase_if([cutoff](const net::IpAddress&, const IpEntry& entry) {
        return entry.last_seen < cutoff;
      });
  if (removed == 0) return;
  // Give back the slack the departed entries occupied (this is the shrink
  // the old unordered_map could only approximate with rehash(0)).
  ips_.compact();
  // Rebuild aggregates from the surviving per-IP detail so that the
  // aggregate counters never drift from their source of truth. The
  // canonical ordering inside IngressCounts makes the result independent
  // of table iteration order.
  counts_.clear();
  for (const auto& [ip, entry] : ips_) {
    (void)ip;
    for (const auto& [link, c] : entry.counts) {
      counts_.add(link, static_cast<double>(c));
    }
  }
}

void RangeNode::classify(const IngressId& ingress, util::Timestamp now) {
  assert(state_ == State::Monitoring);
  ingress_ = ingress;
  state_ = State::Classified;
  classified_at_ = now;
  // "Once a prevalent ingress is found, all state is removed for efficiency
  // reasons, and only the total number of samples, the counters for the
  // respective ingresses, and the last timestamp are retained."
  ips_.clear();
}

void RangeNode::reset_to_monitoring() {
  state_ = State::Monitoring;
  ingress_ = IngressId{};
  classified_at_ = 0;
  ips_.clear();
  counts_.clear();
}

std::size_t RangeNode::memory_bytes() const noexcept {
  return ips_.memory_bytes() + counts_.memory_bytes() +
         ingress_.ifaces.capacity() * sizeof(ingress_.ifaces[0]);
}

IpdTrie::IpdTrie(net::Family family)
    : family_(family), pool_(std::make_unique<NodePool>()) {
  root_ = pool_->alloc(net::Prefix::root(family), NodeIndex{0});
  assert(root_ == 0);
  block0_ = pool_->block_base(0);
}

IpdTrie::~IpdTrie() { destroy_all(); }

void IpdTrie::destroy_all() noexcept {
  if (pool_ && root_ != kInvalidNode) {
    free_subtree(root_);
    root_ = kInvalidNode;
  }
}

void IpdTrie::free_subtree(NodeIndex index) noexcept {
  RangeNode& n = resolve(index);
  if (n.child0_ != kInvalidNode) free_subtree(n.child0_);
  if (n.child1_ != kInvalidNode) free_subtree(n.child1_);
  pool_->free(index);
}

RangeNode& IpdTrie::locate(const net::IpAddress& ip) noexcept {
  // Hot path: one dependent load plus one add per level — the same
  // critical path a pointer-linked trie would have. The address bits are a
  // top-aligned word shifted left once per level, so the direction flag is
  // register-only and ready long before the child edge arrives; the edge
  // itself is a precomputed byte offset (child_off_) indexed by that flag,
  // avoiding both a conditional move between the two index loads and the
  // ×sizeof multiply on the load-to-load chain. Children outside block 0
  // (tries past 4096 nodes) take the never-predicted-taken fallback
  // through full index resolution.
  std::byte* const base = reinterpret_cast<std::byte*>(block0_);
  RangeNode* node = &resolve(root_);
  std::uint64_t word = ip.is_v4() ? ip.lo() << 32 : ip.hi();
  const std::uint64_t rest = ip.lo();  // v6 bits 64..127; unused for v4
  int depth = 0;
  while (node->state_ == RangeNode::State::Internal) {
    const bool one = static_cast<std::int64_t>(word) < 0;
    const std::uint32_t off = node->child_off_[one];
    word <<= 1;
    if (++depth == 64) word = rest;  // v6 hi->lo crossover (v4 stays < 33)
    if (off != RangeNode::kNoOffset) [[likely]] {
      node = std::launder(reinterpret_cast<RangeNode*>(base + off));
    } else {
      node = &resolve(one ? node->child1_ : node->child0_);
    }
  }
  return *node;
}

bool IpdTrie::split(RangeNode& node) {
  if (node.state_ != RangeNode::State::Monitoring) return false;
  const int len = node.prefix_.length();
  if (len >= node.prefix_.width()) return false;

  // alloc() may move no existing node (blocks are stable), so `node` stays
  // valid across both allocations.
  const NodeIndex c0 =
      pool_->alloc(node.prefix_.child(0), kInvalidNode, node.self_);
  const NodeIndex c1 =
      pool_->alloc(node.prefix_.child(1), kInvalidNode, node.self_);
  RangeNode& child0 = resolve(c0);
  RangeNode& child1 = resolve(c1);
  child0.self_ = c0;
  child1.self_ = c1;
  node.child0_ = c0;
  node.child1_ = c1;
  node.child_off_[0] = offset_of(c0);
  node.child_off_[1] = offset_of(c1);
  nodes_.fetch_add(2, std::memory_order_relaxed);
  leaves_.fetch_add(1, std::memory_order_relaxed);  // one leaf becomes two

  for (auto& [ip, entry] : node.ips_) {
    RangeNode& child = ip.bit(len) ? child1 : child0;
    for (const auto& [link, c] : entry.counts) {
      child.counts_.add(link, static_cast<double>(c));
    }
    if (entry.last_seen > child.last_update_) child.last_update_ = entry.last_seen;
    child.ips_.insert_moved(ip, std::move(entry));
  }
  node.state_ = RangeNode::State::Internal;
  node.ips_.clear();
  node.counts_.clear();
  node.last_update_ = 0;
  return true;
}

bool IpdTrie::join_children(RangeNode& parent) {
  RangeNode* a = child(parent, 0);
  RangeNode* b = child(parent, 1);
  if (!a || !b) return false;
  if (a->state_ != RangeNode::State::Classified ||
      b->state_ != RangeNode::State::Classified) {
    return false;
  }
  if (!(a->ingress_ == b->ingress_)) return false;

  parent.state_ = RangeNode::State::Classified;
  parent.ingress_ = a->ingress_;
  parent.counts_ = a->counts_;
  parent.counts_.merge(b->counts_);
  parent.last_update_ = std::max(a->last_update_, b->last_update_);
  parent.classified_at_ = std::min(a->classified_at_, b->classified_at_);
  pool_->free(parent.child0_);
  pool_->free(parent.child1_);
  parent.child0_ = kInvalidNode;
  parent.child1_ = kInvalidNode;
  parent.child_off_[0] = RangeNode::kNoOffset;
  parent.child_off_[1] = RangeNode::kNoOffset;
  nodes_.fetch_sub(2, std::memory_order_relaxed);
  leaves_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool IpdTrie::compact_children(RangeNode& parent) {
  RangeNode* a = child(parent, 0);
  RangeNode* b = child(parent, 1);
  if (!a || !b) return false;
  const auto empty_monitoring = [](const RangeNode& n) {
    return n.state_ == RangeNode::State::Monitoring && n.ips_.empty() &&
           n.counts_.empty();
  };
  if (!empty_monitoring(*a) || !empty_monitoring(*b)) return false;
  parent.state_ = RangeNode::State::Monitoring;
  parent.last_update_ = 0;
  pool_->free(parent.child0_);
  pool_->free(parent.child1_);
  parent.child0_ = kInvalidNode;
  parent.child1_ = kInvalidNode;
  parent.child_off_[0] = RangeNode::kNoOffset;
  parent.child_off_[1] = RangeNode::kNoOffset;
  nodes_.fetch_sub(2, std::memory_order_relaxed);
  leaves_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

void IpdTrie::for_each_leaf(const std::function<void(RangeNode&)>& fn) {
  visit_leaves(root(), fn);
}

void IpdTrie::for_each_leaf(const std::function<void(const RangeNode&)>& fn) const {
  const_cast<IpdTrie*>(this)->visit_leaves(
      const_cast<IpdTrie*>(this)->root(),
      [&fn](RangeNode& n) { fn(static_cast<const RangeNode&>(n)); });
}

void IpdTrie::for_each_leaf_from(
    const RangeNode& node,
    const std::function<void(const RangeNode&)>& fn) const {
  const_cast<IpdTrie*>(this)->visit_leaves(
      const_cast<RangeNode&>(node),
      [&fn](RangeNode& n) { fn(static_cast<const RangeNode&>(n)); });
}

void IpdTrie::post_order(const std::function<void(RangeNode&)>& fn) {
  visit_post(root(), fn);
}

void IpdTrie::post_order_from(RangeNode& node,
                              const std::function<void(RangeNode&)>& fn) {
  visit_post(node, fn);
}

void IpdTrie::visit_leaves(RangeNode& node,
                           const std::function<void(RangeNode&)>& fn) {
  if (node.state_ == RangeNode::State::Internal) {
    visit_leaves(resolve(node.child0_), fn);
    visit_leaves(resolve(node.child1_), fn);
    return;
  }
  fn(node);
}

void IpdTrie::visit_post(RangeNode& node,
                         const std::function<void(RangeNode&)>& fn) {
  if (node.state_ == RangeNode::State::Internal) {
    // Children first; they may themselves split (their new children are
    // intentionally not visited in this pass).
    visit_post(resolve(node.child0_), fn);
    visit_post(resolve(node.child1_), fn);
  }
  fn(node);
}

std::size_t IpdTrie::memory_bytes() const noexcept {
  // Arena footprint is O(1); node-owned heap (tables, spilled counters)
  // needs the walk. Iterative to keep this metric cheap.
  std::size_t bytes = pool_->bytes();
  std::vector<NodeIndex> stack{root_};
  while (!stack.empty()) {
    const RangeNode& n = resolve(stack.back());
    stack.pop_back();
    bytes += n.memory_bytes();
    if (n.child0_ != kInvalidNode) stack.push_back(n.child0_);
    if (n.child1_ != kInvalidNode) stack.push_back(n.child1_);
  }
  return bytes;
}

}  // namespace ipd::core
