// Sharded parallel IPD engine.
//
// Both engines run Algorithm 1 over one range trie per family; this one
// partitions the *work* on that trie instead of splitting it into separate
// per-shard tries. Each family's address space is divided into 2^k shards
// by the top k address bits (default k = 4 → 16 v4 + 16 v6 shards). At any
// moment the trie's top k levels induce a *cut*: the set of subtree roots
// that are either internal nodes at depth k or leaves above depth k. Every
// cut member is shard-aligned by construction (a leaf at depth d < k
// covers exactly 2^(k-d) whole shards), the members tile the address space
// in address order, and no stage-1 or stage-2 operation on one member's
// subtree ever touches another member's subtree. That gives:
//   * stage 1 — records are bucketed per cut member in arrival order and
//     fanned out to N worker threads, one lock acquisition per member per
//     batch instead of per flow;
//   * stage 2 — the per-subtree cycle passes of core/cycle_logic.hpp run
//     in parallel across the cut, followed by the sequential join/compact
//     walk over the *spine* (internal nodes above the cut) and a cut
//     rebuild for the next round.
//
// Exact equivalence to the sequential IpdEngine (the property the
// determinism-differential test asserts, byte for byte) holds because both
// engines apply the identical operation sequence to the identical physical
// trie nodes:
//   * stage 1 mutates only leaf contents under the owning member's lock,
//     in arrival order per member — the same per-leaf sample order as
//     sequential ingest;
//   * stage 2's sequential post-order walk decomposes exactly into the
//     per-member post-order walks plus the spine walk, and operations in
//     different members touch disjoint state, so executing the members in
//     parallel commutes. Hash-map iteration orders and floating-point
//     summation orders are therefore bit-identical to sequential.
// Leaf-level transitions (classify/demote) are buffered per member during
// the parallel section and drained in cut (== address) order, which is the
// sequential emission order. The only observable difference is decision-
// log *interleaving* within a cycle: sequential interleaves spine
// join/compact events between subtrees, the sharded engine appends them
// after all member events. The differential test pins everything else.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/cycle_logic.hpp"
#include "core/engine.hpp"
#include "core/engine_base.hpp"

namespace ipd::core {

struct ShardedEngineConfig {
  /// log2 of the shard count per family (0..16). Shards split on the top
  /// `shard_bits` address bits; parallelism is bounded by how far the
  /// partition has refined (one unit per cut member), so values above
  /// cidr_max just cap out at the trie's actual width.
  int shard_bits = 4;
  /// Worker threads for stage-1 fan-out and stage-2 subtree cycles. 1 runs
  /// everything inline on the calling thread (still sharded, no pool).
  int ingest_threads = 1;
  /// Load-aware cut rebalancing. When a shard slot carried more than
  /// `rebalance_factor` times the fair per-shard share of its family's
  /// flows over the last stage-2 interval, the cut member covering it is
  /// expanded up to `rebalance_depth` levels below the shard depth on the
  /// next cut republish, splitting that hot region's stage-2 work into
  /// more parallel units. The cut only shapes the parallel decomposition —
  /// never which operations run or in what per-leaf order — so rebalancing
  /// cannot change engine output and is safe to enable anywhere.
  bool rebalance_cut = false;
  double rebalance_factor = 2.0;
  int rebalance_depth = 2;
};

/// Blocking parallel-for over a persistent worker pool. run() executes
/// fn(0..n-1) across the workers plus the calling thread and returns when
/// all items completed. Items are claimed via an atomic counter; stale
/// workers waking late see an exhausted job and go back to sleep, so jobs
/// never bleed into one another.
class WorkerPool {
 public:
  /// `workers` = extra threads to spawn (0 = everything runs inline).
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  int worker_count() const noexcept {
    return static_cast<int>(threads_.size());
  }

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
  };

  void worker_loop();
  void execute(Job& job);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;  // latest posted job (guarded by mutex_)
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

class ShardedEngine final : public EngineBase {
 public:
  explicit ShardedEngine(IpdParams params, ShardedEngineConfig config = {});
  ~ShardedEngine() override;

  const IpdParams& params() const noexcept override { return params_; }

  using EngineBase::ingest;
  void ingest(util::Timestamp ts, const net::IpAddress& src_ip,
              topology::LinkId ingress,
              std::uint64_t weight = 1) noexcept override;
  void ingest_batch(
      std::span<const netflow::FlowRecord> records) noexcept override;

  /// Batched stage 1 from a SoA batch: rows are masked, weighted and
  /// bucketed per lock slot in arrival order (same routing as
  /// ingest_batch), then fanned out to the pool; each bucket runs
  /// interleaved prefetched trie descents before applying samples in
  /// order.
  void apply_batch(const netflow::FlowBatch& batch) noexcept override;

  CycleStats run_cycle(util::Timestamp now) override;

  EngineStats stats() const noexcept override;

  void for_each_leaf(net::Family family,
                     const std::function<void(const RangeNode&)>& fn)
      const override;

  const RangeNode& locate(const net::IpAddress& ip) const override;

  void attach_metrics(obs::MetricsRegistry& registry) override;
  obs::MetricsRegistry* metrics_registry() const noexcept override {
    return metrics_ ? &metrics_->registry() : nullptr;
  }
  EngineMetrics* metrics() noexcept override { return metrics_.get(); }
  void flush_ingest_metrics() override;

  void attach_decision_log(DecisionLog& log) noexcept override {
    decision_log_ = &log;
  }
  DecisionLog* decision_log() const noexcept override { return decision_log_; }

  void attach_tracer(obs::Tracer& tracer) noexcept override {
    tracer_ = &tracer;
  }
  obs::Tracer* tracer() const noexcept override { return tracer_; }

  void attach_cycle_deltas(CycleDeltaLog& log) noexcept override {
    cycle_deltas_ = &log;
  }
  CycleDeltaLog* cycle_deltas() const noexcept override {
    return cycle_deltas_;
  }

  // Shard-routing surface (property tests, /explain diagnostics).
  int shard_bits() const noexcept { return config_.shard_bits; }
  std::size_t shard_count() const noexcept { return shard_count_; }

  /// Family-local index of the shard owning `ip` (after masking to the
  /// family's cidr_max — masking never changes the owning shard).
  std::size_t shard_of(const net::IpAddress& ip) const noexcept {
    return shard_index(ip.masked(params_.cidr_max(ip.family())));
  }

  /// The root prefix of shard `index` of `family`.
  net::Prefix shard_prefix(net::Family family, std::size_t index) const;

  /// Current number of independently lockable / parallelizable subtrees in
  /// the family's cut (1 = the whole family is one unit, up to 2^k once
  /// the partition refines to the shard depth — beyond 2^k while the
  /// load-aware rebalancer holds hot members expanded).
  std::size_t parallel_units(net::Family family) const;

  /// JSON document for the /shards introspection endpoint: per-family
  /// shard-slot load (lifetime flows + last-interval deltas) and the
  /// current cut members with their prefixes and owning slots.
  std::string shards_json() const;

 private:
  friend struct SnapshotAccess;

  /// Per-slot buffered stage-1 metric deltas; flushed into the
  /// EngineMetrics registry handles in slot order under the exclusive
  /// structure lock. One writer at a time (the slot's mutex holder).
  struct IngestDeltas {
    std::array<std::uint64_t, 2> flows{};
    std::array<std::uint64_t, 2> weight{};
    std::unordered_map<std::uint64_t, std::uint64_t> link_flows;

    void record(net::Family family, topology::LinkId link,
                std::uint64_t w) {
      const int f = family == net::Family::V4 ? 0 : 1;
      ++flows[f];
      weight[f] += w;
      ++link_flows[link.key()];
    }
  };

  /// One lock slot. The cut member covering shards [s, s+span) is
  /// serialized by slot s (its first shard), so at most `cut.size()` of
  /// the 2^k slots are active at any moment. Flow counters accumulate in
  /// the slot forever (slots never move), so stats() needs no lock.
  struct Slot {
    // All slot mutexes report to one "engine.slot" lock site — per-slot
    // sites would scale series cardinality with 2^shard_bits.
    mutable obs::InstrumentedMutex mutex{"engine.slot"};
    std::atomic<std::uint64_t> flows{0};
    IngestDeltas deltas;
  };

  /// One family: a single trie plus the current cut over it.
  struct FamilyState {
    explicit FamilyState(net::Family f) : family(f), trie(f) {}
    net::Family family;
    IpdTrie trie;
    std::vector<std::unique_ptr<Slot>> slots;  // 2^k, fixed
    // Cut members in address order, as indices into the trie's node pool
    // (indices are stable across splits; freed slots are only reused for
    // nodes created under the exclusive lock, so a cut index can never
    // silently re-point mid-cycle). Rebuilt after every cycle under the
    // exclusive structure lock; read under the shared lock.
    std::vector<NodeIndex> cut;
    // Same members as a set, for the spine walk's "stop at the cut" test
    // (with rebalancing the cut is no longer a fixed-depth frontier).
    std::unordered_set<NodeIndex> cut_set;
    // shard index -> slot index of the cut member owning that shard. Cut
    // members deeper than shard_bits all share their shard's slot.
    std::vector<std::uint32_t> owner;
    // Per-slot lifetime flow counts at the last cut republish, and the
    // delta accumulated over the last stage-2 interval — the occupancy
    // signal driving the load-aware cut chooser and /shards.
    std::vector<std::uint64_t> last_flows;
    std::vector<std::uint64_t> last_deltas;
  };

  /// Pre-masked sample, bucketed per cut member during batch fan-out.
  struct PreparedSample {
    util::Timestamp ts;
    net::IpAddress ip;  // masked to cidr_max
    topology::LinkId link;
    std::uint64_t weight;
    // Provenance id when the flow is hash-sampled (0 otherwise): computed
    // once at routing time so the worker's trie-apply hop reuses it
    // instead of re-hashing.
    std::uint64_t flow_id = 0;
  };

  /// Reusable per-batch bucket storage (pooled so concurrent ingest_batch
  /// calls don't allocate fresh vectors every time).
  struct Staging {
    std::vector<std::vector<PreparedSample>> buckets;
    std::vector<std::uint32_t> active;  // non-empty bucket indices
    // Per-bucket leaf-pointer scratch for the interleaved descents (kept
    // alongside the buckets so workers never allocate on the hot path).
    std::vector<std::vector<RangeNode*>> leaves;
  };

  FamilyState& family_state(net::Family f) noexcept {
    return f == net::Family::V4 ? v4_ : v6_;
  }
  const FamilyState& family_state(net::Family f) const noexcept {
    return f == net::Family::V4 ? v4_ : v6_;
  }

  /// Family-local shard index of a masked address.
  std::size_t shard_index(const net::IpAddress& ip) const noexcept {
    if (config_.shard_bits == 0) return 0;
    if (ip.is_v4()) return ip.v4_value() >> (32 - config_.shard_bits);
    return static_cast<std::size_t>(ip.hi() >> (64 - config_.shard_bits));
  }

  /// Slot serializing the cut member that covers `masked`.
  std::size_t slot_index(const FamilyState& state,
                         const net::IpAddress& masked) const noexcept {
    return state.owner[shard_index(masked)];
  }

  // Staging bucket layout: [v4 slots][v6 slots]. Bucket == slot, so one
  // bucket maps to exactly one cut member and vice versa.
  std::size_t bucket_of(const FamilyState& state,
                        const net::IpAddress& masked) const noexcept {
    const std::size_t base =
        state.family == net::Family::V4 ? 0 : shard_count_;
    return base + slot_index(state, masked);
  }

  std::unique_ptr<Staging> acquire_staging();
  void release_staging(std::unique_ptr<Staging> staging);
  void ingest_bucket(std::size_t bucket, Staging& staging) noexcept;
  /// Shared tail of ingest_batch/apply_batch: fan the staged buckets out
  /// to the pool and return the staging to its free list.
  void fan_out(std::unique_ptr<Staging> staging) noexcept;

  /// Re-derive the cut and the shard->slot ownership map from the trie's
  /// current top k levels, measuring per-slot occupancy since the last
  /// republish and (when rebalance_cut is set) expanding hot members
  /// below the shard depth. Exclusive structure lock required.
  void rebuild_cut(FamilyState& state);

  void cycle_family(FamilyState& state, util::Timestamp now, CycleStats& out,
                    PhaseAccum& phases);
  void spine_pass(FamilyState& state, RangeNode& node, util::Timestamp now,
                  CycleStats& out, PhaseAccum& phases,
                  const CycleSinks& sinks);

  void flush_deltas_locked();
  void flush_one_delta(IngestDeltas& deltas);
  void publish_cycle_metrics(const CycleStats& out, const PhaseAccum& phases);
  void on_attach_perf() override;

  IpdParams params_;
  ShardedEngineConfig config_;
  std::size_t shard_count_;

  // Structure lock: ingest/snapshot/locate take it shared (the per-slot
  // mutexes serialize access within a cut member); run_cycle — the only
  // structural mutator — takes it exclusive.
  mutable obs::InstrumentedSharedMutex structure_mutex_{"engine.structure"};

  FamilyState v4_;
  FamilyState v6_;

  std::unique_ptr<WorkerPool> pool_;

  obs::InstrumentedMutex staging_mutex_{"engine.staging"};
  std::vector<std::unique_ptr<Staging>> staging_pool_;

  // Lifetime counters (stage 2 writes under the exclusive lock; stats()
  // reads concurrently — relaxed atomics keep dashboards race-free).
  std::atomic<std::uint64_t> cycles_run_{0};
  std::atomic<std::uint64_t> total_classifications_{0};
  std::atomic<std::uint64_t> total_splits_{0};
  std::atomic<std::uint64_t> total_joins_{0};
  std::atomic<std::uint64_t> total_drops_{0};

  /// Stage-1 queue-delay histogram for `slot` (nullptr before
  /// attach_metrics). Per-slot instruments up to 64 shards, one aggregate
  /// "all" instrument beyond that to bound the series count.
  obs::Histogram* queue_delay_hist(std::size_t slot) const noexcept {
    if (shard_queue_delay_.empty()) return nullptr;
    return shard_queue_delay_.size() == 1 ? shard_queue_delay_[0]
                                          : shard_queue_delay_[slot];
  }

  std::unique_ptr<EngineMetrics> metrics_;
  // Per-shard instruments (created at attach_metrics, same slot layout as
  // FamilyState::slots; empty while metrics are detached).
  std::vector<obs::Histogram*> shard_queue_delay_;
  std::vector<obs::Gauge*> shard_flows_;  // [v4 slots][v6 slots]
  // Occupancy/balance instruments (nullptr while metrics are detached).
  obs::Histogram* shard_occupancy_ = nullptr;
  std::array<obs::Gauge*, 2> shard_imbalance_{};  // by family
  std::array<obs::Gauge*, 2> cut_members_{};      // by family
  DecisionLog* decision_log_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  CycleDeltaLog* cycle_deltas_ = nullptr;
  // Perf phase ids, cached at attach_perf (phase() takes a mutex).
  int perf_stage1_ = -1;
  int perf_stage2_ = -1;
  std::array<int, kNumCyclePhases> perf_phase_ids_{-1, -1, -1, -1, -1};
};

}  // namespace ipd::core
