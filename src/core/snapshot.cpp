#include "core/snapshot.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <shared_mutex>
#include <utility>

#include "core/engine.hpp"
#include "core/sharded_engine.hpp"
#include "obs/build_info.hpp"

namespace ipd::core {

using util::ByteReader;
using util::ByteWriter;
using util::SnapshotErrc;
using util::SnapshotError;

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw SnapshotError(SnapshotErrc::kBadValue, message);
}

// Cap every decoded capacity/length field: corruption the CRC somehow
// missed (or a hand-crafted file) must not be able to request an
// arbitrarily large allocation before structural validation runs.
constexpr std::uint64_t kMaxReasonable = std::uint64_t{1} << 30;

std::uint64_t checked_len(std::uint64_t v, const char* what) {
  if (v > kMaxReasonable) {
    bad(std::string(what) + " implausibly large (" + std::to_string(v) + ")");
  }
  return v;
}

void put_link(ByteWriter& out, topology::LinkId link) {
  out.u32(link.router);
  out.u16(link.iface);
}

topology::LinkId get_link(ByteReader& in) {
  topology::LinkId link;
  link.router = in.u32();
  link.iface = in.u16();
  return link;
}

void put_address(ByteWriter& out, const net::IpAddress& addr) {
  out.u64(addr.hi());
  out.u64(addr.lo());
}

net::IpAddress get_address(ByteReader& in, net::Family family) {
  const std::uint64_t hi = in.u64();
  const std::uint64_t lo = in.u64();
  if (family == net::Family::V4) {
    if (hi != 0 || lo > 0xffffffffull) bad("v4 address out of range");
    return net::IpAddress::v4(static_cast<std::uint32_t>(lo));
  }
  return net::IpAddress::v6(hi, lo);
}

void put_prefix(ByteWriter& out, const net::Prefix& prefix) {
  out.u8(prefix.family() == net::Family::V4 ? 4 : 6);
  out.u8(static_cast<std::uint8_t>(prefix.length()));
  put_address(out, prefix.address());
}

net::Prefix get_prefix(ByteReader& in) {
  const std::uint8_t fam = in.u8();
  if (fam != 4 && fam != 6) bad("unknown address family tag");
  const net::Family family = fam == 4 ? net::Family::V4 : net::Family::V6;
  const int len = in.u8();
  const net::IpAddress addr = get_address(in, family);
  net::Prefix prefix;
  try {
    prefix = net::Prefix(addr, len);
  } catch (const std::exception& e) {
    bad(std::string("invalid prefix: ") + e.what());
  }
  // The writer stores canonical network addresses; a host bit set here
  // means the payload was not produced by this writer.
  if (prefix.address() != addr) bad("prefix address has host bits set");
  return prefix;
}

void put_ingress(ByteWriter& out, const IngressId& ingress) {
  out.u32(ingress.router);
  out.u64(ingress.ifaces.capacity());
  out.u32(static_cast<std::uint32_t>(ingress.ifaces.size()));
  for (const topology::InterfaceIndex iface : ingress.ifaces) out.u16(iface);
}

IngressId get_ingress(ByteReader& in) {
  IngressId ingress;
  ingress.router = in.u32();
  const std::uint64_t cap = checked_len(in.u64(), "ingress iface capacity");
  const std::uint32_t n =
      static_cast<std::uint32_t>(checked_len(in.u32(), "ingress iface count"));
  if (cap < n) bad("ingress iface capacity below size");
  ingress.ifaces.reserve(static_cast<std::size_t>(cap));
  for (std::uint32_t i = 0; i < n; ++i) {
    const topology::InterfaceIndex iface = in.u16();
    if (i > 0 && iface <= ingress.ifaces.back()) {
      bad("ingress ifaces not strictly ascending");
    }
    ingress.ifaces.push_back(iface);
  }
  return ingress;
}

struct Meta {
  bool sharded = false;
  int shard_bits = 0;
  SnapshotClock clock;
  EngineStats stats;
  std::uint64_t params_hash = 0;
  std::string build_info;
};

std::string encode_meta(const Meta& meta) {
  ByteWriter out;
  out.u8(meta.sharded ? 1 : 0);
  out.u32(static_cast<std::uint32_t>(meta.shard_bits));
  out.i64(meta.clock.saved_at);
  out.i64(meta.clock.next_cycle);
  out.i64(meta.clock.next_snapshot);
  out.u64(meta.stats.flows_ingested);
  out.u64(meta.stats.cycles_run);
  out.u64(meta.stats.total_classifications);
  out.u64(meta.stats.total_splits);
  out.u64(meta.stats.total_joins);
  out.u64(meta.stats.total_drops);
  out.u64(meta.params_hash);
  out.str(meta.build_info);
  return std::move(out).take();
}

Meta decode_meta(std::string_view payload) {
  ByteReader in(payload);
  Meta meta;
  const std::uint8_t sharded = in.u8();
  if (sharded > 1) bad("meta engine-kind flag out of range");
  meta.sharded = sharded == 1;
  meta.shard_bits = static_cast<int>(in.u32());
  if (meta.shard_bits < 0 || meta.shard_bits > 16) {
    bad("meta shard_bits out of range");
  }
  meta.clock.saved_at = in.i64();
  meta.clock.next_cycle = in.i64();
  meta.clock.next_snapshot = in.i64();
  meta.stats.flows_ingested = in.u64();
  meta.stats.cycles_run = in.u64();
  meta.stats.total_classifications = in.u64();
  meta.stats.total_splits = in.u64();
  meta.stats.total_joins = in.u64();
  meta.stats.total_drops = in.u64();
  meta.params_hash = in.u64();
  meta.build_info = std::string(in.str());
  in.expect_done();
  return meta;
}

}  // namespace

std::string encode_params(const IpdParams& params) {
  ByteWriter out;
  out.u32(static_cast<std::uint32_t>(params.cidr_max4));
  out.u32(static_cast<std::uint32_t>(params.cidr_max6));
  out.f64(params.ncidr_factor4);
  out.f64(params.ncidr_factor6);
  out.f64(params.q);
  out.i64(params.t);
  out.i64(params.e);
  out.f64(params.ncidr_floor);
  out.u8(params.enable_bundles ? 1 : 0);
  out.f64(params.bundle_member_min_share);
  out.u8(params.enable_joins ? 1 : 0);
  out.u8(static_cast<std::uint8_t>(params.count_mode));
  out.f64(params.min_keep_samples);
  out.f64(params.drop_below_ncidr_fraction);
  out.i64(params.drop_after);
  return std::move(out).take();
}

std::uint64_t params_hash(const IpdParams& params) {
  const std::string bytes = encode_params(params);
  return util::crc64(bytes.data(), bytes.size());
}

namespace {

IpdParams decode_params(std::string_view payload) {
  ByteReader in(payload);
  IpdParams params;
  params.cidr_max4 = static_cast<int>(in.u32());
  params.cidr_max6 = static_cast<int>(in.u32());
  params.ncidr_factor4 = in.f64();
  params.ncidr_factor6 = in.f64();
  params.q = in.f64();
  params.t = in.i64();
  params.e = in.i64();
  params.ncidr_floor = in.f64();
  const std::uint8_t bundles = in.u8();
  const double bundle_share = in.f64();
  const std::uint8_t joins = in.u8();
  const std::uint8_t mode = in.u8();
  params.min_keep_samples = in.f64();
  params.drop_below_ncidr_fraction = in.f64();
  params.drop_after = in.i64();
  in.expect_done();
  if (bundles > 1 || joins > 1 || mode > 1) bad("params flag out of range");
  params.enable_bundles = bundles == 1;
  params.bundle_member_min_share = bundle_share;
  params.enable_joins = joins == 1;
  params.count_mode = static_cast<CountMode>(mode);
  try {
    params.validate();
  } catch (const std::exception& e) {
    bad(std::string("snapshot params invalid: ") + e.what());
  }
  return params;
}

}  // namespace

/// Privileged serializer: the one place allowed to read and reproduce the
/// private layout of the engine's state-bearing types (friended from
/// RangeNode/IpdTrie/FlatIpTable/IngressCounts/IpdEngine/ShardedEngine).
struct SnapshotAccess {
  using NodePool = IpdTrie::NodePool;
  using Index = NodePool::Index;

  /// A decoded trie staged in a fresh pool, not yet owned by any engine.
  /// Dropping it before adoption destroys every staged node cleanly.
  struct StagedTrie {
    net::Family family;
    std::unique_ptr<NodePool> pool;
    std::vector<Index> live;  // constructed node indices (for cleanup)
    std::size_t nodes = 0;
    std::size_t leaves = 0;

    explicit StagedTrie(net::Family f)
        : family(f), pool(std::make_unique<NodePool>()) {}
    StagedTrie(StagedTrie&&) = default;
    StagedTrie& operator=(StagedTrie&&) = default;
    ~StagedTrie() {
      if (pool) {
        for (const Index index : live) pool->free(index);
      }
    }
  };

  // --- encode ----------------------------------------------------------

  static void encode_counts(ByteWriter& out, const IngressCounts& counts) {
    out.u64(counts.entries_.capacity());
    out.u32(static_cast<std::uint32_t>(counts.entries_.size()));
    for (const auto& [link, value] : counts.entries_) {
      put_link(out, link);
      out.f64(value);
    }
    // total_ is an order-dependent float sum — transported bit-exactly, not
    // recomputed, so share_of() thresholds behave identically after restore.
    out.f64(counts.total_);
  }

  static void encode_ip_table(ByteWriter& out, const FlatIpTable& table) {
    out.u64(table.capacity_);
    out.u64(table.size_);
    for (std::size_t i = 0; i < table.capacity_; ++i) {
      const FlatIpTable::Slot& slot = table.slots_[i];
      if (!slot.used) continue;
      // Exact slot placement: iteration order is slot order and feeds the
      // split redistribution sequence, so probe-equivalent placement is
      // not enough — the restored table must be positionally identical.
      out.u64(i);
      put_address(out, slot.kv.first);
      const IpEntry& entry = slot.kv.second;
      out.i64(entry.last_seen);
      out.u64(entry.total);
      out.u64(entry.counts.capacity());
      out.u32(static_cast<std::uint32_t>(entry.counts.size()));
      for (const auto& [link, c] : entry.counts) {
        put_link(out, link);
        out.u64(c);
      }
    }
  }

  static std::string encode_trie(const IpdTrie& trie,
                                 std::vector<LpmRow>* lpm_rows) {
    ByteWriter out;
    out.u64(trie.pool_->high_water());
    const std::vector<Index> chain = trie.pool_->free_chain();
    out.u32(static_cast<std::uint32_t>(chain.size()));
    for (const Index index : chain) out.u32(index);

    // Pre-order DFS, low child first — leaves come out in address order
    // (the LPM rows ride along from the same walk).
    std::vector<Index> order;
    std::vector<Index> stack{trie.root_};
    while (!stack.empty()) {
      const Index index = stack.back();
      stack.pop_back();
      order.push_back(index);
      const RangeNode& node = trie.node(index);
      if (node.state_ == RangeNode::State::Internal) {
        stack.push_back(node.child1_);
        stack.push_back(node.child0_);
      }
    }
    out.u64(order.size());
    for (const Index index : order) {
      const RangeNode& node = trie.node(index);
      out.u32(node.self_);
      out.u32(node.parent_);
      out.u32(node.child0_);
      out.u32(node.child1_);
      out.u8(static_cast<std::uint8_t>(node.state_));
      put_prefix(out, node.prefix_);
      out.i64(node.last_update_);
      out.i64(node.classified_at_);
      put_ingress(out, node.ingress_);
      encode_counts(out, node.counts_);
      encode_ip_table(out, node.ips_);
      if (lpm_rows != nullptr &&
          node.state_ == RangeNode::State::Classified) {
        lpm_rows->push_back({node.prefix_, node.ingress_});
      }
    }
    return std::move(out).take();
  }

  // --- decode ----------------------------------------------------------

  static void decode_counts(ByteReader& in, IngressCounts& counts) {
    const std::uint64_t cap = checked_len(in.u64(), "counts capacity");
    const std::uint32_t n =
        static_cast<std::uint32_t>(checked_len(in.u32(), "counts size"));
    if (cap < n || cap < 2) bad("counts capacity below size or inline min");
    counts.entries_.reserve(static_cast<std::size_t>(cap));
    std::uint64_t prev_key = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      const topology::LinkId link = get_link(in);
      const double value = in.f64();
      if (i > 0 && link.key() <= prev_key) {
        bad("ingress counters not strictly ascending by link");
      }
      prev_key = link.key();
      counts.entries_.push_back({link, value});
    }
    counts.total_ = in.f64();
  }

  static void decode_ip_table(ByteReader& in, FlatIpTable& table,
                              net::Family family) {
    const std::uint64_t capacity = checked_len(in.u64(), "ip-table capacity");
    const std::uint64_t size = in.u64();
    if (capacity == 0) {
      if (size != 0) bad("ip-table entries without capacity");
      return;
    }
    if (capacity < FlatIpTable::kMinCapacity ||
        (capacity & (capacity - 1)) != 0) {
      bad("ip-table capacity not a power of two >= 8");
    }
    if (4 * size > 3 * capacity) bad("ip-table over load factor");
    table.slots_ = FlatIpTable::allocate_slots(capacity);
    table.capacity_ = static_cast<std::size_t>(capacity);
    table.size_ = static_cast<std::size_t>(size);
    for (std::uint64_t i = 0; i < size; ++i) {
      const std::uint64_t slot_index = in.u64();
      if (slot_index >= capacity) bad("ip-table slot index out of range");
      FlatIpTable::Slot& slot = table.slots_[slot_index];
      if (slot.used) bad("ip-table duplicate slot index");
      slot.kv.first = get_address(in, family);
      IpEntry& entry = slot.kv.second;
      entry.last_seen = in.i64();
      entry.total = in.u64();
      const std::uint64_t cap = checked_len(in.u64(), "ip-entry capacity");
      const std::uint32_t n =
          static_cast<std::uint32_t>(checked_len(in.u32(), "ip-entry size"));
      if (cap < n || cap < 2) bad("ip-entry capacity below size");
      entry.counts.reserve(static_cast<std::size_t>(cap));
      for (std::uint32_t k = 0; k < n; ++k) {
        const topology::LinkId link = get_link(in);
        entry.counts.push_back({link, in.u64()});
      }
      slot.used = true;
    }
  }

  static StagedTrie decode_trie(std::string_view payload, net::Family family) {
    ByteReader in(payload);
    const std::uint64_t high_water = checked_len(in.u64(), "pool high-water");
    if (high_water < 1) bad("trie has no nodes");

    const std::uint32_t free_count =
        static_cast<std::uint32_t>(checked_len(in.u32(), "free-chain length"));
    std::vector<Index> chain(free_count);
    // 0 = unseen, 1 = free, 2 = live node record.
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(high_water), 0);
    for (std::uint32_t i = 0; i < free_count; ++i) {
      const Index index = in.u32();
      if (index >= high_water) bad("free index beyond high water");
      if (seen[index] != 0) bad("free index duplicated");
      seen[index] = 1;
      chain[i] = index;
    }

    const std::uint64_t node_count = checked_len(in.u64(), "node count");
    if (free_count + node_count != high_water) {
      bad("free + live slots do not partition the arena");
    }

    StagedTrie staged(family);
    staged.pool->restore_layout(static_cast<std::size_t>(high_water), chain);

    struct Children {
      Index child0;
      Index child1;
      RangeNode::State state;
    };
    std::vector<Children> shape(static_cast<std::size_t>(high_water));
    staged.live.reserve(static_cast<std::size_t>(node_count));

    for (std::uint64_t rec = 0; rec < node_count; ++rec) {
      const Index self = in.u32();
      const Index parent = in.u32();
      const Index child0 = in.u32();
      const Index child1 = in.u32();
      const std::uint8_t state_raw = in.u8();
      if (self >= high_water) bad("node index beyond high water");
      if (seen[self] == 1) bad("node index collides with free chain");
      if (seen[self] == 2) bad("node index duplicated");
      if (state_raw > 2) bad("node state out of range");
      const auto state = static_cast<RangeNode::State>(state_raw);
      const net::Prefix prefix = get_prefix(in);
      if (prefix.family() != family) bad("node family mismatch");

      // Construct in place, then fill the private fields the public
      // constructor does not cover.
      staged.pool->construct_at(self, prefix, self, parent);
      seen[self] = 2;
      staged.live.push_back(self);
      RangeNode& node = (*staged.pool)[self];
      node.state_ = state;
      node.last_update_ = in.i64();
      node.classified_at_ = in.i64();
      node.ingress_ = get_ingress(in);
      decode_counts(in, node.counts_);
      decode_ip_table(in, node.ips_, family);

      const bool internal = state == RangeNode::State::Internal;
      if (internal) {
        if (child0 >= high_water || child1 >= high_water || child0 == child1) {
          bad("internal node with invalid children");
        }
        if (prefix.length() >= prefix.width()) {
          bad("internal node at full prefix width");
        }
        node.child0_ = child0;
        node.child1_ = child1;
        node.child_off_[0] = offset_of(child0);
        node.child_off_[1] = offset_of(child1);
        if (!node.ips_.empty() || !node.counts_.empty()) {
          bad("internal node carries leaf state");
        }
      } else {
        if (child0 != kInvalidNode || child1 != kInvalidNode) {
          bad("leaf node with children");
        }
        ++staged.leaves;
      }
      if (state == RangeNode::State::Classified) {
        if (!node.ingress_.valid()) bad("classified node without ingress");
        if (!node.ips_.empty()) bad("classified node with per-IP detail");
      }
      shape[self] = {child0, child1, state};
    }
    in.expect_done();
    staged.nodes = static_cast<std::size_t>(node_count);

    // Structural walk: every record reachable from the root exactly once,
    // child prefixes and parent back-pointers consistent. A cycle or an
    // orphan record fails here, before any engine is touched.
    if (seen[0] != 2) bad("root slot is not a live node");
    {
      const RangeNode& root = (*staged.pool)[0];
      if (root.parent_ != kInvalidNode || root.prefix_.length() != 0) {
        bad("node 0 is not a root");
      }
    }
    std::vector<std::uint8_t> visited(static_cast<std::size_t>(high_water), 0);
    std::vector<Index> stack{0};
    std::uint64_t reached = 0;
    while (!stack.empty()) {
      const Index index = stack.back();
      stack.pop_back();
      if (seen[index] != 2) bad("edge to a non-live slot");
      if (visited[index]) bad("node reachable twice (cycle or shared child)");
      visited[index] = 1;
      ++reached;
      const Children& c = shape[index];
      if (c.state != RangeNode::State::Internal) continue;
      const RangeNode& node = (*staged.pool)[index];
      for (int bit = 0; bit < 2; ++bit) {
        const Index child = bit ? c.child1 : c.child0;
        // Liveness before dereference: a child edge into a free-chain slot
        // would otherwise read reinterpreted free-list bytes.
        if (seen[child] != 2) bad("edge to a non-live slot");
        const RangeNode& child_node = (*staged.pool)[child];
        if (child_node.parent_ != index) bad("child parent pointer mismatch");
        if (child_node.prefix_ != node.prefix_.child(bit)) {
          bad("child prefix does not match its edge");
        }
        stack.push_back(child);
      }
    }
    if (reached != node_count) bad("unreachable node records");
    return staged;
  }

  // --- engine plumbing --------------------------------------------------

  static std::uint32_t offset_of(Index index) noexcept {
    return index < NodePool::kBlockSize
               ? static_cast<std::uint32_t>(index * sizeof(RangeNode))
               : RangeNode::kNoOffset;
  }

  /// Swap a staged trie into an engine-owned one. The old tree is freed
  /// into the old pool (which dies with zero live objects), and the trie's
  /// cached block-0 base is re-pointed at the staged pool.
  static void adopt_trie(IpdTrie& trie, StagedTrie&& staged) {
    trie.destroy_all();
    trie.pool_ = std::move(staged.pool);
    trie.block0_ = trie.pool_->block_base(0);
    trie.root_ = 0;
    trie.leaves_.store(staged.leaves, std::memory_order_relaxed);
    trie.nodes_.store(staged.nodes, std::memory_order_relaxed);
  }

  static std::string save(const IpdEngine& engine, const SnapshotClock& clock);
  static std::string save(const ShardedEngine& engine,
                          const SnapshotClock& clock);
  static void install(IpdEngine& engine, StagedTrie&& v4, StagedTrie&& v6,
                      const Meta& meta);
  static void install(ShardedEngine& engine, StagedTrie&& v4, StagedTrie&& v6,
                      const Meta& meta);
};

namespace {

std::string encode_lpm(const std::vector<LpmRow>& rows) {
  ByteWriter out;
  out.u64(rows.size());
  for (const LpmRow& row : rows) {
    put_prefix(out, row.prefix);
    put_ingress(out, row.ingress);
  }
  return std::move(out).take();
}

std::string build_file(const Meta& meta, const IpdParams& params,
                       std::string trie_v4, std::string trie_v6,
                       const std::vector<LpmRow>& lpm) {
  util::SnapshotBuilder builder(kSnapshotFormatVersion);
  builder.add_section(kSectionMeta, encode_meta(meta));
  builder.add_section(kSectionParams, encode_params(params));
  builder.add_section(kSectionTrieV4, std::move(trie_v4));
  builder.add_section(kSectionTrieV6, std::move(trie_v6));
  builder.add_section(kSectionLpm, encode_lpm(lpm));
  return std::move(builder).finish();
}

}  // namespace

std::string SnapshotAccess::save(const IpdEngine& engine,
                                 const SnapshotClock& clock) {
  Meta meta;
  meta.sharded = false;
  meta.shard_bits = 0;
  meta.clock = clock;
  meta.stats = engine.stats();
  meta.params_hash = params_hash(engine.params());
  meta.build_info = obs::build_info_line();
  std::vector<LpmRow> lpm;
  std::string v4 = encode_trie(engine.trie(net::Family::V4), &lpm);
  std::string v6 = encode_trie(engine.trie(net::Family::V6), &lpm);
  return build_file(meta, engine.params(), std::move(v4), std::move(v6), lpm);
}

std::string SnapshotAccess::save(const ShardedEngine& engine,
                                 const SnapshotClock& clock) {
  // Exclusive: shuts out concurrent ingest (shared-lock holders mutating
  // leaf contents under slot mutexes) as well as cycles, so the encoded
  // tries are a consistent instant.
  const std::unique_lock<obs::InstrumentedSharedMutex> lock(
      engine.structure_mutex_);
  Meta meta;
  meta.sharded = true;
  meta.shard_bits = engine.config_.shard_bits;
  meta.clock = clock;
  meta.stats = engine.stats();
  meta.params_hash = params_hash(engine.params());
  meta.build_info = obs::build_info_line();
  std::vector<LpmRow> lpm;
  std::string v4 = encode_trie(engine.v4_.trie, &lpm);
  std::string v6 = encode_trie(engine.v6_.trie, &lpm);
  return build_file(meta, engine.params(), std::move(v4), std::move(v6), lpm);
}

void SnapshotAccess::install(IpdEngine& engine, StagedTrie&& v4,
                             StagedTrie&& v6, const Meta& meta) {
  adopt_trie(engine.trie4_, std::move(v4));
  adopt_trie(engine.trie6_, std::move(v6));
  engine.stats_ = meta.stats;
}

void SnapshotAccess::install(ShardedEngine& engine, StagedTrie&& v4,
                             StagedTrie&& v6, const Meta& meta) {
  const std::unique_lock<obs::InstrumentedSharedMutex> lock(
      engine.structure_mutex_);
  adopt_trie(engine.v4_.trie, std::move(v4));
  adopt_trie(engine.v6_.trie, std::move(v6));
  // Lifetime flow counts live distributed over slot counters; stats() only
  // ever sums them, so parking the whole total on one slot preserves every
  // observable number across any shard-count change.
  for (ShardedEngine::FamilyState* state : {&engine.v4_, &engine.v6_}) {
    for (auto& slot : state->slots) {
      slot->flows.store(0, std::memory_order_relaxed);
    }
  }
  engine.v4_.slots[0]->flows.store(meta.stats.flows_ingested,
                                   std::memory_order_relaxed);
  engine.cycles_run_.store(meta.stats.cycles_run, std::memory_order_relaxed);
  engine.total_classifications_.store(meta.stats.total_classifications,
                                      std::memory_order_relaxed);
  engine.total_splits_.store(meta.stats.total_splits,
                             std::memory_order_relaxed);
  engine.total_joins_.store(meta.stats.total_joins, std::memory_order_relaxed);
  engine.total_drops_.store(meta.stats.total_drops, std::memory_order_relaxed);
  // Re-shard: the cut is derived state over the trie's top levels, so a
  // snapshot from any shard count loads into any other.
  engine.rebuild_cut(engine.v4_);
  engine.rebuild_cut(engine.v6_);
}

std::string save_snapshot(const EngineBase& engine,
                          const SnapshotClock& clock) {
  if (const auto* sharded = dynamic_cast<const ShardedEngine*>(&engine)) {
    return SnapshotAccess::save(*sharded, clock);
  }
  if (const auto* sequential = dynamic_cast<const IpdEngine*>(&engine)) {
    return SnapshotAccess::save(*sequential, clock);
  }
  bad("unsupported engine implementation for snapshot");
}

void save_snapshot_file(const std::string& path, const EngineBase& engine,
                        const SnapshotClock& clock) {
  util::write_file_atomic(path, save_snapshot(engine, clock));
}

namespace {

/// Parse + cross-check the header sections shared by every reader.
Meta parse_meta_checked(const util::SnapshotParser& parser) {
  if (parser.format_version() != kSnapshotFormatVersion) {
    throw SnapshotError(SnapshotErrc::kBadVersion,
                        "format version " +
                            std::to_string(parser.format_version()) +
                            ", supported " +
                            std::to_string(kSnapshotFormatVersion));
  }
  Meta meta = decode_meta(parser.section(kSectionMeta));
  const std::string_view params_payload = parser.section(kSectionParams);
  if (meta.params_hash !=
      util::crc64(params_payload.data(), params_payload.size())) {
    bad("meta params hash does not match the params section");
  }
  return meta;
}

}  // namespace

SnapshotInfo read_snapshot_info(std::string_view data) {
  const util::SnapshotParser parser(data);
  const Meta meta = parse_meta_checked(parser);
  SnapshotInfo info;
  info.format_version = parser.format_version();
  info.build_info = meta.build_info;
  info.params_hash = meta.params_hash;
  info.sharded = meta.sharded;
  info.shard_bits = meta.shard_bits;
  info.clock = meta.clock;
  info.stats = meta.stats;
  ByteReader lpm(parser.section(kSectionLpm));
  info.lpm_rows = lpm.u64();
  return info;
}

SnapshotInfo read_snapshot_info_file(const std::string& path) {
  const std::string data = util::read_file(path);
  return read_snapshot_info(data);
}

std::vector<LpmRow> read_snapshot_lpm(std::string_view data) {
  const util::SnapshotParser parser(data);
  parse_meta_checked(parser);
  ByteReader in(parser.section(kSectionLpm));
  const std::uint64_t n = checked_len(in.u64(), "lpm row count");
  std::vector<LpmRow> rows;
  rows.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    LpmRow row;
    row.prefix = get_prefix(in);
    row.ingress = get_ingress(in);
    rows.push_back(std::move(row));
  }
  in.expect_done();
  return rows;
}

SnapshotClock restore_snapshot(EngineBase& engine, std::string_view data) {
  const util::SnapshotParser parser(data);
  const Meta meta = parse_meta_checked(parser);

  // Params gate: a snapshot only continues deterministically under the
  // exact parameters it was produced with. Canonical-encoding equality is
  // params equality (bit-exact doubles included).
  decode_params(parser.section(kSectionParams));  // well-formedness
  if (encode_params(engine.params()) != parser.section(kSectionParams)) {
    throw SnapshotError(SnapshotErrc::kParamsMismatch,
                        "engine params differ from the snapshot's");
  }

  // Stage everything before touching the engine (fail closed): both tries
  // decode and validate into fresh pools; only the installs below mutate
  // engine state, and they cannot throw.
  SnapshotAccess::StagedTrie v4 =
      SnapshotAccess::decode_trie(parser.section(kSectionTrieV4),
                                  net::Family::V4);
  SnapshotAccess::StagedTrie v6 =
      SnapshotAccess::decode_trie(parser.section(kSectionTrieV6),
                                  net::Family::V6);

  if (auto* sharded = dynamic_cast<ShardedEngine*>(&engine)) {
    SnapshotAccess::install(*sharded, std::move(v4), std::move(v6), meta);
  } else if (auto* sequential = dynamic_cast<IpdEngine*>(&engine)) {
    SnapshotAccess::install(*sequential, std::move(v4), std::move(v6), meta);
  } else {
    bad("unsupported engine implementation for restore");
  }
  return meta.clock;
}

SnapshotClock restore_snapshot_file(EngineBase& engine,
                                    const std::string& path) {
  const std::string data = util::read_file(path);
  return restore_snapshot(engine, data);
}

// --- SnapshotTelemetry ---------------------------------------------------

void SnapshotTelemetry::bind(obs::MetricsRegistry& registry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  saves_total_ = &registry.counter("ipd_snapshots_total",
                                   "Engine snapshots written");
  restores_total_ = &registry.counter("ipd_snapshot_restores_total",
                                      "Engine restores from snapshot");
  errors_total_ = &registry.counter("ipd_snapshot_errors_total",
                                    "Snapshot save/restore failures");
  bytes_gauge_ = &registry.gauge("ipd_snapshot_bytes",
                                 "Size of the newest snapshot file");
  age_gauge_ = &registry.gauge(
      "ipd_snapshot_age_seconds",
      "Data-time age of the newest snapshot (-1 before the first)");
  save_seconds_ = &registry.histogram(
      "ipd_snapshot_duration_seconds", "Snapshot serialization wall time",
      obs::Histogram::exponential_bounds(0.001, 2.0, 14));
  age_gauge_->set(state_.age_seconds);
}

void SnapshotTelemetry::set_path(std::string path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  state_.path = std::move(path);
}

void SnapshotTelemetry::record_save(std::uint64_t bytes, double seconds,
                                    util::Timestamp data_ts) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++state_.saves;
  state_.last_bytes = bytes;
  state_.last_save_seconds = seconds;
  state_.last_saved_at = data_ts;
  state_.age_seconds = 0.0;
  if (saves_total_ != nullptr) {
    saves_total_->inc();
    bytes_gauge_->set(static_cast<double>(bytes));
    save_seconds_->observe(seconds);
    age_gauge_->set(0.0);
  }
}

void SnapshotTelemetry::record_restore(std::uint64_t bytes, double seconds,
                                       util::Timestamp data_ts) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++state_.restores;
  state_.last_bytes = bytes;
  state_.last_restore_seconds = seconds;
  state_.last_saved_at = data_ts;
  state_.age_seconds = 0.0;
  if (restores_total_ != nullptr) {
    restores_total_->inc();
    age_gauge_->set(0.0);
  }
}

void SnapshotTelemetry::record_error(const std::string& what) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++state_.errors;
  state_.last_error = what;
  if (errors_total_ != nullptr) errors_total_->inc();
}

void SnapshotTelemetry::update_age(util::Timestamp now_data_ts) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_.saves == 0 && state_.restores == 0) return;
  const double age = now_data_ts >= state_.last_saved_at
                         ? static_cast<double>(now_data_ts -
                                               state_.last_saved_at)
                         : 0.0;
  state_.age_seconds = age;
  if (age_gauge_ != nullptr) age_gauge_->set(age);
}

SnapshotTelemetry::State SnapshotTelemetry::state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

}  // namespace ipd::core
