#include "core/sharded_engine.hpp"

#include <cassert>
#include <chrono>
#include <stdexcept>

#include "obs/flow_trace.hpp"
#include "util/strings.hpp"
#include "util/thread.hpp"

namespace ipd::core {

namespace {

/// Span names / lanes shared with the sequential engine (see engine.cpp).
constexpr std::array<const char*, kNumCyclePhases> kPhaseSpan = {
    "stage2.expire", "stage2.classify", "stage2.split", "stage2.join",
    "stage2.compact"};
constexpr std::uint32_t kStage2Lane = 2;

constexpr int family_index(net::Family family) noexcept {
  return family == net::Family::V4 ? 0 : 1;
}

/// Per-unit sink capacity during the parallel section. Generous: a cycle
/// can't realistically produce a million decisions per subtree, so nothing
/// is ever dropped before the in-order drain into the global logs.
constexpr std::size_t kUnitSinkCapacity = std::size_t{1} << 20;

topology::LinkId link_from_key(std::uint64_t key) noexcept {
  return topology::LinkId{static_cast<topology::RouterId>(key >> 16),
                          static_cast<topology::InterfaceIndex>(key & 0xffff)};
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerPool

WorkerPool::WorkerPool(int workers) {
  threads_.reserve(static_cast<std::size_t>(std::max(workers, 0)));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] {
      util::set_current_thread_name(util::format("ipd-shard-%d", i));
      worker_loop();
    });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::execute(Job& job) {
  std::size_t i;
  while ((i = job.next.fetch_add(1, std::memory_order_relaxed)) < job.n) {
    (*job.fn)(i);
    if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
      // Last item done: wake the caller. Taking the mutex orders the
      // notify against the caller's wait, so the wakeup cannot be lost.
      const std::lock_guard<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] {
        return stop_ ||
               (job_ && job_->next.load(std::memory_order_relaxed) < job_->n);
      });
      if (stop_) return;
      job = job_;  // each worker holds its own reference: a stale worker
                   // waking late only ever touches its (exhausted) old job
    }
    execute(*job);
  }
}

void WorkerPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
  }
  work_cv_.notify_all();
  execute(*job);  // the calling thread participates
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&job] {
    return job->completed.load(std::memory_order_acquire) >= job->n;
  });
}

// ---------------------------------------------------------------------------
// ShardedEngine

ShardedEngine::ShardedEngine(IpdParams params, ShardedEngineConfig config)
    : params_(params),
      config_(config),
      shard_count_(std::size_t{1} << config.shard_bits),
      v4_(net::Family::V4),
      v6_(net::Family::V6) {
  if (config_.shard_bits < 0 || config_.shard_bits > 16) {
    throw std::invalid_argument("shard_bits must be in [0, 16]");
  }
  if (config_.ingest_threads < 1) {
    throw std::invalid_argument("ingest_threads must be >= 1");
  }
  params_.validate();
  for (FamilyState* state : {&v4_, &v6_}) {
    state->slots.reserve(shard_count_);
    for (std::size_t i = 0; i < shard_count_; ++i) {
      state->slots.push_back(std::make_unique<Slot>());
    }
    state->owner.assign(shard_count_, 0);
    rebuild_cut(*state);
  }
  pool_ = std::make_unique<WorkerPool>(config_.ingest_threads - 1);
}

ShardedEngine::~ShardedEngine() = default;

net::Prefix ShardedEngine::shard_prefix(net::Family family,
                                        std::size_t index) const {
  return net::Prefix::root(family).nth_subprefix(index, config_.shard_bits);
}

std::size_t ShardedEngine::parallel_units(net::Family family) const {
  const std::shared_lock<obs::InstrumentedSharedMutex> lock(structure_mutex_);
  return family_state(family).cut.size();
}

void ShardedEngine::attach_metrics(obs::MetricsRegistry& registry) {
  const std::unique_lock<obs::InstrumentedSharedMutex> lock(structure_mutex_);
  metrics_ = std::make_unique<EngineMetrics>(registry);
  // Per-shard stage-1 instruments. Beyond 64 shards the label cardinality
  // stops paying for itself: fall back to one aggregate series.
  shard_queue_delay_.clear();
  shard_flows_.clear();
  const bool per_shard = shard_count_ <= 64;
  const std::size_t slots = per_shard ? shard_count_ : 1;
  for (std::size_t i = 0; i < slots; ++i) {
    const obs::Labels labels{
        {"shard", per_shard ? std::to_string(i) : std::string("all")}};
    shard_queue_delay_.push_back(&registry.histogram(
        "ipd_shard_queue_delay_seconds",
        "Stage-1 fan-out delay: batch bucketing start to the worker "
        "beginning the shard's bucket",
        obs::Histogram::exponential_bounds(1e-6, 4.0, 12), labels));
  }
  if (per_shard) {
    for (const FamilyState* state : {&v4_, &v6_}) {
      const char* fam = state->family == net::Family::V4 ? "v4" : "v6";
      for (std::size_t i = 0; i < shard_count_; ++i) {
        shard_flows_.push_back(&registry.gauge(
            "ipd_shard_flows",
            "Lifetime flows ingested per shard slot (occupancy skew)",
            obs::Labels{{"family", fam}, {"shard", std::to_string(i)}}));
      }
    }
  }
  // Occupancy distribution and balance summary (both families share the
  // histogram; the imbalance/cut gauges are per family). These read the
  // per-interval deltas measured at every cut republish.
  shard_occupancy_ = &registry.histogram(
      "ipd_shard_occupancy",
      "Flow records routed to one shard slot during one stage-2 interval",
      obs::Histogram::exponential_bounds(1.0, 4.0, 16));
  for (const FamilyState* state : {&v4_, &v6_}) {
    const int f = family_index(state->family);
    const obs::Labels labels{
        {"family", state->family == net::Family::V4 ? "v4" : "v6"}};
    shard_imbalance_[f] = &registry.gauge(
        "ipd_shard_imbalance_ratio",
        "Max over mean per-shard flow delta of the last stage-2 interval",
        labels);
    cut_members_[f] = &registry.gauge(
        "ipd_cut_members", "Cut members (stage-2 parallel units)", labels);
  }
}

void ShardedEngine::on_attach_perf() {
  perf_stage1_ = perf_->phase("stage1.ingest");
  perf_stage2_ = perf_->phase("stage2.cycle");
  for (std::size_t i = 0; i < kNumCyclePhases; ++i) {
    perf_phase_ids_[i] = perf_->phase(kPhaseSpan[i]);
  }
}

void ShardedEngine::rebuild_cut(FamilyState& state) {
  // Measure the interval's per-slot load (flows since the previous
  // republish): the occupancy signal behind the load-aware chooser, the
  // ipd_shard_occupancy metrics, and /shards. Flow counts are a pure
  // function of the workload, so the chosen cut — and with it the parallel
  // decomposition — is reproducible run to run.
  if (state.last_flows.size() != shard_count_) {
    state.last_flows.assign(shard_count_, 0);
    state.last_deltas.assign(shard_count_, 0);
  }
  std::uint64_t total_delta = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    const std::uint64_t flows =
        state.slots[i]->flows.load(std::memory_order_relaxed);
    state.last_deltas[i] = flows - state.last_flows[i];
    state.last_flows[i] = flows;
    total_delta += state.last_deltas[i];
  }
  const bool rebalance = config_.rebalance_cut && total_delta > 0 &&
                         config_.rebalance_depth > 0;

  state.cut.clear();
  state.cut_set.clear();
  std::uint32_t next_shard = 0;
  // A member is hot when its slots carried more than rebalance_factor
  // times the fair per-shard share of the family's flows last interval;
  // hot members are expanded below the shard depth so their stage-2 work
  // splits into more parallel units.
  const std::function<void(RangeNode&, int, bool)> emit_member =
      [&](RangeNode& node, int depth, bool hot) {
        if (hot && !node.is_leaf() &&
            depth < config_.shard_bits + config_.rebalance_depth) {
          emit_member(*state.trie.child(node, 0), depth + 1, true);
          emit_member(*state.trie.child(node, 1), depth + 1, true);
          return;
        }
        state.cut.push_back(node.index());
        state.cut_set.insert(node.index());
      };
  // Depth-first in address order: a cut member at depth d <= k covers the
  // next 2^(k - d) shards, all owned by its first shard's slot.
  const std::function<void(RangeNode&, int)> walk = [&](RangeNode& node,
                                                        int depth) {
    if (node.is_leaf() || depth >= config_.shard_bits) {
      const std::uint32_t slot = next_shard;
      const std::uint32_t span = static_cast<std::uint32_t>(
          std::size_t{1} << (config_.shard_bits - depth));
      std::uint64_t member_delta = 0;
      for (std::uint32_t s = 0; s < span; ++s) {
        member_delta += state.last_deltas[next_shard];
        state.owner[next_shard++] = slot;
      }
      const bool hot =
          rebalance && static_cast<double>(member_delta) *
                               static_cast<double>(shard_count_) >
                           config_.rebalance_factor *
                               static_cast<double>(total_delta);
      emit_member(node, depth, hot);
      return;
    }
    walk(*state.trie.child(node, 0), depth + 1);
    walk(*state.trie.child(node, 1), depth + 1);
  };
  walk(state.trie.root(), 0);
  assert(next_shard == shard_count_);
}

// ---------------------------------------------------------------------------
// Stage 1

void ShardedEngine::ingest(util::Timestamp ts, const net::IpAddress& src_ip,
                           topology::LinkId ingress,
                           std::uint64_t weight) noexcept {
  const std::shared_lock<obs::InstrumentedSharedMutex> lock(structure_mutex_);
  FamilyState& state = family_state(src_ip.family());
  const net::IpAddress masked =
      src_ip.masked(params_.cidr_max(src_ip.family()));
  const std::size_t slot_idx = slot_index(state, masked);
  Slot& slot = *state.slots[slot_idx];
  const std::lock_guard<obs::InstrumentedMutex> guard(slot.mutex);
  state.trie.locate(masked).add_sample(ts, masked, ingress, weight);
  slot.flows.fetch_add(1, std::memory_order_relaxed);
  if (metrics_) slot.deltas.record(src_ip.family(), ingress, weight);
  if (flow_trace_) {
    const std::uint64_t id = obs::FlowTracer::flow_id(ts, masked, ingress);
    if (flow_trace_->sampled(id)) {
      const auto shard = static_cast<std::uint32_t>(slot_idx);
      if (flow_trace_synth_decode_) {
        flow_trace_->record(id, obs::FlowHopKind::Decode, ts, masked, ingress);
      }
      flow_trace_->record(id, obs::FlowHopKind::ShardRoute, ts, masked,
                          ingress, shard);
      flow_trace_->record(id, obs::FlowHopKind::TrieApply, ts, masked,
                          ingress, shard);
    }
  }
}

std::unique_ptr<ShardedEngine::Staging> ShardedEngine::acquire_staging() {
  {
    const std::lock_guard<obs::InstrumentedMutex> lock(staging_mutex_);
    if (!staging_pool_.empty()) {
      auto staging = std::move(staging_pool_.back());
      staging_pool_.pop_back();
      return staging;
    }
  }
  auto staging = std::make_unique<Staging>();
  staging->buckets.resize(2 * shard_count_);
  staging->leaves.resize(2 * shard_count_);
  return staging;
}

void ShardedEngine::release_staging(std::unique_ptr<Staging> staging) {
  for (const std::uint32_t b : staging->active) staging->buckets[b].clear();
  staging->active.clear();
  const std::lock_guard<obs::InstrumentedMutex> lock(staging_mutex_);
  staging_pool_.push_back(std::move(staging));
}

void ShardedEngine::ingest_bucket(std::size_t bucket,
                                  Staging& staging) noexcept {
  // Bucket layout: [v4 slots][v6 slots]; bucket == owning slot.
  FamilyState& state = bucket < shard_count_ ? v4_ : v6_;
  const std::size_t slot_idx = bucket % shard_count_;
  Slot& slot = *state.slots[slot_idx];
  const std::vector<PreparedSample>& samples = staging.buckets[bucket];
  std::vector<RangeNode*>& leaves = staging.leaves[bucket];
  const std::lock_guard<obs::InstrumentedMutex> guard(slot.mutex);
  // Locate first (read-only, interleaved descents hide each other's
  // misses — stage 1 never splits, so leaves match a sequential walk),
  // then apply in arrival order with the per-IP probe prefetched ahead.
  leaves.resize(samples.size());
  state.trie.locate_many(
      samples.size(),
      [&](std::size_t k) -> const net::IpAddress& { return samples[k].ip; },
      [&](std::size_t k, RangeNode& leaf) { leaves[k] = &leaf; });
  constexpr std::size_t kApplyAhead = 8;
  for (std::size_t k = 0; k < samples.size(); ++k) {
    if (k + kApplyAhead < samples.size()) {
      leaves[k + kApplyAhead]->ips().prefetch(samples[k + kApplyAhead].ip);
    }
    const PreparedSample& s = samples[k];
    leaves[k]->add_sample(s.ts, s.ip, s.link, s.weight);
    if (metrics_) slot.deltas.record(state.family, s.link, s.weight);
    if (s.flow_id != 0 && flow_trace_ != nullptr) {
      flow_trace_->record(s.flow_id, obs::FlowHopKind::TrieApply, s.ts, s.ip,
                          s.link, static_cast<std::uint32_t>(slot_idx));
    }
  }
  slot.flows.fetch_add(samples.size(), std::memory_order_relaxed);
}

void ShardedEngine::ingest_batch(
    std::span<const netflow::FlowRecord> records) noexcept {
  if (records.empty()) return;
  // Scope covers the submitting thread only: bucketing plus its share of
  // the fan-out (it participates in pool_->run). Per-bucket scopes would
  // cost two syscalls per cut member per batch — too much; true per-worker
  // attribution comes from the rdpmc samplers during stage 2 instead.
  const obs::PerfScope perf_scope(perf_, perf_stage1_);
  const std::shared_lock<obs::InstrumentedSharedMutex> lock(structure_mutex_);
  auto staging = acquire_staging();
  // Bucket in record order, so each cut member sees its records in exactly
  // the order a sequential engine would process them.
  for (const netflow::FlowRecord& record : records) {
    const net::Family family = record.src_ip.family();
    const FamilyState& state = family_state(family);
    const net::IpAddress masked =
        record.src_ip.masked(params_.cidr_max(family));
    const std::uint64_t weight =
        params_.count_mode == CountMode::Bytes
            ? std::max<std::uint64_t>(record.bytes, 1)
            : 1;
    const std::size_t bucket = bucket_of(state, masked);
    std::vector<PreparedSample>& samples = staging->buckets[bucket];
    if (samples.empty()) {
      staging->active.push_back(static_cast<std::uint32_t>(bucket));
    }
    std::uint64_t flow_id = 0;
    if (flow_trace_ != nullptr) {
      const std::uint64_t id =
          obs::FlowTracer::flow_id(record.ts, masked, record.ingress);
      if (flow_trace_->sampled(id)) {
        flow_id = id;
        if (flow_trace_synth_decode_) {
          flow_trace_->record(id, obs::FlowHopKind::Decode, record.ts, masked,
                              record.ingress);
        }
        flow_trace_->record(
            id, obs::FlowHopKind::ShardRoute, record.ts, masked,
            record.ingress, static_cast<std::uint32_t>(bucket % shard_count_));
      }
    }
    samples.push_back(
        PreparedSample{record.ts, masked, record.ingress, weight, flow_id});
  }
  fan_out(std::move(staging));
}

void ShardedEngine::apply_batch(const netflow::FlowBatch& batch) noexcept {
  const std::size_t n = batch.size();
  if (n == 0) return;
  // Same routing as ingest_batch, reading the SoA columns directly: rows
  // are bucketed per lock slot in arrival order, so each cut member sees
  // its records in exactly the sequential order.
  const obs::PerfScope perf_scope(perf_, perf_stage1_);
  const std::shared_lock<obs::InstrumentedSharedMutex> lock(structure_mutex_);
  auto staging = acquire_staging();
  const bool bytes_mode = params_.count_mode == CountMode::Bytes;
  for (std::size_t i = 0; i < n; ++i) {
    const net::IpAddress& src = batch.src_ip[i];
    const net::Family family = src.family();
    const FamilyState& state = family_state(family);
    const net::IpAddress masked = src.masked(params_.cidr_max(family));
    const std::uint64_t weight =
        bytes_mode ? std::max<std::uint64_t>(batch.bytes[i], 1) : 1;
    const std::size_t bucket = bucket_of(state, masked);
    std::vector<PreparedSample>& samples = staging->buckets[bucket];
    if (samples.empty()) {
      staging->active.push_back(static_cast<std::uint32_t>(bucket));
    }
    const util::Timestamp ts = batch.ts[i];
    const topology::LinkId ingress = batch.ingress[i];
    std::uint64_t flow_id = 0;
    if (flow_trace_ != nullptr) {
      const std::uint64_t id = obs::FlowTracer::flow_id(ts, masked, ingress);
      if (flow_trace_->sampled(id)) {
        flow_id = id;
        if (flow_trace_synth_decode_) {
          flow_trace_->record(id, obs::FlowHopKind::Decode, ts, masked,
                              ingress);
        }
        flow_trace_->record(
            id, obs::FlowHopKind::ShardRoute, ts, masked, ingress,
            static_cast<std::uint32_t>(bucket % shard_count_));
      }
    }
    samples.push_back(PreparedSample{ts, masked, ingress, weight, flow_id});
  }
  fan_out(std::move(staging));
}

void ShardedEngine::fan_out(std::unique_ptr<Staging> staging) noexcept {
  // Queue-delay baseline: the fan-out hand-off point. Workers subtract it
  // when they pick a bucket up, so the histogram captures pool scheduling
  // latency, not the bucket's own trie work.
  const std::int64_t fanout_ns =
      shard_queue_delay_.empty() ? 0 : obs::monotonic_ns();
  const std::vector<std::uint32_t>& active = staging->active;
  pool_->run(active.size(),
             [this, staging = staging.get(), fanout_ns](std::size_t i) {
    const std::uint32_t bucket = staging->active[i];
    if (fanout_ns != 0) {
      if (obs::Histogram* hist = queue_delay_hist(bucket % shard_count_)) {
        hist->observe(
            static_cast<double>(obs::monotonic_ns() - fanout_ns) * 1e-9);
      }
    }
    ingest_bucket(bucket, *staging);
  });
  release_staging(std::move(staging));
}

// ---------------------------------------------------------------------------
// Stage 2

void ShardedEngine::spine_pass(FamilyState& state, RangeNode& node,
                               util::Timestamp now, CycleStats& out,
                               PhaseAccum& phases, const CycleSinks& sinks) {
  // Post-order over the spine only (internal nodes above the cut): every
  // cut member's subtree, and every leaf, already ran inside its member's
  // pass. Membership is tested against the cut itself rather than a fixed
  // depth — the load-aware rebalancer can hold members below the shard
  // depth. This reproduces the tail of the sequential post-order walk,
  // including same-cycle join cascades up the spine.
  if (node.state() != RangeNode::State::Internal ||
      state.cut_set.count(node.index()) != 0) {
    return;
  }
  spine_pass(state, *state.trie.child(node, 0), now, out, phases, sinks);
  spine_pass(state, *state.trie.child(node, 1), now, out, phases, sinks);
  join_or_compact(state.trie, node, params_, now, out, phases, sinks);
}

void ShardedEngine::cycle_family(FamilyState& state, util::Timestamp now,
                                 CycleStats& out, PhaseAccum& phases) {
  const CycleSinks global_sinks{decision_log_, cycle_deltas_};
  const std::size_t units = state.cut.size();
  if (units <= 1) {
    // One unit means the cut is the root itself (unrefined family, or
    // shard_bits == 0): the plain sequential pass, global sinks inline.
    cycle_over_trie(state.trie, params_, now, out, phases, global_sinks);
    rebuild_cut(state);
    return;
  }

  // Parallel per-unit cycles. Decisions and transitions go to per-unit
  // buffers so the parallel section never contends on the global logs,
  // then drain in cut (address) order for a deterministic sequence.
  struct UnitResult {
    CycleStats stats;
    PhaseAccum phases;
    std::unique_ptr<DecisionLog> decisions;
    std::unique_ptr<CycleDeltaLog> transitions;
  };
  std::vector<UnitResult> results(units);
  for (UnitResult& r : results) {
    r.phases.enabled = phases.enabled;
    if (decision_log_) {
      r.decisions = std::make_unique<DecisionLog>(kUnitSinkCapacity);
    }
    if (cycle_deltas_) {
      r.transitions = std::make_unique<CycleDeltaLog>(kUnitSinkCapacity);
    }
  }
  pool_->run(units, [&](std::size_t i) {
    // thread_sampler() binds to the *executing* thread (worker or caller),
    // so each unit's rdpmc reads hit that thread's own counter group.
    if (perf_ != nullptr) {
      results[i].phases.sampler = perf_->thread_sampler();
      if (results[i].phases.sampler != nullptr) {
        results[i].phases.enabled = true;
      }
    }
    const CycleSinks sinks{results[i].decisions.get(),
                           results[i].transitions.get()};
    cycle_over_subtree(state.trie, state.trie.node(state.cut[i]), params_, now,
                       results[i].stats, results[i].phases, sinks);
  });
  for (UnitResult& r : results) {
    out.classifications += r.stats.classifications;
    out.splits += r.stats.splits;
    out.joins += r.stats.joins;
    out.drops += r.stats.drops;
    out.compactions += r.stats.compactions;
    for (std::size_t p = 0; p < kNumCyclePhases; ++p) {
      phases.ns[p] += r.phases.ns[p];
      phases.perf[p].cycles += r.phases.perf[p].cycles;
      phases.perf[p].instructions += r.phases.perf[p].instructions;
      phases.perf[p].llc_misses += r.phases.perf[p].llc_misses;
    }
    if (r.decisions) {
      for (DecisionEvent event : r.decisions->snapshot()) {
        decision_log_->record(event);  // re-stamps the global sequence
      }
    }
    if (r.transitions) {
      for (RangeTransition& t : r.transitions->drain()) {
        cycle_deltas_->push(std::move(t));
      }
    }
  }

  // Cross-unit merge: the sequential walk's spine tail (join/compact over
  // internal nodes above the cut, post-order so joins cascade), then
  // re-derive the cut from whatever the cycle did to the top k levels.
  spine_pass(state, state.trie.root(), now, out, phases, global_sinks);
  rebuild_cut(state);
}

CycleStats ShardedEngine::run_cycle(util::Timestamp now) {
  const std::unique_lock<obs::InstrumentedSharedMutex> lock(structure_mutex_);
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t trace_t0 = tracer_ ? tracer_->now_us() : 0;
  obs::PerfScope perf_scope(perf_, perf_stage2_);
  CycleStats out;
  out.now = now;
  PhaseAccum phases{metrics_ != nullptr || tracer_ != nullptr, {}};
  if (perf_ != nullptr) {
    // Calling-thread sampler covers the single-unit path and spine passes;
    // workers pick up their own inside cycle_family.
    phases.sampler = perf_->thread_sampler();
    if (phases.sampler != nullptr) phases.enabled = true;
  }
  cycle_family(v4_, now, out, phases);
  cycle_family(v6_, now, out, phases);

  // Partition census after all structural changes. The public
  // for_each_leaf would re-take the (non-reentrant) structure lock, so
  // walk the tries directly.
  for (const FamilyState* state : {&v4_, &v6_}) {
    state->trie.for_each_leaf([&out](const RangeNode& leaf) {
      ++out.ranges_total;
      if (leaf.state() == RangeNode::State::Classified) {
        ++out.ranges_classified;
      } else {
        ++out.ranges_monitoring;
        out.tracked_ips += leaf.ips().size();
      }
    });
    out.memory_bytes += state->trie.memory_bytes();
  }
  if (metrics_) out.memory_bytes += metrics_->registry().memory_bytes();
  if (decision_log_) out.memory_bytes += decision_log_->memory_bytes();
  if (tracer_) out.memory_bytes += tracer_->memory_bytes();
  if (perf_) out.memory_bytes += perf_->memory_bytes();

  for (std::size_t i = 0; i < kNumCyclePhases; ++i) {
    out.phase_micros[i] = phases.ns[i] / 1000;
  }
  out.cycle_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  cycles_run_.fetch_add(1, std::memory_order_relaxed);
  total_classifications_.fetch_add(out.classifications,
                                   std::memory_order_relaxed);
  total_splits_.fetch_add(out.splits, std::memory_order_relaxed);
  total_joins_.fetch_add(out.joins, std::memory_order_relaxed);
  total_drops_.fetch_add(out.drops, std::memory_order_relaxed);
  if (metrics_) publish_cycle_metrics(out, phases);
  if (perf_ != nullptr) {
    for (std::size_t i = 0; i < kNumCyclePhases; ++i) {
      perf_->add_phase_point(perf_phase_ids_[i], phases.perf[i]);
    }
  }
  const bool perf_active = perf_scope.active();
  const obs::PerfReading perf_delta = perf_scope.close();
  if (tracer_) {
    std::int64_t cursor = trace_t0;
    for (std::size_t i = 0; i < kNumCyclePhases; ++i) {
      const std::int64_t dur = phases.ns[i] / 1000;
      tracer_->span(kPhaseSpan[i], cursor, dur, {}, kStage2Lane);
      cursor += dur;
    }
    tracer_->span("stage2.cycle", trace_t0, tracer_->now_us() - trace_t0,
                  {{"classifications", static_cast<double>(out.classifications)},
                   {"splits", static_cast<double>(out.splits)},
                   {"joins", static_cast<double>(out.joins)},
                   {"drops", static_cast<double>(out.drops)}},
                  kStage2Lane);
    // Counter deltas ride a companion span (stage2.cycle already carries
    // its four structural-event args). Calling-thread counters only — the
    // per-worker share shows up in the rdpmc per-phase totals.
    if (perf_active) {
      const auto cycles =
          static_cast<double>(perf_delta[obs::PerfEvent::Cycles]);
      const auto instructions =
          static_cast<double>(perf_delta[obs::PerfEvent::Instructions]);
      tracer_->span(
          "stage2.perf", trace_t0, tracer_->now_us() - trace_t0,
          {{"cycles", cycles},
           {"instructions", instructions},
           {"llc_misses",
            static_cast<double>(perf_delta[obs::PerfEvent::LlcMisses])},
           {"ipc", cycles > 0.0 ? instructions / cycles : 0.0}},
          kStage2Lane);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Read surface

EngineStats ShardedEngine::stats() const noexcept {
  // Flow counters are cumulative per slot and slots never move, so the sum
  // is the lifetime total without taking the structure lock.
  EngineStats out;
  for (const FamilyState* state : {&v4_, &v6_}) {
    for (const auto& slot : state->slots) {
      out.flows_ingested += slot->flows.load(std::memory_order_relaxed);
    }
  }
  out.cycles_run = cycles_run_.load(std::memory_order_relaxed);
  out.total_classifications =
      total_classifications_.load(std::memory_order_relaxed);
  out.total_splits = total_splits_.load(std::memory_order_relaxed);
  out.total_joins = total_joins_.load(std::memory_order_relaxed);
  out.total_drops = total_drops_.load(std::memory_order_relaxed);
  return out;
}

void ShardedEngine::for_each_leaf(
    net::Family family,
    const std::function<void(const RangeNode&)>& fn) const {
  const std::shared_lock<obs::InstrumentedSharedMutex> lock(structure_mutex_);
  const FamilyState& state = family_state(family);
  // Cut order == address order, so concatenating the per-member in-order
  // walks (each under its slot's mutex, shutting out that member's
  // writers) yields exactly the sequential engine's leaf order.
  for (const NodeIndex index : state.cut) {
    const RangeNode& member = state.trie.node(index);
    const std::size_t slot = shard_index(member.prefix().address());
    const std::lock_guard<obs::InstrumentedMutex> guard(state.slots[slot]->mutex);
    state.trie.for_each_leaf_from(member, fn);
  }
}

std::string ShardedEngine::shards_json() const {
  const std::shared_lock<obs::InstrumentedSharedMutex> lock(structure_mutex_);
  std::string out = "{";
  out += util::format("\"shard_bits\":%d,", config_.shard_bits);
  out += util::format("\"shard_count\":%zu,", shard_count_);
  out += util::format("\"rebalance_cut\":%s,",
                      config_.rebalance_cut ? "true" : "false");
  out += util::format("\"rebalance_factor\":%g,", config_.rebalance_factor);
  out += util::format("\"rebalance_depth\":%d,", config_.rebalance_depth);
  out += "\"families\":[";
  bool first_family = true;
  for (const FamilyState* state : {&v4_, &v6_}) {
    if (!first_family) out += ",";
    first_family = false;
    out += util::format(
        "{\"family\":\"%s\",",
        state->family == net::Family::V4 ? "v4" : "v6");
    std::uint64_t total = 0;
    std::uint64_t max_delta = 0;
    out += "\"slots\":[";
    for (std::size_t i = 0; i < shard_count_; ++i) {
      const std::uint64_t delta =
          i < state->last_deltas.size() ? state->last_deltas[i] : 0;
      total += delta;
      max_delta = std::max(max_delta, delta);
      out += util::format(
          "%s{\"slot\":%zu,\"flows\":%llu,\"interval_flows\":%llu}",
          i == 0 ? "" : ",", i,
          static_cast<unsigned long long>(
              state->slots[i]->flows.load(std::memory_order_relaxed)),
          static_cast<unsigned long long>(delta));
    }
    out += "],";
    const double mean =
        static_cast<double>(total) / static_cast<double>(shard_count_);
    out += util::format(
        "\"imbalance_ratio\":%g,",
        mean > 0.0 ? static_cast<double>(max_delta) / mean : 1.0);
    out += "\"cut_members\":[";
    for (std::size_t i = 0; i < state->cut.size(); ++i) {
      const RangeNode& member = state->trie.node(state->cut[i]);
      const std::size_t slot = state->owner.empty()
                                   ? 0
                                   : state->owner[shard_index(
                                         member.prefix().address())];
      out += util::format(
          "%s{\"prefix\":\"%s\",\"depth\":%d,\"slot\":%zu,"
          "\"leaf\":%s}",
          i == 0 ? "" : ",",
          util::json_escape(member.prefix().to_string()).c_str(),
          member.prefix().length(), slot,
          member.is_leaf() ? "true" : "false");
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

const RangeNode& ShardedEngine::locate(const net::IpAddress& ip) const {
  const std::shared_lock<obs::InstrumentedSharedMutex> lock(structure_mutex_);
  const FamilyState& state = family_state(ip.family());
  const net::IpAddress masked = ip.masked(params_.cidr_max(ip.family()));
  Slot& slot = *state.slots[slot_index(state, masked)];
  const std::lock_guard<obs::InstrumentedMutex> guard(slot.mutex);
  return const_cast<IpdTrie&>(state.trie).locate(masked);
}

// ---------------------------------------------------------------------------
// Metrics plumbing

void ShardedEngine::flush_one_delta(IngestDeltas& deltas) {
  for (int f = 0; f < 2; ++f) {
    if (deltas.flows[f] == 0) continue;
    metrics_->add_ingest_deltas(f == 0 ? net::Family::V4 : net::Family::V6,
                                deltas.flows[f], deltas.weight[f]);
    deltas.flows[f] = 0;
    deltas.weight[f] = 0;
  }
  for (const auto& [key, count] : deltas.link_flows) {
    metrics_->link_counter(link_from_key(key)).inc(count);
  }
  deltas.link_flows.clear();
}

void ShardedEngine::flush_deltas_locked() {
  // Caller holds the exclusive structure lock, so no slot mutexes are
  // needed: no ingest can be in flight.
  std::size_t gauge = 0;
  for (FamilyState* state : {&v4_, &v6_}) {
    for (const auto& slot : state->slots) {
      flush_one_delta(slot->deltas);
      if (gauge < shard_flows_.size()) {
        shard_flows_[gauge]->set(static_cast<double>(
            slot->flows.load(std::memory_order_relaxed)));
      }
      ++gauge;
    }
  }
}

void ShardedEngine::flush_ingest_metrics() {
  const std::unique_lock<obs::InstrumentedSharedMutex> lock(structure_mutex_);
  if (!metrics_) return;
  flush_deltas_locked();
  metrics_->flush_ingest();
}

void ShardedEngine::publish_cycle_metrics(const CycleStats& out,
                                          const PhaseAccum& phases) {
  EngineMetrics& m = *metrics_;
  flush_deltas_locked();
  m.cycles_total->inc();
  m.cycle_seconds->observe(static_cast<double>(out.cycle_micros) * 1e-6);
  for (std::size_t i = 0; i < kNumCyclePhases; ++i) {
    m.phase_seconds[i]->observe(static_cast<double>(phases.ns[i]) * 1e-9);
  }
  m.events[static_cast<std::size_t>(CyclePhase::Expire)]->inc(out.drops);
  m.events[static_cast<std::size_t>(CyclePhase::Classify)]->inc(
      out.classifications);
  m.events[static_cast<std::size_t>(CyclePhase::Split)]->inc(out.splits);
  m.events[static_cast<std::size_t>(CyclePhase::Join)]->inc(out.joins);
  m.events[static_cast<std::size_t>(CyclePhase::Compact)]->inc(
      out.compactions);
  for (const FamilyState* state : {&v4_, &v6_}) {
    const int f = family_index(state->family);
    m.trie_nodes[f]->set(static_cast<double>(state->trie.node_count()));
    m.trie_leaves[f]->set(static_cast<double>(state->trie.leaf_count()));
    m.trie_memory[f]->set(static_cast<double>(state->trie.memory_bytes()));
    // Occupancy + balance from the deltas measured at this cycle's cut
    // republish.
    std::uint64_t total = 0;
    std::uint64_t max_delta = 0;
    for (const std::uint64_t d : state->last_deltas) {
      shard_occupancy_->observe(static_cast<double>(d));
      total += d;
      max_delta = std::max(max_delta, d);
    }
    const double mean = static_cast<double>(total) /
                        static_cast<double>(std::max<std::size_t>(
                            state->last_deltas.size(), 1));
    shard_imbalance_[f]->set(mean > 0.0 ? static_cast<double>(max_delta) / mean
                                        : 1.0);
    cut_members_[f]->set(static_cast<double>(state->cut.size()));
  }
  m.ranges_classified->set(static_cast<double>(out.ranges_classified));
  m.ranges_monitoring->set(static_cast<double>(out.ranges_monitoring));
  m.tracked_ips->set(static_cast<double>(out.tracked_ips));
  m.memory_bytes->set(static_cast<double>(out.memory_bytes));
}

}  // namespace ipd::core
