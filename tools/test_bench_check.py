#!/usr/bin/env python3
"""Unit tests for the bench_check.py regression gate.

The gate's status-tuple logic (ok / FAIL / skip) decides whether CI merges
a PR, so it gets the same treatment as any other tier-1 code: resolve()
path walking, every check kind, the --allow-missing downgrade rules, and
main()'s exit codes for missing artifacts and malformed baselines.

Run directly (python3 tools/test_bench_check.py) or via ctest.
"""

import importlib.util
import json
import pathlib
import sys
import tempfile
import unittest
from unittest import mock

_HERE = pathlib.Path(__file__).resolve().parent
_SPEC = importlib.util.spec_from_file_location(
    "bench_check", _HERE / "bench_check.py")
bench_check = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_check)


class ResolveTest(unittest.TestCase):
    DOC = {"a": {"b": 3.5}, "rows": [{"x": 1}, {"x": 2}], "n": 7}

    def test_walks_nested_dicts(self):
        self.assertEqual(bench_check.resolve(self.DOC, "a.b"), 3.5)

    def test_numeric_parts_index_arrays(self):
        self.assertEqual(bench_check.resolve(self.DOC, "rows.1.x"), 2)

    def test_top_level_key(self):
        self.assertEqual(bench_check.resolve(self.DOC, "n"), 7)

    def test_missing_key_raises(self):
        with self.assertRaises(KeyError):
            bench_check.resolve(self.DOC, "a.nope")

    def test_bad_index_raises(self):
        with self.assertRaises(IndexError):
            bench_check.resolve(self.DOC, "rows.9.x")

    def test_non_numeric_index_raises(self):
        with self.assertRaises(ValueError):
            bench_check.resolve(self.DOC, "rows.x")

    def test_walking_into_scalar_raises(self):
        with self.assertRaises(KeyError):
            bench_check.resolve(self.DOC, "n.deeper")


class RunCheckTest(unittest.TestCase):
    DOC = {"overhead_pct": {"e2e": 2.5}, "budget": 3.0, "rows": [1, 2, 3]}

    def check(self, **kwargs):
        return bench_check.run_check(self.DOC, kwargs)

    def test_max_within_bound_is_ok(self):
        status, _ = self.check(path="overhead_pct.e2e", max=3.0)
        self.assertEqual(status, "ok")

    def test_max_bound_is_inclusive(self):
        status, _ = self.check(path="overhead_pct.e2e", max=2.5)
        self.assertEqual(status, "ok")

    def test_regression_past_max_fails(self):
        status, message = self.check(path="overhead_pct.e2e", max=2.0)
        self.assertEqual(status, "FAIL")
        self.assertIn("<= 2", message)

    def test_min_bound(self):
        self.assertEqual(self.check(path="budget", min=3.0)[0], "ok")
        self.assertEqual(self.check(path="budget", min=3.1)[0], "FAIL")

    def test_min_and_max_band(self):
        status, _ = self.check(path="budget", min=2.0, max=4.0)
        self.assertEqual(status, "ok")
        status, _ = self.check(path="budget", min=3.5, max=4.0)
        self.assertEqual(status, "FAIL")

    def test_equals_exact_by_default(self):
        self.assertEqual(self.check(path="budget", equals=3.0)[0], "ok")
        self.assertEqual(self.check(path="budget", equals=3.01)[0], "FAIL")

    def test_equals_with_tolerance(self):
        status, _ = self.check(path="budget", equals=3.01, tol=0.05)
        self.assertEqual(status, "ok")
        status, _ = self.check(path="budget", equals=3.2, tol=0.05)
        self.assertEqual(status, "FAIL")

    def test_len_check(self):
        self.assertEqual(self.check(path="rows", len=3)[0], "ok")
        self.assertEqual(self.check(path="rows", len=4)[0], "FAIL")

    def test_missing_path_fails_by_default(self):
        status, message = self.check(path="overhead_pct.nope", max=3.0)
        self.assertEqual(status, "FAIL")
        self.assertIn("missing", message)

    def test_missing_path_skips_with_allow_missing(self):
        status, message = bench_check.run_check(
            self.DOC, {"path": "overhead_pct.nope", "max": 3.0},
            allow_missing=True)
        self.assertEqual(status, "skip")
        self.assertIn("allowed", message)

    def test_non_numeric_value_fails_even_with_allow_missing(self):
        doc = {"name": "flow_trace"}
        status, _ = bench_check.run_check(
            doc, {"path": "name", "max": 3.0}, allow_missing=True)
        self.assertEqual(status, "FAIL")

    def test_bool_is_rejected_as_numeric(self):
        doc = {"flag": True}
        status, _ = bench_check.run_check(doc, {"path": "flag", "max": 3.0})
        self.assertEqual(status, "FAIL")

    def test_constraintless_check_fails(self):
        status, message = self.check(path="budget")
        self.assertEqual(status, "FAIL")
        self.assertIn("no constraint", message)


class MainTest(unittest.TestCase):
    """Exit-code behaviour with real files in a temp tree."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        root = pathlib.Path(self._tmp.name)
        self.baselines = root / "baselines"
        self.artifacts = root / "artifacts"
        self.baselines.mkdir()
        self.artifacts.mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, directory, name, doc):
        (directory / name).write_text(json.dumps(doc))

    def run_main(self, *extra):
        argv = ["bench_check.py", "--baselines", str(self.baselines),
                "--artifacts", str(self.artifacts), *extra]
        with mock.patch.object(sys, "argv", argv):
            return bench_check.main()

    def test_all_passing_returns_zero(self):
        self.write(self.baselines, "t.json", {
            "artifact": "BENCH_t.json",
            "checks": [{"path": "overhead", "max": 3.0}]})
        self.write(self.artifacts, "BENCH_t.json", {"overhead": 1.0})
        self.assertEqual(self.run_main(), 0)

    def test_failing_check_returns_one(self):
        self.write(self.baselines, "t.json", {
            "artifact": "BENCH_t.json",
            "checks": [{"path": "overhead", "max": 3.0}]})
        self.write(self.artifacts, "BENCH_t.json", {"overhead": 9.0})
        self.assertEqual(self.run_main(), 1)

    def test_missing_artifact_fails_without_allow_missing(self):
        self.write(self.baselines, "t.json", {
            "artifact": "BENCH_t.json",
            "checks": [{"path": "overhead", "max": 3.0}]})
        self.assertEqual(self.run_main(), 1)

    def test_missing_artifact_skips_with_allow_missing(self):
        self.write(self.baselines, "t.json", {
            "artifact": "BENCH_t.json",
            "checks": [{"path": "overhead", "max": 3.0}]})
        self.assertEqual(self.run_main("--allow-missing"), 0)

    def test_missing_path_skips_with_allow_missing(self):
        self.write(self.baselines, "t.json", {
            "artifact": "BENCH_t.json",
            "checks": [{"path": "cycles_per_op", "max": 100.0}]})
        self.write(self.artifacts, "BENCH_t.json", {"overhead": 1.0})
        self.assertEqual(self.run_main("--allow-missing"), 0)
        self.assertEqual(self.run_main(), 1)

    def test_malformed_baseline_fails_even_with_allow_missing(self):
        self.write(self.baselines, "t.json", {"checks": []})  # no artifact
        self.assertEqual(self.run_main("--allow-missing"), 1)

    def test_check_without_path_fails(self):
        self.write(self.baselines, "t.json", {
            "artifact": "BENCH_t.json", "checks": [{"max": 3.0}]})
        self.write(self.artifacts, "BENCH_t.json", {"overhead": 1.0})
        self.assertEqual(self.run_main(), 1)

    def test_empty_baseline_dir_returns_two(self):
        self.assertEqual(self.run_main(), 2)

    def test_one_failure_among_many_checks_still_fails(self):
        self.write(self.baselines, "t.json", {
            "artifact": "BENCH_t.json",
            "checks": [{"path": "a", "max": 3.0},
                       {"path": "b", "min": 1.0}]})
        self.write(self.artifacts, "BENCH_t.json", {"a": 1.0, "b": 0.5})
        self.assertEqual(self.run_main(), 1)


if __name__ == "__main__":
    unittest.main()
