#!/usr/bin/env python3
"""Bench regression gate: compare fresh BENCH_*.json artifacts against
committed baselines.

Each baseline file in --baselines names one artifact and a list of checks
over dot-separated paths into its JSON (numeric components index arrays):

    {
      "artifact": "BENCH_obs_overhead.json",
      "checks": [
        {"path": "overhead_pct.tsdb_health_e2e", "max": 3.0},
        {"path": "throughput_flows_per_s.bare", "min": 100000},
        {"path": "budget_pct", "equals": 3.0},
        {"path": "rows", "len": 9}
      ]
    }

Check kinds: "max" / "min" (inclusive numeric bounds), "equals" (numeric
with optional "tol", default exact), "len" (container length). Thresholds
are chosen to be machine-robust — ratios, budgets and generous structural
floors rather than absolute wall-clock numbers.

Exit status is non-zero when any check fails or an expected artifact is
missing, so CI can gate on it directly. With --allow-missing, a missing
artifact file or a missing path inside one downgrades to "skip" instead of
failing: benches emit hardware-counter keys (cycles_per_op, ipc, ...) only
on machines whose PMU is exposed, and CI containers typically run without
one. Malformed checks (bad bounds, wrong types) still fail either way.
"""

import argparse
import json
import pathlib
import sys


def resolve(doc, path):
    """Walk `doc` along a dot-separated path; numeric parts index arrays."""
    node = doc
    for part in path.split("."):
        if isinstance(node, list):
            node = node[int(part)]
        elif isinstance(node, dict):
            node = node[part]
        else:
            raise KeyError(part)
    return node


def run_check(doc, check, allow_missing=False):
    """Returns (status, message) for one check against one artifact.
    Status is "ok", "FAIL", or "skip" (missing path under --allow-missing).
    """
    path = check["path"]
    try:
        value = resolve(doc, path)
    except (KeyError, IndexError, ValueError):
        if allow_missing:
            return "skip", f"{path}: missing from artifact (allowed)"
        return "FAIL", (f"{path}: missing from artifact "
                        f"(re-run with --allow-missing to skip new keys)")

    if "len" in check:
        want = check["len"]
        have = len(value)
        ok = have == want
        return ("ok" if ok else "FAIL",
                f"{path}: len {have} {'==' if ok else '!='} {want}")

    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return "FAIL", f"{path}: not numeric ({value!r})"

    if "equals" in check:
        want = check["equals"]
        tol = check.get("tol", 0.0)
        ok = abs(value - want) <= tol
        return ("ok" if ok else "FAIL",
                f"{path}: {value:g} == {want:g} (tol {tol:g})")

    parts = []
    ok = True
    if "min" in check:
        ok &= value >= check["min"]
        parts.append(f">= {check['min']:g}")
    if "max" in check:
        ok &= value <= check["max"]
        parts.append(f"<= {check['max']:g}")
    if not parts:
        return "FAIL", f"{path}: baseline check has no constraint"
    return ("ok" if ok else "FAIL",
            f"{path}: {value:g} {' and '.join(parts)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baselines", required=True,
                        help="directory of committed baseline JSON files")
    parser.add_argument("--artifacts", required=True,
                        help="directory holding fresh BENCH_*.json output")
    parser.add_argument("--allow-missing", action="store_true",
                        help="skip (instead of fail) missing artifacts and "
                             "missing paths, e.g. hardware-counter keys on "
                             "machines without an exposed PMU")
    args = parser.parse_args()

    baseline_dir = pathlib.Path(args.baselines)
    artifact_dir = pathlib.Path(args.artifacts)
    baselines = sorted(baseline_dir.glob("*.json"))
    if not baselines:
        print(f"bench_check: no baselines under {baseline_dir}",
              file=sys.stderr)
        return 2

    failures = 0
    skipped = 0
    for baseline_path in baselines:
        with open(baseline_path) as f:
            baseline = json.load(f)
        for key in ("artifact", "checks"):
            if key not in baseline:
                print(f"FAIL {baseline_path.name}: baseline is missing "
                      f"required key {key!r}")
                failures += 1
                baseline = None
                break
        if baseline is None:
            continue
        artifact_path = artifact_dir / baseline["artifact"]
        if not artifact_path.exists():
            if args.allow_missing:
                print(f"skip {baseline_path.name}: artifact "
                      f"{baseline['artifact']} not found in {artifact_dir} "
                      f"(allowed)")
                skipped += 1
            else:
                print(f"FAIL {baseline_path.name}: artifact "
                      f"{baseline['artifact']} not found in {artifact_dir}")
                failures += 1
            continue
        with open(artifact_path) as f:
            artifact = json.load(f)
        for check in baseline["checks"]:
            if "path" not in check:
                print(f"FAIL {baseline['artifact']}: check {check!r} has "
                      f"no 'path' key")
                failures += 1
                continue
            status, message = run_check(artifact, check, args.allow_missing)
            note = f"  [{check['note']}]" if "note" in check else ""
            print(f"{status:4} {baseline['artifact']}: {message}{note}")
            failures += 1 if status == "FAIL" else 0
            skipped += 1 if status == "skip" else 0

    if failures:
        print(f"bench_check: {failures} check(s) failed", file=sys.stderr)
        return 1
    tail = f" ({skipped} skipped)" if skipped else ""
    print(f"bench_check: all checks passed{tail}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
