// ipd_gen — generate a synthetic NetFlow trace file.
//
// Usage: ipd_gen <out.trace> [minutes=60] [flows_per_minute=20000] [seed=7]
//
// Writes a binary trace (see netflow/codec.hpp) from the paper-default
// synthetic ISP scenario, starting at simulated day 1, 18:00. The file can
// be replayed with ipd_replay or consumed programmatically via TraceReader.
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "netflow/codec.hpp"
#include "util/time.hpp"
#include "workload/generator.hpp"

using namespace ipd;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <out.trace> [minutes=60] [flows_per_minute=20000] "
                 "[seed=7]\n",
                 argv[0]);
    return 2;
  }
  const char* path = argv[1];
  const long minutes = argc > 2 ? std::atol(argv[2]) : 60;
  const long fpm = argc > 3 ? std::atol(argv[3]) : 20000;
  const long seed = argc > 4 ? std::atol(argv[4]) : 7;
  if (minutes <= 0 || fpm <= 0) {
    std::fprintf(stderr, "minutes and flows_per_minute must be positive\n");
    return 2;
  }

  workload::ScenarioConfig scenario = workload::paper_default();
  scenario.flows_per_minute = static_cast<std::uint64_t>(fpm);
  scenario.seed = static_cast<std::uint64_t>(seed);
  workload::FlowGenerator gen(scenario);

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  netflow::TraceWriter writer(out);
  const util::Timestamp t0 = util::kSecondsPerDay + 18 * util::kSecondsPerHour;
  gen.run(t0, t0 + minutes * util::kSecondsPerMinute,
          [&](const netflow::FlowRecord& r) { writer.write(r); });

  std::printf("wrote %llu flow records (%ld simulated minutes, seed %ld) to %s\n",
              static_cast<unsigned long long>(writer.records_written()), minutes,
              seed, path);
  std::printf("topology: %zu pops, %zu border routers, %zu ingress interfaces\n",
              gen.topology().pop_count(), gen.topology().router_count(),
              gen.topology().interface_count());
  std::printf("universe: %zu ASes (%zu tier-1 peers)\n",
              gen.universe().ases().size(),
              gen.universe().tier1_indices().size());
  return 0;
}
