// ipd_replay — run IPD over a recorded trace file.
//
// Usage: ipd_replay [flags] <in.trace> [ncidr_factor4=auto] [q=0.95]
//
//   --metrics-out=<file>    write a Prometheus text-exposition snapshot of
//                           the full metrics registry after the replay
//   --metrics-jsonl=<file>  append one JSON metrics line per 5-minute bin
//   --log-json              emit structured log lines as JSON
//   --http-port=<port>      serve the live introspection endpoints
//                           (/healthz /metrics /ranges /explain /decisions
//                           /trace) on 127.0.0.1:<port> while replaying
//                           (0 picks an ephemeral port, printed on start)
//   --trace-out=<file>      attach the flight-recorder tracer; write the
//                           Chrome trace-event JSON to <file> at exit and
//                           to <file>.crash on a fatal signal
//   --decision-log[=N]      record stage-2 decisions into a ring of N
//                           events (default 8192); surfaced by /explain
//                           and /decisions
//   --alerts-out=<file>     append one JSON line per health-alert event
//                           (raise and resolve) from the health engine
//   --linger=<seconds>      keep serving HTTP for this long after the
//                           replay finishes (for scrapes / smoke tests)
//   --shards=<N>            run the sharded parallel engine with N shards
//                           per family (power of two, 1..65536) instead of
//                           the sequential engine
//   --ingest-threads=<M>    worker threads for the sharded engine's
//                           stage-1 fan-out and stage-2 shard cycles
//                           (default 1; implies --shards=16 if not given)
//   --batch-size=<N>        records buffered per apply_batch() handoff to
//                           the engine (default 4096; boundaries always
//                           flush first, so output is byte-identical for
//                           any N >= 1)
//   --rebalance-cut         sharded engine only: re-choose the stage-2 cut
//                           from measured per-shard flow load at each
//                           publish (expands hot members; never changes
//                           the engine's output, only its parallelism)
//   --perf-counters[=phases]
//                           attach hardware perf counters (cycles,
//                           instructions, LLC, branch misses) charged per
//                           engine phase; served at /perf and published as
//                           ipd_perf_* gauges. "=phases" additionally
//                           samples per-stage-2-phase counters via rdpmc
//                           where supported. Degrades gracefully (software
//                           task-clock only, or fully inert) where
//                           perf_event_open is restricted.
//   --profile-out=<file>    run the sampling CPU profiler across the whole
//                           replay and write folded flamegraph stacks to
//                           <file> (feed to flamegraph.pl / speedscope)
//   --profile-hz=<N>        profiler sampling rate (default 97)
//   --flow-trace-out=<file> enable flow provenance tracing and write one
//                           JSON line per sampled flow journey (hops +
//                           correlated stage-2 decisions) at exit. The
//                           sampling period defaults to 1/65536 and is
//                           overridden by IPD_FLOW_SAMPLE=<n>. Tracing is
//                           also enabled by --http-port (the /flows
//                           endpoint serves the same journeys live).
//   --snapshot-out=<file>   write a versioned warm-restart snapshot of the
//                           full engine state (atomic tmp+rename) at the
//                           5-minute bin cadence; served at /snapshot and
//                           published as ipd_snapshot_* metrics
//   --snapshot-every=<N>    take the snapshot every N bins instead of
//                           every bin (default 1; requires --snapshot-out)
//   --restore=<file>        restore engine state from a snapshot before
//                           replaying: the runner resumes the donor's
//                           cycle/snapshot clock and records older than
//                           the snapshot's data time are skipped, so the
//                           run continues byte-identically to a process
//                           that never died
//   --force-stall=<ms>      deliberately wedge a watchdog heartbeat for
//                           <ms> after the replay: the stall watchdog must
//                           detect it and capture this thread's stack — the
//                           end-to-end smoke test for stall reporting
//   --stall-report-out=<file>
//                           append one JSON line per watchdog stall report
//
// With --http-port the stall watchdog also runs: collector-style tasks are
// not present here, but the HTTP serve loop registers a heartbeat, /locks
// serves per-site lock contention, and /threads serves per-thread scheduler
// stats plus watchdog state.
//
// A TimeSeriesStore + HealthEngine always ride along: every 5-minute bin
// is ingested into the embedded TSDB and the default health rules
// (ingress shift, demotion burst, cycle overrun, ring drops, accuracy
// regression) are evaluated; /health /alerts /timeseries serve the state.
//
// Streams the trace through an IpdEngine with the standard 60 s cycle /
// 5 min snapshot cadence and prints per-snapshot partition statistics plus
// the final classified ranges in the paper's Table-3 format.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/health.hpp"
#include "analysis/introspection.hpp"
#include "analysis/runner.hpp"
#include "core/decision_log.hpp"
#include "core/engine.hpp"
#include "core/sharded_engine.hpp"
#include "core/snapshot.hpp"
#include "obs/timeseries.hpp"
#include "core/output.hpp"
#include "netflow/codec.hpp"
#include "obs/build_info.hpp"
#include "obs/cpu_profiler.hpp"
#include "obs/export.hpp"
#include "obs/flow_trace.hpp"
#include "obs/lock_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/thread_stats.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/thread.hpp"

using namespace ipd;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--metrics-out=<file>] [--metrics-jsonl=<file>] "
               "[--log-json] [--http-port=<port>] [--trace-out=<file>] "
               "[--decision-log[=N]] [--alerts-out=<file>] "
               "[--linger=<seconds>] [--shards=<N>] [--ingest-threads=<M>] "
               "[--batch-size=<N>] [--rebalance-cut] "
               "[--perf-counters[=phases]] [--profile-out=<file>] "
               "[--profile-hz=<N>] [--flow-trace-out=<file>] "
               "[--snapshot-out=<file>] [--snapshot-every=<N>] "
               "[--restore=<file>] "
               "[--force-stall=<ms>] [--stall-report-out=<file>] "
               "<in.trace> [ncidr_factor4=auto] [q=0.95]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string metrics_jsonl;
  std::string trace_out;
  std::string alerts_out;
  bool http_enabled = false;
  std::uint16_t http_port = 0;
  bool decision_log_enabled = false;
  std::size_t decision_log_capacity = core::DecisionLog::kDefaultCapacity;
  long linger_s = 0;
  int shards = -1;          // -1: sequential engine
  int ingest_threads = -1;  // -1: default (1)
  std::size_t batch_size = 0;  // 0: RunnerConfig default
  bool rebalance_cut = false;
  bool perf_enabled = false;
  bool perf_per_phase = false;
  std::string profile_out;
  int profile_hz = 97;
  std::string flow_trace_out;
  std::string snapshot_out;
  std::size_t snapshot_every = 1;
  std::string restore_path;
  long force_stall_ms = 0;
  std::string stall_report_out;
  std::vector<std::string> positional;
  util::set_current_thread_name("ipd-main");
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (util::starts_with(arg, "--metrics-out=")) {
      metrics_out = arg.substr(14);
    } else if (util::starts_with(arg, "--metrics-jsonl=")) {
      metrics_jsonl = arg.substr(16);
    } else if (arg == "--log-json") {
      util::set_log_format(util::LogFormat::Json);
    } else if (util::starts_with(arg, "--http-port=")) {
      http_enabled = true;
      http_port = static_cast<std::uint16_t>(
          util::parse_uint(arg.substr(12), 65535));
    } else if (util::starts_with(arg, "--trace-out=")) {
      trace_out = arg.substr(12);
    } else if (arg == "--decision-log") {
      decision_log_enabled = true;
    } else if (util::starts_with(arg, "--decision-log=")) {
      decision_log_enabled = true;
      decision_log_capacity = util::parse_uint(arg.substr(15), SIZE_MAX / 2);
    } else if (util::starts_with(arg, "--alerts-out=")) {
      alerts_out = arg.substr(13);
    } else if (util::starts_with(arg, "--linger=")) {
      linger_s = static_cast<long>(util::parse_uint(arg.substr(9), 86400));
    } else if (util::starts_with(arg, "--shards=")) {
      shards = static_cast<int>(util::parse_uint(arg.substr(9), 65536));
    } else if (util::starts_with(arg, "--ingest-threads=")) {
      ingest_threads = static_cast<int>(util::parse_uint(arg.substr(17), 256));
    } else if (util::starts_with(arg, "--batch-size=")) {
      batch_size = std::max<std::size_t>(
          1, util::parse_uint(arg.substr(13), 1 << 24));
    } else if (arg == "--rebalance-cut") {
      rebalance_cut = true;
    } else if (arg == "--perf-counters") {
      perf_enabled = true;
    } else if (arg == "--perf-counters=phases") {
      perf_enabled = true;
      perf_per_phase = true;
    } else if (util::starts_with(arg, "--profile-out=")) {
      profile_out = arg.substr(14);
    } else if (util::starts_with(arg, "--profile-hz=")) {
      profile_hz = static_cast<int>(util::parse_uint(arg.substr(13), 1000));
    } else if (util::starts_with(arg, "--flow-trace-out=")) {
      flow_trace_out = arg.substr(17);
    } else if (util::starts_with(arg, "--snapshot-out=")) {
      snapshot_out = arg.substr(15);
    } else if (util::starts_with(arg, "--snapshot-every=")) {
      snapshot_every = util::parse_uint(arg.substr(17), 1 << 20);
    } else if (util::starts_with(arg, "--restore=")) {
      restore_path = arg.substr(10);
    } else if (util::starts_with(arg, "--force-stall=")) {
      force_stall_ms = static_cast<long>(
          util::parse_uint(arg.substr(14), 600000));
    } else if (util::starts_with(arg, "--stall-report-out=")) {
      stall_report_out = arg.substr(19);
    } else if (util::starts_with(arg, "--")) {
      std::fprintf(stderr, "unknown flag %s\n", std::string(arg).c_str());
      return usage(argv[0]);
    } else {
      positional.emplace_back(arg);
    }
  }
  if (positional.empty()) return usage(argv[0]);

  std::ifstream in(positional[0], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", positional[0].c_str());
    return 1;
  }
  netflow::TraceReader reader(in);

  // Buffer the trace to size the thresholds from the observed volume when
  // no explicit factor is given.
  std::vector<netflow::FlowRecord> records;
  while (auto r = reader.read()) records.push_back(*r);
  if (records.empty()) {
    std::fprintf(stderr, "trace is empty\n");
    return 1;
  }
  const double span_min =
      std::max<double>(1.0, static_cast<double>(records.back().ts -
                                                records.front().ts) /
                                60.0);
  const double fpm = static_cast<double>(records.size()) / span_min;

  core::IpdParams params;
  if (positional.size() > 1 && std::atof(positional[1].c_str()) > 0.0) {
    params.ncidr_factor4 = std::atof(positional[1].c_str());
    params.ncidr_factor6 = params.ncidr_factor4 * 24.0 / 64.0;
  } else {
    // Same scaling rule as workload::scaled_params, from the trace itself.
    const double standing = fpm / 60.0 * static_cast<double>(params.e);
    params.ncidr_factor4 = std::max(standing / (65536.0 * 3.0), 1e-4);
    params.ncidr_factor6 = std::max(params.ncidr_factor4 * 1e-5, 1e-9);
    params.ncidr_floor = 6.0;
  }
  if (positional.size() > 2) params.q = std::atof(positional[2].c_str());
  params.validate();

  util::log_info("replaying trace",
                 {{"records", records.size()},
                  {"flows_per_min", fpm},
                  {"ncidr_factor4", params.ncidr_factor4},
                  {"q", params.q}});

  // --ingest-threads without --shards implies the default shard count.
  if (ingest_threads > 0 && shards < 0) shards = 16;
  std::unique_ptr<core::EngineBase> engine_ptr;
  if (shards < 0) {
    engine_ptr = std::make_unique<core::IpdEngine>(params);
  } else {
    if (shards < 1 || (shards & (shards - 1)) != 0) {
      std::fprintf(stderr, "--shards must be a power of two >= 1\n");
      return 2;
    }
    core::ShardedEngineConfig sharded;
    sharded.shard_bits = 0;
    while ((1 << sharded.shard_bits) < shards) ++sharded.shard_bits;
    sharded.ingest_threads = std::max(ingest_threads, 1);
    sharded.rebalance_cut = rebalance_cut;
    engine_ptr = std::make_unique<core::ShardedEngine>(params, sharded);
    util::log_info("sharded engine enabled",
                   {{"shards", shards},
                    {"ingest_threads", sharded.ingest_threads},
                    {"rebalance_cut", rebalance_cut}});
  }
  core::EngineBase& engine = *engine_ptr;

  obs::MetricsRegistry registry;
  engine.attach_metrics(registry);
  obs::bind_log_drop_metrics(registry);
  obs::register_build_info(registry);
  util::log_info("build", {{"info", obs::build_info_line()}});

  std::unique_ptr<obs::PerfCounters> perf;
  if (perf_enabled) {
    obs::PerfCountersConfig perf_config;
    perf_config.per_phase = perf_per_phase;
    perf = std::make_unique<obs::PerfCounters>(perf_config);
    engine.attach_perf(*perf);
    util::log_info("perf counters attached",
                   {{"available", perf->available()},
                    {"per_phase", perf_per_phase},
                    {"errno", perf->open_errno()}});
  }

  core::DecisionLog decision_log(decision_log_capacity);
  if (decision_log_enabled) engine.attach_decision_log(decision_log);

  obs::Tracer tracer;
  if (!trace_out.empty()) {
    engine.attach_tracer(tracer);
    tracer.install_crash_handler(trace_out + ".crash");
  }

  // Flow provenance tracing rides along whenever the journeys have
  // somewhere to go: a JSONL file, or the live /flows endpoint.
  obs::FlowTracer flow_trace(obs::FlowTracerConfig{
      .sample_period = obs::FlowTracer::sample_period_from_env()});
  const bool flow_trace_enabled = http_enabled || !flow_trace_out.empty();
  if (flow_trace_enabled) {
    engine.attach_flow_trace(flow_trace);
    flow_trace.bind_metrics(&registry);
    util::log_info(
        "flow tracing enabled",
        {{"sample_period", flow_trace.sample_period()},
         {"max_flows", obs::FlowTracerConfig{}.max_flows}});
  }

  // Self-monitoring: embedded TSDB at the 5-minute cadence + the default
  // health rules over it, fed by the engine's cycle deltas.
  obs::TimeSeriesStore timeseries;
  core::CycleDeltaLog cycle_deltas;
  engine.attach_cycle_deltas(cycle_deltas);
  analysis::HealthEngine health(timeseries);
  health.install_default_rules(params);
  health.attach_cycle_deltas(cycle_deltas);
  health.bind_metrics(registry);

  // Warm-restart snapshot lifecycle: ipd_snapshot_* metrics feed the TSDB
  // (and the snapshot-stale health rule); /snapshot serves the same state.
  core::SnapshotTelemetry snapshots;
  snapshots.bind(registry);
  if (!snapshot_out.empty()) snapshots.set_path(snapshot_out);

  std::ofstream alerts_file;
  if (!alerts_out.empty()) {
    alerts_file.open(alerts_out, std::ios::app);
    if (!alerts_file) {
      std::fprintf(stderr, "cannot open %s\n", alerts_out.c_str());
      return 1;
    }
    health.on_alert = [&alerts_file](const analysis::Alert& alert) {
      alerts_file << analysis::to_json(alert) << '\n';
      alerts_file.flush();
    };
  }

  // The stall watchdog runs whenever anything can consume its output: the
  // live endpoints, a forced-stall smoke run, or a stall-report file.
  // `stall_file` is declared first so it outlives the watchdog thread that
  // writes to it through on_stall.
  std::ofstream stall_file;
  obs::Watchdog watchdog;
  const bool watchdog_enabled =
      http_enabled || force_stall_ms > 0 || !stall_report_out.empty();
  if (watchdog_enabled) {
    watchdog.bind_metrics(registry);
    if (!stall_report_out.empty()) {
      stall_file.open(stall_report_out, std::ios::app);
      if (!stall_file) {
        std::fprintf(stderr, "cannot open %s\n", stall_report_out.c_str());
        return 1;
      }
      // Called from the watchdog thread only; the stream has no other
      // writer once the callback is installed.
      watchdog.set_on_stall([&stall_file](
                                const obs::Watchdog::StallReport& report) {
        stall_file << obs::Watchdog::report_json(report) << '\n';
        stall_file.flush();
      });
    }
    watchdog.start();
  }

  // The introspection handlers and the replay loop share the engine under
  // this mutex; the loop takes it in batches so endpoint latency stays low
  // without a per-flow lock. Instrumented: introspection-vs-replay
  // contention shows up in /locks as "replay.engine".
  obs::InstrumentedMutex engine_mutex{"replay.engine"};
  analysis::IntrospectionServer introspection(engine, engine_mutex);
  introspection.attach_health(health);
  introspection.attach_timeseries(timeseries);
  introspection.attach_snapshots(snapshots);
  if (perf) introspection.attach_perf(*perf);
  if (flow_trace_enabled) introspection.attach_flow_trace(flow_trace);
  if (watchdog_enabled) {
    introspection.attach_watchdog(watchdog);
    // Budget must exceed the longest legitimate handler: /profile blocks
    // the serving thread for up to profile_max_seconds (30 s).
    introspection.register_heartbeat(watchdog, /*budget_ms=*/120000);
  }
  if (http_enabled) {
    std::string error;
    if (!introspection.start(http_port, &error)) {
      std::fprintf(stderr, "cannot start http server: %s\n", error.c_str());
      return 1;
    }
    util::log_info("introspection server listening",
                   {{"addr", "127.0.0.1"}, {"port", introspection.port()}});
    std::printf("http: listening on 127.0.0.1:%u\n",
                static_cast<unsigned>(introspection.port()));
    std::fflush(stdout);
  }

  std::ofstream jsonl;
  if (!metrics_jsonl.empty()) {
    jsonl.open(metrics_jsonl, std::ios::app);
    if (!jsonl) {
      std::fprintf(stderr, "cannot open %s\n", metrics_jsonl.c_str());
      return 1;
    }
  }

  analysis::RunnerConfig runner_config;
  if (batch_size > 0) runner_config.ingest_batch = batch_size;
  analysis::BinnedRunner runner(engine, nullptr, runner_config);
  core::Snapshot last;
  std::uint64_t bins_seen = 0;
  runner.on_snapshot = [&](util::Timestamp ts, const core::Snapshot& snap,
                           const core::LpmTable& table) {
    std::uint64_t classified = 0;
    for (const auto& row : snap) classified += row.classified ? 1 : 0;
    std::printf("snapshot %s: %zu ranges, %llu classified, LPM size %zu\n",
                util::format_sim_time(ts).c_str(), snap.size(),
                static_cast<unsigned long long>(classified), table.size());
    last = snap;
    // Engine snapshot at the bin cadence: the callback runs with the
    // engine quiescent at the bin boundary, exactly the warm-restart cut
    // point the runner's snapshot_clock() describes.
    if (!snapshot_out.empty() && ++bins_seen % snapshot_every == 0) {
      const auto t0 = std::chrono::steady_clock::now();
      try {
        const std::string data =
            core::save_snapshot(engine, runner.snapshot_clock(ts));
        util::write_file_atomic(snapshot_out, data);
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        snapshots.record_save(data.size(), secs, ts);
        util::log_info("wrote engine snapshot",
                       {{"file", snapshot_out},
                        {"bytes", data.size()},
                        {"seconds", secs}});
      } catch (const util::SnapshotError& e) {
        snapshots.record_error(e.what());
        util::log_error("snapshot save failed",
                        {{"file", snapshot_out}, {"error", e.what()}});
      }
    }
  };
  runner.on_metrics = [&](util::Timestamp ts,
                          const obs::MetricsRegistry& reg) {
    // Publish perf/lock/thread gauges first so the same TSDB bin carries
    // them (the health rules read ipd_perf_* / ipd_lock_* / ipd_thread_*
    // from the store).
    if (perf) perf->publish(registry);
    obs::publish_lock_metrics(registry);
    obs::publish_thread_metrics(obs::sample_process_threads(), registry);
    snapshots.update_age(ts);
    timeseries.ingest(reg, ts);
    health.evaluate(ts);
    if (jsonl.is_open()) jsonl << obs::to_json_line(reg, ts);
  };
  // Warm restart: swap in the snapshot's engine state, resume the donor's
  // cycle/snapshot clock, and skip records the donor had already ingested
  // (everything older than the snapshot's bin boundary). Fail-closed: any
  // snapshot defect aborts the run with the engine untouched.
  std::size_t first_record = 0;
  if (!restore_path.empty()) {
    const auto t0 = std::chrono::steady_clock::now();
    core::SnapshotClock clock;
    std::size_t snapshot_bytes = 0;
    try {
      const std::string data = util::read_file(restore_path);
      snapshot_bytes = data.size();
      const std::lock_guard<obs::InstrumentedMutex> lock(engine_mutex);
      clock = core::restore_snapshot(engine, data);
    } catch (const util::SnapshotError& e) {
      snapshots.record_error(e.what());
      std::fprintf(stderr, "cannot restore %s: %s\n", restore_path.c_str(),
                   e.what());
      return 1;
    }
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    runner.resume(clock);
    // Seed the final Table-3 dump from the restored engine so a run that
    // replays nothing new (restore at end-of-trace) still reports the
    // snapshot's classified ranges rather than an empty table.
    last = core::take_snapshot(engine, clock.saved_at);
    while (first_record < records.size() &&
           records[first_record].ts < clock.saved_at) {
      ++first_record;
    }
    const auto restored = engine.stats();
    snapshots.record_restore(snapshot_bytes, secs, clock.saved_at);
    util::log_info("restored engine snapshot",
                   {{"file", restore_path},
                    {"saved_at", clock.saved_at},
                    {"next_cycle", clock.next_cycle},
                    {"flows_restored", restored.flows_ingested},
                    {"records_skipped", first_record},
                    {"seconds", secs}});
    std::printf("restored snapshot %s at %s (%llu flows, skipping %zu "
                "already-ingested records)\n",
                restore_path.c_str(),
                util::format_sim_time(clock.saved_at).c_str(),
                static_cast<unsigned long long>(restored.flows_ingested),
                first_record);
  }

  obs::CpuProfiler profiler(obs::CpuProfilerConfig{.hz = profile_hz});
  if (!profile_out.empty()) {
    std::string error;
    if (!profiler.start(&error)) {
      std::fprintf(stderr, "cannot start profiler: %s\n", error.c_str());
      return 1;
    }
  }
  constexpr std::size_t kIngestBatch = 4096;
  for (std::size_t i = first_record; i < records.size(); i += kIngestBatch) {
    const std::size_t end = std::min(i + kIngestBatch, records.size());
    const std::lock_guard<obs::InstrumentedMutex> lock(engine_mutex);
    for (std::size_t j = i; j < end; ++j) runner.offer(records[j]);
  }
  {
    const std::lock_guard<obs::InstrumentedMutex> lock(engine_mutex);
    runner.finish();
  }

  if (force_stall_ms > 0) {
    // Deliberately wedge a heartbeat: beat once, then go quiet past the
    // budget. The watchdog must detect the miss and capture this thread's
    // stack — the end-to-end proof the stall path works.
    const obs::Watchdog::TaskId wedged =
        watchdog.register_task("forced.stall", force_stall_ms);
    watchdog.beat(wedged);
    const std::uint64_t before = watchdog.stalls_total();
    // Wait for detection (budget + a few poll periods), then a grace loop
    // for slow sanitizer hosts.
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(force_stall_ms + 10000);
    while (watchdog.stalls_total() == before &&
           std::chrono::steady_clock::now() < give_up) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    watchdog.disarm(wedged);
    if (watchdog.stalls_total() == before) {
      std::fprintf(stderr, "forced stall was not detected\n");
      return 1;
    }
    std::printf("forced stall detected (%llu total)\n",
                static_cast<unsigned long long>(watchdog.stalls_total()));
  }

  if (!profile_out.empty()) {
    // Stop and write before any linger: smoke tests wait for this file,
    // and stopping frees the process-global profiler slot so a lingering
    // /profile request is not refused with 409.
    profiler.stop();
    std::ofstream out(profile_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", profile_out.c_str());
      return 1;
    }
    out << profiler.folded();
    std::printf("profile: %llu samples (%llu dropped) at %d Hz -> %s\n",
                static_cast<unsigned long long>(profiler.samples_captured()),
                static_cast<unsigned long long>(profiler.samples_dropped()),
                profile_hz, profile_out.c_str());
  }

  std::printf("\nfinal classified ranges (Table-3 format):\n");
  for (const auto& row : last) {
    if (row.classified) std::cout << core::format_row(row) << '\n';
  }
  const auto stats = engine.stats();
  std::printf("\n%llu flows ingested, %llu cycles, %llu classifications, "
              "%llu splits, %llu joins, %llu drops\n",
              static_cast<unsigned long long>(stats.flows_ingested),
              static_cast<unsigned long long>(stats.cycles_run),
              static_cast<unsigned long long>(stats.total_classifications),
              static_cast<unsigned long long>(stats.total_splits),
              static_cast<unsigned long long>(stats.total_joins),
              static_cast<unsigned long long>(stats.total_drops));

  const auto* cycle_hist = engine.metrics()->cycle_seconds;
  std::printf("cycle time p50=%.3f ms p95=%.3f ms p99=%.3f ms (n=%llu)\n",
              cycle_hist->quantile(0.50) * 1e3,
              cycle_hist->quantile(0.95) * 1e3,
              cycle_hist->quantile(0.99) * 1e3,
              static_cast<unsigned long long>(cycle_hist->count()));

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    out << obs::to_prometheus(registry);
    util::log_info("wrote metrics snapshot",
                   {{"file", metrics_out},
                    {"families", registry.family_count()},
                    {"instruments", registry.instrument_count()}});
  }

  std::printf("health: %s, %zu active alerts (%llu raised, %llu resolved), "
              "%zu series, %llu points\n",
              analysis::to_string(health.overall()),
              health.active_alerts().size(),
              static_cast<unsigned long long>(health.alerts_raised()),
              static_cast<unsigned long long>(health.alerts_resolved()),
              timeseries.series_count(),
              static_cast<unsigned long long>(timeseries.points_appended()));

  if (perf) {
    std::printf("perf counters: available=%d (errno=%d)\n",
                perf->available() ? 1 : 0, perf->open_errno());
    for (const auto& phase : perf->snapshot()) {
      std::printf(
          "  %-16s scopes=%llu task_clock=%.3f ms ipc=%.3f llc_miss=%.4f\n",
          phase.name.c_str(), static_cast<unsigned long long>(phase.scopes),
          static_cast<double>(phase[obs::PerfEvent::TaskClock]) * 1e-6,
          phase.ipc(), phase.llc_miss_rate());
    }
  }
  if (decision_log_enabled) {
    std::printf("decision log: %llu recorded, %zu held, %llu overwritten\n",
                static_cast<unsigned long long>(decision_log.total_recorded()),
                decision_log.size(),
                static_cast<unsigned long long>(decision_log.dropped()));
  }
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", trace_out.c_str());
      return 1;
    }
    out << tracer.to_json();
    util::log_info("wrote flight-recorder trace",
                   {{"file", trace_out},
                    {"events", tracer.size()},
                    {"overwritten", tracer.dropped()}});
  }

  if (!flow_trace_out.empty()) {
    std::ofstream out(flow_trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", flow_trace_out.c_str());
      return 1;
    }
    const core::DecisionLog* dlog = engine.decision_log();
    const auto journeys = flow_trace.journeys();
    for (const auto& journey : journeys) {
      out << analysis::flow_journey_json(journey, dlog) << '\n';
    }
    std::printf("flow trace: %zu journeys (%llu sampled, %llu evicted, "
                "period 1/%llu) -> %s\n",
                journeys.size(),
                static_cast<unsigned long long>(flow_trace.flows_sampled()),
                static_cast<unsigned long long>(flow_trace.journeys_evicted()),
                static_cast<unsigned long long>(flow_trace.sample_period()),
                flow_trace_out.c_str());
    util::log_info("wrote flow journeys",
                   {{"file", flow_trace_out},
                    {"journeys", journeys.size()},
                    {"hops", flow_trace.hops_recorded()}});
  }

  if (http_enabled && linger_s > 0) {
    std::printf("lingering for %lds (http on 127.0.0.1:%u)\n", linger_s,
                static_cast<unsigned>(introspection.port()));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(linger_s));
  }
  introspection.stop();
  obs::unbind_log_drop_metrics();
  return 0;
}
