// ipd_replay — run IPD over a recorded trace file.
//
// Usage: ipd_replay <in.trace> [ncidr_factor4=auto] [q=0.95]
//
// Streams the trace through an IpdEngine with the standard 60 s cycle /
// 5 min snapshot cadence and prints per-snapshot partition statistics plus
// the final classified ranges in the paper's Table-3 format.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "analysis/runner.hpp"
#include "core/output.hpp"
#include "netflow/codec.hpp"
#include "util/strings.hpp"

using namespace ipd;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <in.trace> [ncidr_factor4=auto] [q=0.95]\n",
                 argv[0]);
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  netflow::TraceReader reader(in);

  // Buffer the trace to size the thresholds from the observed volume when
  // no explicit factor is given.
  std::vector<netflow::FlowRecord> records;
  while (auto r = reader.read()) records.push_back(*r);
  if (records.empty()) {
    std::fprintf(stderr, "trace is empty\n");
    return 1;
  }
  const double span_min =
      std::max<double>(1.0, static_cast<double>(records.back().ts -
                                                records.front().ts) /
                                60.0);
  const double fpm = static_cast<double>(records.size()) / span_min;

  core::IpdParams params;
  if (argc > 2 && std::atof(argv[2]) > 0.0) {
    params.ncidr_factor4 = std::atof(argv[2]);
    params.ncidr_factor6 = params.ncidr_factor4 * 24.0 / 64.0;
  } else {
    // Same scaling rule as workload::scaled_params, from the trace itself.
    const double standing = fpm / 60.0 * static_cast<double>(params.e);
    params.ncidr_factor4 = std::max(standing / (65536.0 * 3.0), 1e-4);
    params.ncidr_factor6 = std::max(params.ncidr_factor4 * 1e-5, 1e-9);
    params.ncidr_floor = 6.0;
  }
  if (argc > 3) params.q = std::atof(argv[3]);
  params.validate();

  std::printf("replaying %zu records (%.0f flows/min) with ncidr_factor4=%g "
              "q=%.3f\n",
              records.size(), fpm, params.ncidr_factor4, params.q);

  core::IpdEngine engine(params);
  analysis::BinnedRunner runner(engine, nullptr);
  core::Snapshot last;
  runner.on_snapshot = [&](util::Timestamp ts, const core::Snapshot& snap,
                           const core::LpmTable& table) {
    std::uint64_t classified = 0;
    for (const auto& row : snap) classified += row.classified ? 1 : 0;
    std::printf("snapshot %s: %zu ranges, %llu classified, LPM size %zu\n",
                util::format_sim_time(ts).c_str(), snap.size(),
                static_cast<unsigned long long>(classified), table.size());
    last = snap;
  };
  for (const auto& r : records) runner.offer(r);
  runner.finish();

  std::printf("\nfinal classified ranges (Table-3 format):\n");
  for (const auto& row : last) {
    if (row.classified) std::cout << core::format_row(row) << '\n';
  }
  const auto& stats = engine.stats();
  std::printf("\n%llu flows ingested, %llu cycles, %llu classifications, "
              "%llu splits, %llu joins, %llu drops\n",
              static_cast<unsigned long long>(stats.flows_ingested),
              static_cast<unsigned long long>(stats.cycles_run),
              static_cast<unsigned long long>(stats.total_classifications),
              static_cast<unsigned long long>(stats.total_splits),
              static_cast<unsigned long long>(stats.total_joins),
              static_cast<unsigned long long>(stats.total_drops));
  return 0;
}
