// ipd_replay — run IPD over a recorded trace file.
//
// Usage: ipd_replay [flags] <in.trace> [ncidr_factor4=auto] [q=0.95]
//
//   --metrics-out=<file>    write a Prometheus text-exposition snapshot of
//                           the full metrics registry after the replay
//   --metrics-jsonl=<file>  append one JSON metrics line per 5-minute bin
//   --log-json              emit structured log lines as JSON
//
// Streams the trace through an IpdEngine with the standard 60 s cycle /
// 5 min snapshot cadence and prints per-snapshot partition statistics plus
// the final classified ranges in the paper's Table-3 format.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/runner.hpp"
#include "core/output.hpp"
#include "netflow/codec.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"

using namespace ipd;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--metrics-out=<file>] [--metrics-jsonl=<file>] "
               "[--log-json] <in.trace> [ncidr_factor4=auto] [q=0.95]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metrics_out;
  std::string metrics_jsonl;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (util::starts_with(arg, "--metrics-out=")) {
      metrics_out = arg.substr(14);
    } else if (util::starts_with(arg, "--metrics-jsonl=")) {
      metrics_jsonl = arg.substr(16);
    } else if (arg == "--log-json") {
      util::set_log_format(util::LogFormat::Json);
    } else if (util::starts_with(arg, "--")) {
      std::fprintf(stderr, "unknown flag %s\n", std::string(arg).c_str());
      return usage(argv[0]);
    } else {
      positional.emplace_back(arg);
    }
  }
  if (positional.empty()) return usage(argv[0]);

  std::ifstream in(positional[0], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", positional[0].c_str());
    return 1;
  }
  netflow::TraceReader reader(in);

  // Buffer the trace to size the thresholds from the observed volume when
  // no explicit factor is given.
  std::vector<netflow::FlowRecord> records;
  while (auto r = reader.read()) records.push_back(*r);
  if (records.empty()) {
    std::fprintf(stderr, "trace is empty\n");
    return 1;
  }
  const double span_min =
      std::max<double>(1.0, static_cast<double>(records.back().ts -
                                                records.front().ts) /
                                60.0);
  const double fpm = static_cast<double>(records.size()) / span_min;

  core::IpdParams params;
  if (positional.size() > 1 && std::atof(positional[1].c_str()) > 0.0) {
    params.ncidr_factor4 = std::atof(positional[1].c_str());
    params.ncidr_factor6 = params.ncidr_factor4 * 24.0 / 64.0;
  } else {
    // Same scaling rule as workload::scaled_params, from the trace itself.
    const double standing = fpm / 60.0 * static_cast<double>(params.e);
    params.ncidr_factor4 = std::max(standing / (65536.0 * 3.0), 1e-4);
    params.ncidr_factor6 = std::max(params.ncidr_factor4 * 1e-5, 1e-9);
    params.ncidr_floor = 6.0;
  }
  if (positional.size() > 2) params.q = std::atof(positional[2].c_str());
  params.validate();

  util::log_info("replaying trace",
                 {{"records", records.size()},
                  {"flows_per_min", fpm},
                  {"ncidr_factor4", params.ncidr_factor4},
                  {"q", params.q}});

  obs::MetricsRegistry registry;
  core::IpdEngine engine(params);
  engine.attach_metrics(registry);

  std::ofstream jsonl;
  if (!metrics_jsonl.empty()) {
    jsonl.open(metrics_jsonl, std::ios::app);
    if (!jsonl) {
      std::fprintf(stderr, "cannot open %s\n", metrics_jsonl.c_str());
      return 1;
    }
  }

  analysis::BinnedRunner runner(engine, nullptr);
  core::Snapshot last;
  runner.on_snapshot = [&](util::Timestamp ts, const core::Snapshot& snap,
                           const core::LpmTable& table) {
    std::uint64_t classified = 0;
    for (const auto& row : snap) classified += row.classified ? 1 : 0;
    std::printf("snapshot %s: %zu ranges, %llu classified, LPM size %zu\n",
                util::format_sim_time(ts).c_str(), snap.size(),
                static_cast<unsigned long long>(classified), table.size());
    last = snap;
  };
  runner.on_metrics = [&](util::Timestamp ts,
                          const obs::MetricsRegistry& reg) {
    if (jsonl.is_open()) jsonl << obs::to_json_line(reg, ts);
  };
  for (const auto& r : records) runner.offer(r);
  runner.finish();

  std::printf("\nfinal classified ranges (Table-3 format):\n");
  for (const auto& row : last) {
    if (row.classified) std::cout << core::format_row(row) << '\n';
  }
  const auto& stats = engine.stats();
  std::printf("\n%llu flows ingested, %llu cycles, %llu classifications, "
              "%llu splits, %llu joins, %llu drops\n",
              static_cast<unsigned long long>(stats.flows_ingested),
              static_cast<unsigned long long>(stats.cycles_run),
              static_cast<unsigned long long>(stats.total_classifications),
              static_cast<unsigned long long>(stats.total_splits),
              static_cast<unsigned long long>(stats.total_joins),
              static_cast<unsigned long long>(stats.total_drops));

  const auto* cycle_hist = engine.metrics()->cycle_seconds;
  std::printf("cycle time p50=%.3f ms p95=%.3f ms p99=%.3f ms (n=%llu)\n",
              cycle_hist->quantile(0.50) * 1e3,
              cycle_hist->quantile(0.95) * 1e3,
              cycle_hist->quantile(0.99) * 1e3,
              static_cast<unsigned long long>(cycle_hist->count()));

  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", metrics_out.c_str());
      return 1;
    }
    out << obs::to_prometheus(registry);
    util::log_info("wrote metrics snapshot",
                   {{"file", metrics_out},
                    {"families", registry.family_count()},
                    {"instruments", registry.instrument_count()}});
  }
  return 0;
}
