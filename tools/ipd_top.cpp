// ipd_top — live terminal dashboard over a running IPD process.
//
// Usage: ipd_top --port=<port> [--host=127.0.0.1] [--interval=2] [--once]
//
// Polls the introspection endpoints (/metrics, /health, /alerts,
// /flows?format=text, /locks?format=text, /threads?format=text) of an
// engine started with --http-port and renders:
//
//   * the build identity (sha, build type, compiler) from ipd_build_info,
//   * ingest rate (flows/s, from the ipd_ingest_flows_total delta between
//     polls) and cumulative totals,
//   * range partition counts, trie memory, tracked IPs,
//   * pipeline freshness and ring-residency p99 against their SLOs,
//   * per-shard flow occupancy plus the balance line (max/mean skew and
//     stage-2 cut width; sharded engine only),
//   * health state per component and the active alert list,
//   * lock contention by site and per-thread scheduler stats,
//   * the most recent sampled flow journeys, one line each.
//
// The terminal size is re-queried on SIGWINCH; panel row budgets and line
// clipping follow the current window.
//
// Dependency-free by design: raw POSIX sockets, HTTP/1.1 with chunked
// decoding (the /flows and /timeseries endpoints stream), ANSI escapes for
// the redraw. `--once` prints a single frame and exits (CI smoke tests).
#include <arpa/inet.h>
#include <netdb.h>
#include <sys/ioctl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port=<port> [--host=<addr>] "
               "[--interval=<seconds>] [--once]\n",
               argv0);
  return 2;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

// Terminal geometry, refreshed lazily when SIGWINCH flags a resize. The
// handler only sets the flag; the ioctl happens on the render path.
volatile std::sig_atomic_t g_resized = 1;  // start dirty: query first frame

void on_sigwinch(int) { g_resized = 1; }

struct TermSize {
  int rows = 24;
  int cols = 80;
};
TermSize g_term;

void refresh_term_size() {
  winsize ws{};
  if (ioctl(STDOUT_FILENO, TIOCGWINSZ, &ws) == 0 && ws.ws_row > 0 &&
      ws.ws_col > 0) {
    g_term.rows = ws.ws_row;
    g_term.cols = ws.ws_col;
  }
}

/// Print a multi-line blob with every line clipped to the terminal width
/// and an optional row budget (0 = unlimited), two-space indented.
void print_clipped(const std::string& text, int max_rows) {
  const std::size_t width =
      g_term.cols > 4 ? static_cast<std::size_t>(g_term.cols) - 3 : 77;
  int rows = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    if (max_rows > 0 && rows >= max_rows) return;
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::size_t len = std::min(eol - pos, width);
    std::printf("  %.*s\n", static_cast<int>(len), text.data() + pos);
    pos = eol + 1;
    ++rows;
  }
}

/// De-chunk a Transfer-Encoding: chunked body. Returns nullopt on
/// malformed framing (truncated response — the server signals errors by
/// closing before the terminating zero chunk).
std::optional<std::string> decode_chunked(std::string_view raw) {
  std::string out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t eol = raw.find("\r\n", pos);
    if (eol == std::string_view::npos) return std::nullopt;
    std::size_t len = 0;
    const std::string size_text(raw.substr(pos, eol - pos));
    char* end = nullptr;
    len = static_cast<std::size_t>(std::strtoull(size_text.c_str(), &end, 16));
    if (end == size_text.c_str()) return std::nullopt;
    pos = eol + 2;
    if (len == 0) return out;  // terminating zero chunk
    if (pos + len + 2 > raw.size()) return std::nullopt;
    out.append(raw.substr(pos, len));
    pos += len + 2;  // skip chunk + trailing CRLF
  }
}

/// One blocking HTTP/1.1 GET; handles Content-Length and chunked bodies.
std::optional<std::string> http_get(const std::string& host,
                                    std::uint16_t port,
                                    const std::string& path) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_text = std::to_string(port);
  if (getaddrinfo(host.c_str(), port_text.c_str(), &hints, &res) != 0) {
    return std::nullopt;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  if (fd < 0) return std::nullopt;

  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      close(fd);
      return std::nullopt;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[16384];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);

  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) return std::nullopt;
  const std::string_view head(raw.data(), head_end);
  if (head.find(" 200 ") == std::string_view::npos) return std::nullopt;
  const std::string_view body(raw.data() + head_end + 4,
                              raw.size() - head_end - 4);
  // Header keys are matched case-insensitively in spirit; this server
  // emits exactly this casing.
  if (head.find("Transfer-Encoding: chunked") != std::string_view::npos) {
    return decode_chunked(body);
  }
  return std::string(body);
}

/// Parse Prometheus text exposition into {"name{labels}" -> value} plus a
/// bare-name entry per family (last sample wins — fine for singletons).
std::map<std::string, double> parse_metrics(const std::string& text) {
  std::map<std::string, double> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string_view::npos) continue;
    const std::string key(line.substr(0, sp));
    const double value = std::atof(std::string(line.substr(sp + 1)).c_str());
    out[key] = value;
    const std::size_t brace = key.find('{');
    if (brace != std::string::npos) out[key.substr(0, brace)] = value;
  }
  return out;
}

double metric_or(const std::map<std::string, double>& m,
                 const std::string& key, double fallback) {
  const auto it = m.find(key);
  return it == m.end() ? fallback : it->second;
}

/// Value of `label` on the first sample line of `family` in the raw
/// Prometheus text ("" when absent) — how the ipd_build_info labels (sha,
/// build, compiler) reach the header without a JSON endpoint.
std::string metric_label(const std::string& text, const std::string& family,
                         const std::string& label) {
  std::size_t pos = 0;
  while ((pos = text.find(family + "{", pos)) != std::string::npos) {
    if (pos != 0 && text[pos - 1] != '\n') {  // mid-line hit, e.g. HELP text
      pos += family.size();
      continue;
    }
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    const std::string needle = label + "=\"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) return "";
    const std::size_t begin = at + needle.size();
    const std::size_t end = line.find('"', begin);
    if (end == std::string::npos) return "";
    return line.substr(begin, end - begin);
  }
  return "";
}

/// Pull every string field value named `field` out of a flat JSON blob
/// (no nesting awareness needed for the shapes we read).
std::vector<std::string> json_string_fields(const std::string& body,
                                            const std::string& field) {
  std::vector<std::string> out;
  const std::string needle = "\"" + field + "\":\"";
  std::size_t pos = 0;
  while ((pos = body.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    const std::size_t end = body.find('"', pos);
    if (end == std::string::npos) break;
    out.push_back(body.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

std::string fmt_quantity(double v) {
  char buf[32];
  if (v >= 1e9) std::snprintf(buf, sizeof(buf), "%.2fG", v * 1e-9);
  else if (v >= 1e6) std::snprintf(buf, sizeof(buf), "%.2fM", v * 1e-6);
  else if (v >= 1e3) std::snprintf(buf, sizeof(buf), "%.1fk", v * 1e-3);
  else std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

const char* state_color(const std::string& state) {
  if (state == "ok") return "\x1b[32m";         // green
  if (state == "degraded") return "\x1b[33m";   // yellow
  return "\x1b[31m";                            // red
}

struct Frame {
  std::map<std::string, double> metrics;
  std::string metrics_raw;  // for label-valued families (ipd_build_info)
  std::string health;
  std::string alerts;
  std::string flows;
  std::string locks;
  std::string threads;
  bool metrics_ok = false;
};

Frame fetch(const std::string& host, std::uint16_t port,
            std::size_t locks_limit) {
  Frame f;
  if (auto m = http_get(host, port, "/metrics")) {
    f.metrics = parse_metrics(*m);
    f.metrics_raw = std::move(*m);
    f.metrics_ok = true;
  }
  if (auto h = http_get(host, port, "/health")) f.health = *h;
  if (auto a = http_get(host, port, "/alerts")) f.alerts = *a;
  if (auto j = http_get(host, port, "/flows?format=text&limit=8")) {
    f.flows = *j;
  }
  if (auto l = http_get(host, port, "/locks?format=text&limit=" +
                                        std::to_string(locks_limit))) {
    f.locks = *l;
  }
  if (auto t = http_get(host, port, "/threads?format=text")) f.threads = *t;
  return f;
}

void render(const Frame& f, const std::string& host, std::uint16_t port,
            double rate, bool ansi) {
  if (ansi) std::fputs("\x1b[2J\x1b[H", stdout);
  const std::string sha = metric_label(f.metrics_raw, "ipd_build_info", "sha");
  const std::string build =
      metric_label(f.metrics_raw, "ipd_build_info", "build");
  const std::string compiler =
      metric_label(f.metrics_raw, "ipd_build_info", "compiler");
  if (sha.empty()) {
    std::printf("ipd_top — %s:%u\n", host.c_str(), port);
  } else {
    std::printf("ipd_top — %s:%u | %s %s %s\n", host.c_str(), port,
                sha.c_str(), build.c_str(), compiler.c_str());
  }
  if (!f.metrics_ok) {
    std::printf("  (no /metrics — is the process up with --http-port?)\n");
    std::fflush(stdout);
    return;
  }
  const auto& m = f.metrics;
  std::printf(
      "ingest   %s flows/s | total %s flows, %s weight | cycles %s\n",
      fmt_quantity(rate < 0 ? 0 : rate).c_str(),
      fmt_quantity(metric_or(m, "ipd_ingest_flows_total", 0)).c_str(),
      fmt_quantity(metric_or(m, "ipd_ingest_weight_total", 0)).c_str(),
      fmt_quantity(metric_or(m, "ipd_cycles_total", 0)).c_str());
  std::printf(
      "ranges   %.0f classified / %.0f monitoring | tracked IPs %s | "
      "trie %s B\n",
      metric_or(m, "ipd_ranges{state=\"classified\"}", 0),
      metric_or(m, "ipd_ranges{state=\"monitoring\"}", 0),
      fmt_quantity(metric_or(m, "ipd_tracked_ips", 0)).c_str(),
      fmt_quantity(metric_or(m, "ipd_memory_bytes",
                             metric_or(m, "ipd_trie_memory_bytes", 0)))
          .c_str());
  std::printf(
      "fresh    %.1f s behind publish | ring residency p99 %.4f s | "
      "ring depth %.0f\n",
      metric_or(m, "ipd_freshness_seconds", 0),
      metric_or(m, "ipd_ring_residency_p99_seconds", 0),
      metric_or(m, "ipd_ring_depth", 0));
  std::printf(
      "flows    %s sampled, %s hops | decode->apply observations %s\n",
      fmt_quantity(metric_or(m, "ipd_flows_sampled_total", 0)).c_str(),
      fmt_quantity(metric_or(m, "ipd_flow_hops_total", 0)).c_str(),
      fmt_quantity(
          metric_or(m, "ipd_flow_decode_to_apply_seconds_count", 0))
          .c_str());

  // Per-shard occupancy (sharded engine only; keys carry family + shard).
  for (const char* family : {"v4", "v6"}) {
    std::string row;
    for (int shard = 0; shard < 64; ++shard) {
      char key[64];
      std::snprintf(key, sizeof(key),
                    "ipd_shard_flows{family=\"%s\",shard=\"%d\"}", family,
                    shard);
      const auto it = m.find(key);
      if (it == m.end()) {
        std::snprintf(key, sizeof(key),
                      "ipd_shard_flows{shard=\"%d\",family=\"%s\"}", shard,
                      family);
        const auto it2 = m.find(key);
        if (it2 == m.end()) break;
        row += ' ';
        row += fmt_quantity(it2->second);
        continue;
      }
      row += ' ';
      row += fmt_quantity(it->second);
    }
    if (!row.empty()) std::printf("shards   %s:%s\n", family, row.c_str());
  }

  // Shard balance (sharded engine only): max/mean flow skew over the last
  // stage-2 interval and the cut width the load-aware chooser settled on.
  {
    std::string row;
    for (const char* family : {"v4", "v6"}) {
      const std::string ratio_key =
          std::string("ipd_shard_imbalance_ratio{family=\"") + family + "\"}";
      const auto it = m.find(ratio_key);
      if (it == m.end()) continue;
      const double cut = metric_or(
          m, std::string("ipd_cut_members{family=\"") + family + "\"}", 0);
      char buf[96];
      std::snprintf(buf, sizeof(buf), "%s%s max/mean %.2f, cut %.0f",
                    row.empty() ? "" : " | ", family, it->second, cut);
      row += buf;
    }
    if (!row.empty()) std::printf("balance  %s\n", row.c_str());
  }

  const auto statuses = json_string_fields(f.health, "status");
  const std::string overall = statuses.empty() ? "unknown" : statuses[0];
  std::printf("\nhealth   %s%s\x1b[0m (%.0f active alerts)\n",
              ansi ? state_color(overall) : "", overall.c_str(),
              metric_or(m, "ipd_alerts_active", 0));
  const auto names = json_string_fields(f.health, "name");
  const auto states = json_string_fields(f.health, "state");
  for (std::size_t i = 0; i < names.size() && i < states.size(); ++i) {
    std::printf("  %-12s %s%s\x1b[0m\n", names[i].c_str(),
                ansi ? state_color(states[i]) : "", states[i].c_str());
  }
  // Active alert rules: everything before the resolved ring in /alerts.
  // The same rule fires once per offending label set (e.g. one
  // ingress-shift alert per range), so collapse duplicates into a count.
  const std::size_t recent = f.alerts.find("\"recent\":");
  const auto rules = json_string_fields(
      recent == std::string::npos ? f.alerts : f.alerts.substr(0, recent),
      "rule");
  std::map<std::string, int> rule_counts;
  for (const auto& rule : rules) ++rule_counts[rule];
  for (const auto& [rule, count] : rule_counts) {
    if (count == 1) {
      std::printf("  ! %s\n", rule.c_str());
    } else {
      std::printf("  ! %s (x%d)\n", rule.c_str(), count);
    }
  }

  // Lock/thread panels: clipped to the terminal, budgeted so the whole
  // frame still fits a small window.
  const int panel_rows =
      g_term.rows > 30 ? (g_term.rows - 22) / 2 : 4;
  if (!f.locks.empty()) {
    std::printf("\nlock contention by site:\n");
    print_clipped(f.locks, panel_rows + 1);  // +1: header row
  }
  if (!f.threads.empty()) {
    std::printf("\nthreads:\n");
    print_clipped(f.threads, panel_rows + 1);
  }

  std::printf("\nsampled flow journeys (newest %d):\n", 8);
  if (f.flows.empty()) {
    std::printf("  (none yet — sampling period may be high; set "
                "IPD_FLOW_SAMPLE)\n");
  } else {
    print_clipped(f.flows, panel_rows + 1);
  }
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  double interval_s = 2.0;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (starts_with(arg, "--host=")) {
      host = std::string(arg.substr(7));
    } else if (starts_with(arg, "--port=")) {
      port = static_cast<std::uint16_t>(
          std::atoi(std::string(arg.substr(7)).c_str()));
    } else if (starts_with(arg, "--interval=")) {
      // Validate instead of silently coercing garbage to 0: the value must
      // parse in full and land in a sane range.
      const std::string text(arg.substr(11));
      char* end = nullptr;
      interval_s = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0' || !(interval_s > 0.0) ||
          interval_s > 3600.0) {
        std::fprintf(stderr,
                     "--interval must be seconds in (0, 3600], got \"%s\"\n",
                     text.c_str());
        return 2;
      }
    } else if (arg == "--once") {
      once = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (port == 0) return usage(argv[0]);

  // Track terminal resizes; SA_RESTART so a mid-recv resize does not
  // surface as a spurious fetch failure.
  struct sigaction sa{};
  sa.sa_handler = on_sigwinch;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGWINCH, &sa, nullptr);

  double last_total = -1.0;
  auto last_time = std::chrono::steady_clock::now();
  for (;;) {
    if (g_resized) {
      g_resized = 0;
      refresh_term_size();
    }
    const std::size_t locks_limit = g_term.rows > 30
                                        ? static_cast<std::size_t>(
                                              (g_term.rows - 22) / 2)
                                        : 4;
    const Frame frame = fetch(host, port, locks_limit);
    const auto now = std::chrono::steady_clock::now();
    double rate = -1.0;
    if (frame.metrics_ok) {
      const double total =
          metric_or(frame.metrics, "ipd_ingest_flows_total", 0);
      const double dt =
          std::chrono::duration<double>(now - last_time).count();
      if (last_total >= 0.0 && dt > 0.0) rate = (total - last_total) / dt;
      last_total = total;
      last_time = now;
    }
    render(frame, host, port, rate, !once);
    if (once) return frame.metrics_ok ? 0 : 1;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_s));
  }
}
