// "Why is service X slow at home in only one city of an ISP's network?"
//
// The paper's §5.8 debugging story: a major service was slow for FTTH
// customers in one city but fine for ADSL customers in the same city.
// IPD revealed that the CDN mapped the FTTH prefixes to a data center in a
// different, far-away country, so their traffic entered the ISP's network
// at a distant ingress point.
//
// This example reproduces that investigation: a CDN serves two access
// populations of the same city; its mapping sends the FTTH users' traffic
// through the wrong country. IPD's output pinpoints the difference in one
// look — per customer prefix, the ingress country of the service's traffic.
#include <cstdio>

#include "core/engine.hpp"
#include "core/lpm_table.hpp"
#include "core/output.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

using namespace ipd;

int main() {
  // The ISP: a local PoP in the customers' country and a remote PoP abroad.
  topology::Topology topo;
  const auto local_pop = topo.add_pop("CITY1", "C1");
  const auto remote_pop = topo.add_pop("FAR9", "C9");
  const auto local_router = topo.add_router(local_pop, "R1");
  const auto remote_router = topo.add_router(remote_pop, "R7");
  const topology::AsNumber cdn_as = 65010;
  const auto local_link = topo.add_interface(local_router, topology::LinkType::Pni, cdn_as);
  const auto remote_link = topo.add_interface(remote_router, topology::LinkType::Pni, cdn_as);

  // The CDN's address space, as seen in flow source addresses. The CDN maps
  // users to data centers per /28 server block (this is why cidr_max = /28):
  // requests of ADSL users are served from the local data center, FTTH
  // users' requests from the far one — so the *same* CDN prefix enters via
  // different links, split by /28 server blocks.
  const auto cdn_space = net::Prefix::from_string("203.0.112.0/23");
  const auto adsl_servers = net::Prefix::from_string("203.0.112.0/24");
  const auto ftth_servers = net::Prefix::from_string("203.0.113.0/24");

  core::IpdParams params;
  params.ncidr_factor4 = 0.001;
  params.ncidr_factor6 = 1e-7;
  core::IpdEngine engine(params);

  util::Rng rng(42);
  for (int minute = 0; minute < 12; ++minute) {
    const util::Timestamp m = minute * 60;
    for (int i = 0; i < 400; ++i) {
      // Traffic towards ADSL customers: served locally.
      engine.ingest(m + rng.below(60),
                    adsl_servers.address().offset(rng.below(256)), local_link);
      // Traffic towards FTTH customers: mis-mapped to the far data center.
      engine.ingest(m + rng.below(60),
                    ftth_servers.address().offset(rng.below(256)), remote_link);
    }
    engine.run_cycle(m + 60);
  }

  const auto snapshot = core::take_snapshot(engine, 12 * 60, true);
  const auto table = core::LpmTable::from_snapshot(snapshot);

  std::printf("IPD view of the CDN's address space (%s):\n\n",
              cdn_space.to_string().c_str());
  std::printf("  %-20s %-12s %s\n", "IPD range", "ingress", "country");
  for (const auto& row : snapshot) {
    const auto link = row.ingress.primary_link();
    std::printf("  %-20s %-12s %s\n", row.range.to_string().c_str(),
                topo.link_name(link).c_str(),
                topo.country_of(link.router).c_str());
  }

  // The operator's question, answered mechanically:
  const auto adsl_hit = table.lookup(adsl_servers.address().offset(1));
  const auto ftth_hit = table.lookup(ftth_servers.address().offset(1));
  if (adsl_hit && ftth_hit) {
    const auto& adsl_country = topo.country_of(adsl_hit->router);
    const auto& ftth_country = topo.country_of(ftth_hit->router);
    std::printf(
        "\ndiagnosis: ADSL-serving blocks enter in %s, FTTH-serving blocks "
        "enter in %s.\n",
        adsl_country.c_str(), ftth_country.c_str());
    if (adsl_country != ftth_country) {
      std::printf(
          "-> CDN mapping problem confirmed: FTTH users are served from a "
          "data center in %s.\n   Take this to the CDN to fix the mapping "
          "(the paper's operators did exactly that).\n",
          ftth_country.c_str());
    }
  }
  return 0;
}
