// Mini Internet walkthrough — a teaching-sized scenario in the spirit of
// the paper's Mini-IPD release [25] (IPD in the mini-Internet platform
// [14], "ready to be used for research and teaching").
//
// A tiny ISP with two PoPs peers with three networks. The example narrates
// every stage-2 cycle: you can watch the /0 range fill up, split, classify
// and join, exactly like the worked example of the paper's Figure 5.
#include <cstdio>

#include "core/engine.hpp"
#include "core/output.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

using namespace ipd;

namespace {

void show_partition(const core::IpdEngine& engine, const topology::Topology& topo) {
  engine.trie(net::Family::V4).for_each_leaf([&](const core::RangeNode& leaf) {
    if (leaf.counts().empty() &&
        leaf.state() != core::RangeNode::State::Classified) {
      return;  // idle space
    }
    const char* state =
        leaf.state() == core::RangeNode::State::Classified ? "CLASSIFIED"
                                                           : "monitoring";
    std::printf("    %-18s %-10s samples=%-7.0f", leaf.prefix().to_string().c_str(),
                state, leaf.counts().total());
    if (leaf.state() == core::RangeNode::State::Classified) {
      std::printf(" ingress=%s confidence=%.3f",
                  topo.link_name(leaf.ingress().primary_link()).c_str(),
                  leaf.counts().share_of(leaf.ingress()));
    } else if (!leaf.counts().empty()) {
      std::printf(" candidates=%zu", leaf.counts().distinct_links());
    }
    std::printf("\n");
  });
}

}  // namespace

int main() {
  std::printf("=== Mini Internet: IPD step by step (cf. paper Fig. 5) ===\n\n");

  // The mini ISP: two PoPs, one border router each, three peer networks.
  topology::Topology topo;
  const auto zrh = topo.add_pop("ZRH", "CH");
  const auto gva = topo.add_pop("GVA", "CH2");
  const auto r1 = topo.add_router(zrh, "R1");
  const auto r2 = topo.add_router(gva, "R2");
  const auto blue = topo.add_interface(r1, topology::LinkType::Pni, 65001);
  const auto red = topo.add_interface(r1, topology::LinkType::PublicPeering, 65002);
  const auto green = topo.add_interface(r2, topology::LinkType::Transit, 65003);

  std::printf("topology: %s=blue peer, %s=red peer, %s=green transit\n\n",
              topo.link_name(blue).c_str(), topo.link_name(red).c_str(),
              topo.link_name(green).c_str());

  // Teaching-sized thresholds: n_cidr(/0) = 16, halving with each level
  // (like the small n_cidr values on the right of Figure 5).
  core::IpdParams params;
  params.ncidr_factor4 = 16.0 / 65536.0;
  params.ncidr_factor6 = 1e-9;
  params.cidr_max4 = 8;
  core::IpdEngine engine(params);

  util::Rng rng(7);
  const auto feed = [&](const char* prefix_text, topology::LinkId link, int n,
                        util::Timestamp ts) {
    const auto prefix = net::Prefix::from_string(prefix_text);
    for (int i = 0; i < n; ++i) {
      engine.ingest(ts + rng.below(60),
                    prefix.address().offset(rng.below(
                        static_cast<std::uint64_t>(prefix.address_count()))),
                    link);
    }
    std::printf("  + %3d flows from %-14s via %s\n", n, prefix_text,
                topo.link_name(link).c_str());
  };

  // t0: traffic from three networks lands in the /0 range.
  std::printf("[t0] traffic arrives; everything is one /0 range:\n");
  feed("20.0.0.0/8", blue, 8, 0);
  feed("130.0.0.0/8", red, 5, 0);
  feed("200.0.0.0/8", green, 4, 0);
  engine.run_cycle(60);
  std::printf("  after cycle 1 (n_cidr(/0)=%0.f reached, no dominant color "
              "-> split):\n",
              params.n_cidr(net::Family::V4, 0));
  show_partition(engine, topo);

  // t1: more traffic; halves keep splitting until ingresses separate.
  std::printf("\n[t1] more traffic; sub-ranges split further:\n");
  feed("20.0.0.0/8", blue, 10, 60);
  feed("130.0.0.0/8", red, 8, 60);
  feed("200.0.0.0/8", green, 7, 60);
  engine.run_cycle(120);
  show_partition(engine, topo);

  std::printf("\n[t2] another round; single-colored ranges classify:\n");
  feed("20.0.0.0/8", blue, 12, 120);
  feed("130.0.0.0/8", red, 9, 120);
  feed("200.0.0.0/8", green, 8, 120);
  engine.run_cycle(180);
  show_partition(engine, topo);

  std::printf("\n[t3] convergence:\n");
  feed("20.0.0.0/8", blue, 12, 180);
  feed("130.0.0.0/8", red, 9, 180);
  feed("200.0.0.0/8", green, 8, 180);
  engine.run_cycle(240);
  engine.run_cycle(300);
  show_partition(engine, topo);

  // Now the red peer's traffic moves to the green transit link (e.g. a
  // routing change on their side): IPD drops and re-learns the range.
  std::printf("\n[t4] the red peer reroutes via transit — IPD re-learns:\n");
  for (int minute = 5; minute < 12; ++minute) {
    feed("130.0.0.0/8", green, 9, minute * 60);
    feed("20.0.0.0/8", blue, 12, minute * 60);
    const auto stats = engine.run_cycle((minute + 1) * 60);
    if (stats.drops > 0) {
      std::printf("  cycle %d: classification dropped (prevalent ingress no "
                  "longer valid)\n",
                  minute + 1);
    }
    if (stats.classifications > 0) {
      std::printf("  cycle %d: %llu range(s) (re)classified\n", minute + 1,
                  static_cast<unsigned long long>(stats.classifications));
    }
  }
  show_partition(engine, topo);

  std::printf("\nfinal raw output (paper Table-3 format):\n");
  for (const auto& row : core::take_snapshot(engine, 720, true)) {
    std::printf("  %s\n", core::format_row(row, &topo).c_str());
  }
  return 0;
}
