// Ingress traffic-engineering report (paper §5.8, ISP-CDN collaboration).
//
// IPD's output is the ISP-side input to hyper-giant traffic steering: for
// each heavy AS, where does its traffic enter, over which links, and with
// which per-link shares? This example runs IPD over the synthetic ISP and
// prints the per-AS ingress breakdown an operator would feed into a
// steering platform — including detected interface bundles and ranges
// whose dominant ingress carries less than the full traffic.
#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/accuracy.hpp"
#include "analysis/runner.hpp"
#include "core/engine.hpp"
#include "core/output.hpp"
#include "workload/generator.hpp"

using namespace ipd;

int main() {
  workload::ScenarioConfig scenario = workload::small_test();
  scenario.flows_per_minute = 10000;
  scenario.bundle_as_rank = 0;
  workload::FlowGenerator gen(scenario);
  core::IpdEngine engine(workload::scaled_params(scenario));
  analysis::BinnedRunner runner(engine, nullptr);

  core::Snapshot latest;
  runner.on_snapshot = [&](util::Timestamp, const core::Snapshot& snap,
                           const core::LpmTable&) { latest = snap; };

  std::printf("running IPD over one simulated prime-time window...\n");
  const util::Timestamp t0 = util::kSecondsPerDay + 19 * util::kSecondsPerHour;
  gen.run(t0, t0 + 90 * 60,
          [&](const netflow::FlowRecord& r) { runner.offer(r); });
  runner.finish();

  const auto& universe = gen.universe();
  analysis::OwnerIndex owners(universe);

  // Aggregate classified ranges per owner AS and per ingress.
  struct AsReport {
    double samples = 0.0;
    std::size_t ranges = 0;
    std::size_t bundles = 0;
    std::size_t multi_ingress_ranges = 0;
    std::map<std::string, double> per_ingress;  // link name -> samples
  };
  std::map<std::size_t, AsReport> reports;
  for (const auto& row : latest) {
    if (!row.classified) continue;
    const auto owner = owners.owner(row.range.address());
    if (owner == workload::Universe::npos) continue;
    auto& report = reports[owner];
    report.samples += row.s_ipcount;
    report.ranges += 1;
    report.bundles += row.ingress.is_bundle() ? 1 : 0;
    report.multi_ingress_ranges += row.breakdown.size() > 1 ? 1 : 0;
    report.per_ingress[gen.topology().link_name(row.ingress.primary_link())] +=
        row.s_ipcount;
  }

  std::printf("\n=== ingress report for the top 5 ASes (steering input) ===\n");
  for (const auto as_index : universe.top_indices(5)) {
    const auto it = reports.find(as_index);
    if (it == reports.end()) continue;
    const auto& as = universe.ases()[as_index];
    const auto& report = it->second;
    std::printf("\n%s (%s, %zu attachment links): %zu classified ranges, "
                "%zu as bundles, %zu with secondary ingress traffic\n",
                as.name.c_str(), workload::to_string(as.cls), as.links.size(),
                report.ranges, report.bundles, report.multi_ingress_ranges);

    std::vector<std::pair<std::string, double>> links(report.per_ingress.begin(),
                                                      report.per_ingress.end());
    std::sort(links.begin(), links.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [name, samples] : links) {
      const double share = report.samples > 0 ? samples / report.samples : 0.0;
      std::printf("    %-14s %5.1f%%  ", name.c_str(), 100.0 * share);
      const int bar = static_cast<int>(share * 40);
      for (int i = 0; i < bar; ++i) std::printf("#");
      std::printf("\n");
    }
    if (!links.empty() && links.size() > 1) {
      std::printf("    -> steering lever: shifting ranges off %s requires "
                  "coordinating with the %s mapping system\n",
                  links.front().first.c_str(), workload::to_string(as.cls));
    }
  }
  std::printf("\n(The deployment feeds exactly this per-prefix ingress share "
              "data into the\n hyper-giant steering platform of Pujol et al. "
              "[28].)\n");
  return 0;
}
