// Quickstart: the minimal IPD pipeline.
//
// 1. Describe the border of your network (routers + ingress interfaces).
// 2. Feed sampled flow records (timestamp, source IP, ingress link) into
//    an IpdEngine — here we fabricate a few minutes of traffic by hand.
// 3. Run a stage-2 cycle every t seconds of (simulated) time.
// 4. Read the classified IPD ranges from a snapshot, or resolve single
//    addresses through the LPM table.
#include <cstdio>
#include <iostream>

#include "core/engine.hpp"
#include "core/lpm_table.hpp"
#include "core/output.hpp"
#include "topology/topology.hpp"
#include "util/rng.hpp"

using namespace ipd;

int main() {
  // --- 1. A tiny ISP: two PoPs, two border routers, three ingress links.
  topology::Topology topo;
  const auto fra = topo.add_pop("FRA1", "DE");
  const auto vie = topo.add_pop("VIE1", "AT");
  const auto r0 = topo.add_router(fra, "R0");
  const auto r1 = topo.add_router(vie, "R1");
  const auto cdn_link = topo.add_interface(r0, topology::LinkType::Pni, 65001);
  const auto peer_link = topo.add_interface(r0, topology::LinkType::PublicPeering, 65002);
  const auto transit_link = topo.add_interface(r1, topology::LinkType::Transit, 65003);

  // --- 2+3. An engine with thresholds sized for this toy volume.
  core::IpdParams params;          // paper Table-1 defaults ...
  params.ncidr_factor4 = 0.001;    // ... with factors scaled to toy volume
  params.ncidr_factor6 = 1e-7;
  core::IpdEngine engine(params);

  util::Rng rng(1);
  const auto feed = [&](const char* prefix_text, topology::LinkId link,
                        util::Timestamp minute, int flows) {
    const auto prefix = net::Prefix::from_string(prefix_text);
    for (int i = 0; i < flows; ++i) {
      const auto src = prefix.address().offset(
          rng.below(static_cast<std::uint64_t>(prefix.address_count())));
      engine.ingest(minute + rng.below(60), src, link);
    }
  };

  for (int minute = 0; minute < 10; ++minute) {
    const util::Timestamp m = minute * 60;
    feed("203.0.112.0/22", cdn_link, m, 300);     // a CDN behind the PNI
    feed("198.51.100.0/24", peer_link, m, 120);   // a peer's prefix
    feed("192.0.2.0/24", transit_link, m, 80);    // reached via transit
    engine.run_cycle(m + 60);                     // stage 2, every t = 60 s
  }

  // --- 4. Inspect the result.
  const auto snapshot = core::take_snapshot(engine, 600, /*classified_only=*/true);
  std::printf("classified IPD ranges after 10 minutes:\n");
  for (const auto& row : snapshot) {
    std::printf("  %s\n", core::format_row(row, &topo).c_str());
  }

  const auto table = core::LpmTable::from_snapshot(snapshot);
  const auto probe = net::IpAddress::from_string("203.0.113.77");
  if (const auto hit = table.lookup(probe)) {
    std::printf("\nwhere does %s enter the network?  %s\n",
                probe.to_string().c_str(),
                topo.link_name(hit->primary_link()).c_str());
  }
  return 0;
}
