// Peering-violation monitor (paper §5.6).
//
// Tier-1 peers are expected to hand over their traffic on direct peering
// links (PNI / public peering). Traffic from a tier-1's address space that
// enters over other links — e.g. a transit interface — may indicate a
// settlement-free-peering violation. This example runs IPD over the full
// synthetic ISP scenario (which includes a growing violation ramp) and
// prints a per-peer violation report from the classified ranges.
#include <cstdio>

#include "analysis/accuracy.hpp"
#include "analysis/rangestats.hpp"
#include "analysis/runner.hpp"
#include "core/engine.hpp"
#include "core/output.hpp"
#include "workload/generator.hpp"

using namespace ipd;

int main() {
  workload::ScenarioConfig scenario = workload::small_test();
  scenario.flows_per_minute = 10000;
  scenario.violations.base_rate = 0.12;  // a noticeable leak, for the demo
  workload::FlowGenerator gen(scenario);
  core::IpdEngine engine(workload::scaled_params(scenario));
  analysis::BinnedRunner runner(engine, nullptr);

  core::Snapshot latest;
  runner.on_snapshot = [&](util::Timestamp, const core::Snapshot& snap,
                           const core::LpmTable&) { latest = snap; };

  std::printf("running IPD over one simulated evening...\n");
  const util::Timestamp t0 = util::kSecondsPerDay + 18 * util::kSecondsPerHour;
  gen.run(t0, t0 + 90 * 60,
          [&](const netflow::FlowRecord& r) { runner.offer(r); });
  runner.finish();

  const auto& universe = gen.universe();
  analysis::OwnerIndex owners(universe);
  const auto scan =
      analysis::scan_violations(latest, universe, gen.topology(), owners);

  std::printf("\ntier-1 peering report (%llu classified tier-1 ranges):\n\n",
              static_cast<unsigned long long>(scan.total_tier1_ranges));
  std::printf("  %-8s %-10s %s\n", "peer", "violations", "assessment");
  const auto& tier1 = universe.tier1_indices();
  for (std::size_t i = 0; i < tier1.size(); ++i) {
    const auto& as = universe.ases()[tier1[i]];
    const auto count = scan.violations_per_tier1[i];
    std::printf("  %-8s %-10llu %s\n", as.name.c_str(),
                static_cast<unsigned long long>(count),
                count == 0 ? "clean"
                           : "traffic enters via non-peering links — "
                             "review the interconnect");
  }

  // Show a few offending ranges with their actual ingress interface.
  std::printf("\nexample offending ranges:\n");
  int printed = 0;
  for (const auto& row : latest) {
    if (!row.classified || printed >= 5) continue;
    const auto owner = owners.owner(row.range.address());
    bool is_tier1 = false;
    for (const auto t : tier1) is_tier1 |= t == owner;
    if (!is_tier1) continue;
    const auto& as = universe.ases()[owner];
    const auto link = row.ingress.primary_link();
    if (gen.topology().is_peering_link_to(link, as.asn)) continue;
    std::printf("  %s (%s) enters via %s [%s]\n",
                row.range.to_string().c_str(), as.name.c_str(),
                gen.topology().link_name(link).c_str(),
                topology::to_string(gen.topology().interface(link).type));
    ++printed;
  }
  std::printf(
      "\nnote: without access to the peering agreements these are *possible* "
      "violations\n(the paper makes the same caveat) — but such patterns are "
      "generally unexpected\nbetween settlement-free peers.\n");
  return 0;
}
