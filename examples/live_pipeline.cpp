// Live pipeline: the deployment's architecture in one process.
//
// Border routers export NetFlow v5 datagrams; reader threads push them into
// a CollectorService (per-source lock-free rings -> statistical-time
// pre-processing -> single IPD thread), which publishes a fresh LPM lookup
// table every snapshot interval. A consumer resolves addresses against the
// live table while ingestion continues — the §5.7 single-server setup,
// scaled to a demo.
#include <barrier>
#include <cstdio>
#include <thread>

#include "collector/collector.hpp"
#include "netflow/v5.hpp"
#include "util/rng.hpp"

using namespace ipd;

int main() {
  core::IpdParams params;
  params.ncidr_factor4 = 0.01;  // demo-volume thresholds
  params.ncidr_factor6 = 1e-6;
  params.ncidr_floor = 8.0;

  collector::CollectorConfig config;
  config.stat_time.activity_threshold = 5;
  config.snapshot_len = 300;

  constexpr std::size_t kRouters = 4;
  collector::CollectorService service(params, config, kRouters);
  service.start();

  // Four "routers", each exporting v5 datagrams for its own customer
  // cone from a separate thread (here: 30 simulated minutes of traffic).
  // A barrier keeps the exporters in per-minute lockstep, as wall-clock
  // export timers would in a real deployment — without it one thread could
  // race simulated hours ahead and the statistical-time pre-processing
  // would rightly discard the laggards as implausible.
  std::barrier minute_barrier(kRouters);
  std::vector<std::thread> exporters;
  for (std::size_t router = 0; router < kRouters; ++router) {
    exporters.emplace_back([&service, &minute_barrier, router] {
      util::Rng rng(1000 + router);
      std::uint32_t sequence = 0;
      for (int minute = 0; minute < 30; ++minute) {
        minute_barrier.arrive_and_wait();
        const util::Timestamp ts = 500000 + minute * 60;
        std::vector<netflow::FlowRecord> flows(120);
        for (auto& flow : flows) {
          flow.ts = ts + static_cast<util::Timestamp>(rng.below(60));
          // Each router receives a distinct /8 on interface 1 or 2.
          const auto base = static_cast<std::uint32_t>(10 + router) << 24;
          flow.src_ip = net::IpAddress::v4(
              base | static_cast<std::uint32_t>(rng.below(1u << 20)));
          flow.ingress = topology::LinkId{
              static_cast<topology::RouterId>(router),
              static_cast<topology::InterfaceIndex>(1 + rng.below(1))};
        }
        auto packets = netflow::v5::from_flow_records(flows, sequence);
        for (auto& packet : packets) {
          packet.header.unix_secs = static_cast<std::uint32_t>(ts);
          sequence = packet.header.flow_sequence +
                     packet.header.count;
          const auto bytes = netflow::v5::encode(packet);
          service.submit_datagram(router,
                                  static_cast<topology::RouterId>(router),
                                  bytes);
        }
      }
    });
  }
  for (auto& t : exporters) t.join();
  service.stop();

  const auto stats = service.stats();
  std::printf("pipeline: %llu datagrams in (%llu malformed), %llu flows "
              "ingested, %llu cycles, %llu tables published\n",
              static_cast<unsigned long long>(stats.datagrams_in),
              static_cast<unsigned long long>(stats.datagrams_malformed),
              static_cast<unsigned long long>(stats.flows_ingested),
              static_cast<unsigned long long>(stats.cycles_run),
              static_cast<unsigned long long>(stats.snapshots_published));

  const auto table = service.current_table();
  std::printf("\nlive lookups against the published table:\n");
  for (std::size_t router = 0; router < kRouters; ++router) {
    const auto probe = net::IpAddress::v4(
        (static_cast<std::uint32_t>(10 + router) << 24) | 0x1234);
    if (const auto ingress = table->lookup(probe)) {
      std::printf("  %-12s enters at router %u, interface(s) %s\n",
                  probe.to_string().c_str(), ingress->router,
                  ingress->to_string().c_str());
    } else {
      std::printf("  %-12s unmapped\n", probe.to_string().c_str());
    }
  }
  return 0;
}
