
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netflow/codec.cpp" "src/netflow/CMakeFiles/ipd_netflow.dir/codec.cpp.o" "gcc" "src/netflow/CMakeFiles/ipd_netflow.dir/codec.cpp.o.d"
  "/root/repo/src/netflow/ipfix.cpp" "src/netflow/CMakeFiles/ipd_netflow.dir/ipfix.cpp.o" "gcc" "src/netflow/CMakeFiles/ipd_netflow.dir/ipfix.cpp.o.d"
  "/root/repo/src/netflow/statistical_time.cpp" "src/netflow/CMakeFiles/ipd_netflow.dir/statistical_time.cpp.o" "gcc" "src/netflow/CMakeFiles/ipd_netflow.dir/statistical_time.cpp.o.d"
  "/root/repo/src/netflow/text_io.cpp" "src/netflow/CMakeFiles/ipd_netflow.dir/text_io.cpp.o" "gcc" "src/netflow/CMakeFiles/ipd_netflow.dir/text_io.cpp.o.d"
  "/root/repo/src/netflow/v5.cpp" "src/netflow/CMakeFiles/ipd_netflow.dir/v5.cpp.o" "gcc" "src/netflow/CMakeFiles/ipd_netflow.dir/v5.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ipd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ipd_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ipd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
