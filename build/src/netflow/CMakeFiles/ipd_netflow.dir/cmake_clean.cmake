file(REMOVE_RECURSE
  "CMakeFiles/ipd_netflow.dir/codec.cpp.o"
  "CMakeFiles/ipd_netflow.dir/codec.cpp.o.d"
  "CMakeFiles/ipd_netflow.dir/ipfix.cpp.o"
  "CMakeFiles/ipd_netflow.dir/ipfix.cpp.o.d"
  "CMakeFiles/ipd_netflow.dir/statistical_time.cpp.o"
  "CMakeFiles/ipd_netflow.dir/statistical_time.cpp.o.d"
  "CMakeFiles/ipd_netflow.dir/text_io.cpp.o"
  "CMakeFiles/ipd_netflow.dir/text_io.cpp.o.d"
  "CMakeFiles/ipd_netflow.dir/v5.cpp.o"
  "CMakeFiles/ipd_netflow.dir/v5.cpp.o.d"
  "libipd_netflow.a"
  "libipd_netflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipd_netflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
