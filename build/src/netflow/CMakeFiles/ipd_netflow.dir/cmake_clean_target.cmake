file(REMOVE_RECURSE
  "libipd_netflow.a"
)
