# Empty compiler generated dependencies file for ipd_netflow.
# This may be replaced when dependencies are built.
