# Empty compiler generated dependencies file for ipd_analysis.
# This may be replaced when dependencies are built.
