file(REMOVE_RECURSE
  "libipd_analysis.a"
)
