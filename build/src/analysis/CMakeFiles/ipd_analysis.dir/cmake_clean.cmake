file(REMOVE_RECURSE
  "CMakeFiles/ipd_analysis.dir/accuracy.cpp.o"
  "CMakeFiles/ipd_analysis.dir/accuracy.cpp.o.d"
  "CMakeFiles/ipd_analysis.dir/lb_detect.cpp.o"
  "CMakeFiles/ipd_analysis.dir/lb_detect.cpp.o.d"
  "CMakeFiles/ipd_analysis.dir/paramstudy.cpp.o"
  "CMakeFiles/ipd_analysis.dir/paramstudy.cpp.o.d"
  "CMakeFiles/ipd_analysis.dir/rangestats.cpp.o"
  "CMakeFiles/ipd_analysis.dir/rangestats.cpp.o.d"
  "CMakeFiles/ipd_analysis.dir/runner.cpp.o"
  "CMakeFiles/ipd_analysis.dir/runner.cpp.o.d"
  "CMakeFiles/ipd_analysis.dir/stability.cpp.o"
  "CMakeFiles/ipd_analysis.dir/stability.cpp.o.d"
  "CMakeFiles/ipd_analysis.dir/stats.cpp.o"
  "CMakeFiles/ipd_analysis.dir/stats.cpp.o.d"
  "libipd_analysis.a"
  "libipd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
