# Empty compiler generated dependencies file for ipd_collector.
# This may be replaced when dependencies are built.
