file(REMOVE_RECURSE
  "libipd_collector.a"
)
