file(REMOVE_RECURSE
  "CMakeFiles/ipd_collector.dir/collector.cpp.o"
  "CMakeFiles/ipd_collector.dir/collector.cpp.o.d"
  "libipd_collector.a"
  "libipd_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipd_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
