file(REMOVE_RECURSE
  "libipd_topology.a"
)
