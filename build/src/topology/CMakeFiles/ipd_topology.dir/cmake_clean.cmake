file(REMOVE_RECURSE
  "CMakeFiles/ipd_topology.dir/builder.cpp.o"
  "CMakeFiles/ipd_topology.dir/builder.cpp.o.d"
  "CMakeFiles/ipd_topology.dir/topology.cpp.o"
  "CMakeFiles/ipd_topology.dir/topology.cpp.o.d"
  "libipd_topology.a"
  "libipd_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipd_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
