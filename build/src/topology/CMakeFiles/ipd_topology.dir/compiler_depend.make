# Empty compiler generated dependencies file for ipd_topology.
# This may be replaced when dependencies are built.
