file(REMOVE_RECURSE
  "libipd_util.a"
)
