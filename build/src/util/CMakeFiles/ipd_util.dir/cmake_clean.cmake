file(REMOVE_RECURSE
  "CMakeFiles/ipd_util.dir/csv.cpp.o"
  "CMakeFiles/ipd_util.dir/csv.cpp.o.d"
  "CMakeFiles/ipd_util.dir/logging.cpp.o"
  "CMakeFiles/ipd_util.dir/logging.cpp.o.d"
  "CMakeFiles/ipd_util.dir/rng.cpp.o"
  "CMakeFiles/ipd_util.dir/rng.cpp.o.d"
  "CMakeFiles/ipd_util.dir/strings.cpp.o"
  "CMakeFiles/ipd_util.dir/strings.cpp.o.d"
  "CMakeFiles/ipd_util.dir/table.cpp.o"
  "CMakeFiles/ipd_util.dir/table.cpp.o.d"
  "libipd_util.a"
  "libipd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
