# Empty compiler generated dependencies file for ipd_util.
# This may be replaced when dependencies are built.
