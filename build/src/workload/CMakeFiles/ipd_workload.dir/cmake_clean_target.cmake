file(REMOVE_RECURSE
  "libipd_workload.a"
)
