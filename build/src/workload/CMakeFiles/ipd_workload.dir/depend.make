# Empty dependencies file for ipd_workload.
# This may be replaced when dependencies are built.
