
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/diurnal.cpp" "src/workload/CMakeFiles/ipd_workload.dir/diurnal.cpp.o" "gcc" "src/workload/CMakeFiles/ipd_workload.dir/diurnal.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/ipd_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/ipd_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/mapping.cpp" "src/workload/CMakeFiles/ipd_workload.dir/mapping.cpp.o" "gcc" "src/workload/CMakeFiles/ipd_workload.dir/mapping.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/workload/CMakeFiles/ipd_workload.dir/scenario.cpp.o" "gcc" "src/workload/CMakeFiles/ipd_workload.dir/scenario.cpp.o.d"
  "/root/repo/src/workload/universe.cpp" "src/workload/CMakeFiles/ipd_workload.dir/universe.cpp.o" "gcc" "src/workload/CMakeFiles/ipd_workload.dir/universe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ipd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ipd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/ipd_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ipd_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ipd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
