file(REMOVE_RECURSE
  "CMakeFiles/ipd_workload.dir/diurnal.cpp.o"
  "CMakeFiles/ipd_workload.dir/diurnal.cpp.o.d"
  "CMakeFiles/ipd_workload.dir/generator.cpp.o"
  "CMakeFiles/ipd_workload.dir/generator.cpp.o.d"
  "CMakeFiles/ipd_workload.dir/mapping.cpp.o"
  "CMakeFiles/ipd_workload.dir/mapping.cpp.o.d"
  "CMakeFiles/ipd_workload.dir/scenario.cpp.o"
  "CMakeFiles/ipd_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/ipd_workload.dir/universe.cpp.o"
  "CMakeFiles/ipd_workload.dir/universe.cpp.o.d"
  "libipd_workload.a"
  "libipd_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipd_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
