file(REMOVE_RECURSE
  "libipd_bgp.a"
)
