# Empty dependencies file for ipd_bgp.
# This may be replaced when dependencies are built.
