file(REMOVE_RECURSE
  "CMakeFiles/ipd_bgp.dir/generator.cpp.o"
  "CMakeFiles/ipd_bgp.dir/generator.cpp.o.d"
  "CMakeFiles/ipd_bgp.dir/rib.cpp.o"
  "CMakeFiles/ipd_bgp.dir/rib.cpp.o.d"
  "libipd_bgp.a"
  "libipd_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipd_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
