file(REMOVE_RECURSE
  "CMakeFiles/ipd_net.dir/ip_address.cpp.o"
  "CMakeFiles/ipd_net.dir/ip_address.cpp.o.d"
  "CMakeFiles/ipd_net.dir/prefix.cpp.o"
  "CMakeFiles/ipd_net.dir/prefix.cpp.o.d"
  "libipd_net.a"
  "libipd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
