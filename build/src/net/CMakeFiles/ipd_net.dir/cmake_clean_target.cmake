file(REMOVE_RECURSE
  "libipd_net.a"
)
