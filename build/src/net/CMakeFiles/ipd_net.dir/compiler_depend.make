# Empty compiler generated dependencies file for ipd_net.
# This may be replaced when dependencies are built.
