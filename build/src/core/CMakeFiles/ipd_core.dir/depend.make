# Empty dependencies file for ipd_core.
# This may be replaced when dependencies are built.
