file(REMOVE_RECURSE
  "CMakeFiles/ipd_core.dir/engine.cpp.o"
  "CMakeFiles/ipd_core.dir/engine.cpp.o.d"
  "CMakeFiles/ipd_core.dir/ingress.cpp.o"
  "CMakeFiles/ipd_core.dir/ingress.cpp.o.d"
  "CMakeFiles/ipd_core.dir/lpm_table.cpp.o"
  "CMakeFiles/ipd_core.dir/lpm_table.cpp.o.d"
  "CMakeFiles/ipd_core.dir/output.cpp.o"
  "CMakeFiles/ipd_core.dir/output.cpp.o.d"
  "CMakeFiles/ipd_core.dir/params.cpp.o"
  "CMakeFiles/ipd_core.dir/params.cpp.o.d"
  "CMakeFiles/ipd_core.dir/trie.cpp.o"
  "CMakeFiles/ipd_core.dir/trie.cpp.o.d"
  "libipd_core.a"
  "libipd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
