
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/ipd_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/ipd_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/ingress.cpp" "src/core/CMakeFiles/ipd_core.dir/ingress.cpp.o" "gcc" "src/core/CMakeFiles/ipd_core.dir/ingress.cpp.o.d"
  "/root/repo/src/core/lpm_table.cpp" "src/core/CMakeFiles/ipd_core.dir/lpm_table.cpp.o" "gcc" "src/core/CMakeFiles/ipd_core.dir/lpm_table.cpp.o.d"
  "/root/repo/src/core/output.cpp" "src/core/CMakeFiles/ipd_core.dir/output.cpp.o" "gcc" "src/core/CMakeFiles/ipd_core.dir/output.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/core/CMakeFiles/ipd_core.dir/params.cpp.o" "gcc" "src/core/CMakeFiles/ipd_core.dir/params.cpp.o.d"
  "/root/repo/src/core/trie.cpp" "src/core/CMakeFiles/ipd_core.dir/trie.cpp.o" "gcc" "src/core/CMakeFiles/ipd_core.dir/trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ipd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/ipd_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ipd_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ipd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
