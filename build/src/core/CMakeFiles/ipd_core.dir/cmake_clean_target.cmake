file(REMOVE_RECURSE
  "libipd_core.a"
)
