file(REMOVE_RECURSE
  "CMakeFiles/peering_monitor.dir/peering_monitor.cpp.o"
  "CMakeFiles/peering_monitor.dir/peering_monitor.cpp.o.d"
  "peering_monitor"
  "peering_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peering_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
