# Empty dependencies file for peering_monitor.
# This may be replaced when dependencies are built.
