# Empty compiler generated dependencies file for mini_internet.
# This may be replaced when dependencies are built.
