file(REMOVE_RECURSE
  "CMakeFiles/mini_internet.dir/mini_internet.cpp.o"
  "CMakeFiles/mini_internet.dir/mini_internet.cpp.o.d"
  "mini_internet"
  "mini_internet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mini_internet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
