# Empty compiler generated dependencies file for traffic_engineering.
# This may be replaced when dependencies are built.
