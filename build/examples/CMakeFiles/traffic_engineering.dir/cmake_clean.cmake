file(REMOVE_RECURSE
  "CMakeFiles/traffic_engineering.dir/traffic_engineering.cpp.o"
  "CMakeFiles/traffic_engineering.dir/traffic_engineering.cpp.o.d"
  "traffic_engineering"
  "traffic_engineering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_engineering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
