# Empty compiler generated dependencies file for cdn_debugging.
# This may be replaced when dependencies are built.
