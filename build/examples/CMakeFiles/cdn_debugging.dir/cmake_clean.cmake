file(REMOVE_RECURSE
  "CMakeFiles/cdn_debugging.dir/cdn_debugging.cpp.o"
  "CMakeFiles/cdn_debugging.dir/cdn_debugging.cpp.o.d"
  "cdn_debugging"
  "cdn_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdn_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
