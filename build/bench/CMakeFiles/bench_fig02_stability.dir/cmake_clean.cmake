file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_stability.dir/bench_fig02_stability.cpp.o"
  "CMakeFiles/bench_fig02_stability.dir/bench_fig02_stability.cpp.o.d"
  "bench_fig02_stability"
  "bench_fig02_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
