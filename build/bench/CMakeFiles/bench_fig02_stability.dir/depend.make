# Empty dependencies file for bench_fig02_stability.
# This may be replaced when dependencies are built.
