# Empty dependencies file for bench_appA_param_study.
# This may be replaced when dependencies are built.
