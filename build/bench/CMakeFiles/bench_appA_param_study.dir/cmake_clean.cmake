file(REMOVE_RECURSE
  "CMakeFiles/bench_appA_param_study.dir/bench_appA_param_study.cpp.o"
  "CMakeFiles/bench_appA_param_study.dir/bench_appA_param_study.cpp.o.d"
  "bench_appA_param_study"
  "bench_appA_param_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appA_param_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
