# Empty compiler generated dependencies file for bench_sec52_specificity.
# This may be replaced when dependencies are built.
