file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_specificity.dir/bench_sec52_specificity.cpp.o"
  "CMakeFiles/bench_sec52_specificity.dir/bench_sec52_specificity.cpp.o.d"
  "bench_sec52_specificity"
  "bench_sec52_specificity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_specificity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
