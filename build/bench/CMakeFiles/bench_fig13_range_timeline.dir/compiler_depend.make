# Empty compiler generated dependencies file for bench_fig13_range_timeline.
# This may be replaced when dependencies are built.
