# Empty dependencies file for bench_fig17_peering.
# This may be replaced when dependencies are built.
