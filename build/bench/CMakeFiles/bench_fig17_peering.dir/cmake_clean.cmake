file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_peering.dir/bench_fig17_peering.cpp.o"
  "CMakeFiles/bench_fig17_peering.dir/bench_fig17_peering.cpp.o.d"
  "bench_fig17_peering"
  "bench_fig17_peering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_peering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
