# Empty dependencies file for bench_ext_lb_detect.
# This may be replaced when dependencies are built.
