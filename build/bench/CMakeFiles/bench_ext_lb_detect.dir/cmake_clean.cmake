file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_lb_detect.dir/bench_ext_lb_detect.cpp.o"
  "CMakeFiles/bench_ext_lb_detect.dir/bench_ext_lb_detect.cpp.o.d"
  "bench_ext_lb_detect"
  "bench_ext_lb_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_lb_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
