# Empty dependencies file for bench_fig03_ingress_count.
# This may be replaced when dependencies are built.
