file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_ingress_count.dir/bench_fig03_ingress_count.cpp.o"
  "CMakeFiles/bench_fig03_ingress_count.dir/bench_fig03_ingress_count.cpp.o.d"
  "bench_fig03_ingress_count"
  "bench_fig03_ingress_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_ingress_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
