file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_countmode.dir/bench_abl_countmode.cpp.o"
  "CMakeFiles/bench_abl_countmode.dir/bench_abl_countmode.cpp.o.d"
  "bench_abl_countmode"
  "bench_abl_countmode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_countmode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
