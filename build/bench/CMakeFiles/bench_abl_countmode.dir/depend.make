# Empty dependencies file for bench_abl_countmode.
# This may be replaced when dependencies are built.
