# Empty compiler generated dependencies file for bench_tab01_params.
# This may be replaced when dependencies are built.
