file(REMOVE_RECURSE
  "CMakeFiles/bench_tab01_params.dir/bench_tab01_params.cpp.o"
  "CMakeFiles/bench_tab01_params.dir/bench_tab01_params.cpp.o.d"
  "bench_tab01_params"
  "bench_tab01_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab01_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
