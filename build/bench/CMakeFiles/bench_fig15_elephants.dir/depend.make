# Empty dependencies file for bench_fig15_elephants.
# This may be replaced when dependencies are built.
