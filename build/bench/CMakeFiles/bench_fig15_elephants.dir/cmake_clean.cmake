file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_elephants.dir/bench_fig15_elephants.cpp.o"
  "CMakeFiles/bench_fig15_elephants.dir/bench_fig15_elephants.cpp.o.d"
  "bench_fig15_elephants"
  "bench_fig15_elephants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_elephants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
