# Empty dependencies file for bench_fig04_traffic_share.
# This may be replaced when dependencies are built.
