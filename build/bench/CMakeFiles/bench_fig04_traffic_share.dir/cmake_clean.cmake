file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_traffic_share.dir/bench_fig04_traffic_share.cpp.o"
  "CMakeFiles/bench_fig04_traffic_share.dir/bench_fig04_traffic_share.cpp.o.d"
  "bench_fig04_traffic_share"
  "bench_fig04_traffic_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_traffic_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
