# Empty dependencies file for bench_fig06_accuracy.
# This may be replaced when dependencies are built.
