file(REMOVE_RECURSE
  "libipd_bench_common.a"
)
