# Empty compiler generated dependencies file for ipd_bench_common.
# This may be replaced when dependencies are built.
