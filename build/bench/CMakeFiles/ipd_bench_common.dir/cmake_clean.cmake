file(REMOVE_RECURSE
  "CMakeFiles/ipd_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/ipd_bench_common.dir/bench_common.cpp.o.d"
  "libipd_bench_common.a"
  "libipd_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipd_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
