file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_misses.dir/bench_fig07_misses.cpp.o"
  "CMakeFiles/bench_fig07_misses.dir/bench_fig07_misses.cpp.o.d"
  "bench_fig07_misses"
  "bench_fig07_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
