# Empty dependencies file for bench_fig07_misses.
# This may be replaced when dependencies are built.
