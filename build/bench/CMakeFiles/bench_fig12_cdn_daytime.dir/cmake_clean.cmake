file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_cdn_daytime.dir/bench_fig12_cdn_daytime.cpp.o"
  "CMakeFiles/bench_fig12_cdn_daytime.dir/bench_fig12_cdn_daytime.cpp.o.d"
  "bench_fig12_cdn_daytime"
  "bench_fig12_cdn_daytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cdn_daytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
