# Empty dependencies file for bench_fig12_cdn_daytime.
# This may be replaced when dependencies are built.
