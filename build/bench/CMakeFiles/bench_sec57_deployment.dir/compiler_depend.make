# Empty compiler generated dependencies file for bench_sec57_deployment.
# This may be replaced when dependencies are built.
