file(REMOVE_RECURSE
  "CMakeFiles/bench_sec57_deployment.dir/bench_sec57_deployment.cpp.o"
  "CMakeFiles/bench_sec57_deployment.dir/bench_sec57_deployment.cpp.o.d"
  "bench_sec57_deployment"
  "bench_sec57_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec57_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
