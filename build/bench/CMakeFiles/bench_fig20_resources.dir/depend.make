# Empty dependencies file for bench_fig20_resources.
# This may be replaced when dependencies are built.
