# Empty compiler generated dependencies file for bench_fig14_prefix_detail.
# This may be replaced when dependencies are built.
