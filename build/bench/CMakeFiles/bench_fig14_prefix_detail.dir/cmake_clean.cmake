file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_prefix_detail.dir/bench_fig14_prefix_detail.cpp.o"
  "CMakeFiles/bench_fig14_prefix_detail.dir/bench_fig14_prefix_detail.cpp.o.d"
  "bench_fig14_prefix_detail"
  "bench_fig14_prefix_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_prefix_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
