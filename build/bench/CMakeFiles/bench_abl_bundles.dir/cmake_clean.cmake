file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_bundles.dir/bench_abl_bundles.cpp.o"
  "CMakeFiles/bench_abl_bundles.dir/bench_abl_bundles.cpp.o.d"
  "bench_abl_bundles"
  "bench_abl_bundles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_bundles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
