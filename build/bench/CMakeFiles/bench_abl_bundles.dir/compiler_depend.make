# Empty compiler generated dependencies file for bench_abl_bundles.
# This may be replaced when dependencies are built.
