# Empty dependencies file for bench_fig16_symmetry.
# This may be replaced when dependencies are built.
