file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_longitudinal.dir/bench_fig10_longitudinal.cpp.o"
  "CMakeFiles/bench_fig10_longitudinal.dir/bench_fig10_longitudinal.cpp.o.d"
  "bench_fig10_longitudinal"
  "bench_fig10_longitudinal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_longitudinal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
