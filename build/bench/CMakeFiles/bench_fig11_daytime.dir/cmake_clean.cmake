file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_daytime.dir/bench_fig11_daytime.cpp.o"
  "CMakeFiles/bench_fig11_daytime.dir/bench_fig11_daytime.cpp.o.d"
  "bench_fig11_daytime"
  "bench_fig11_daytime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_daytime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
