# Empty dependencies file for bench_fig11_daytime.
# This may be replaced when dependencies are built.
