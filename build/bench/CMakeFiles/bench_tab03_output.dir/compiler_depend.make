# Empty compiler generated dependencies file for bench_tab03_output.
# This may be replaced when dependencies are built.
