file(REMOVE_RECURSE
  "CMakeFiles/bench_tab03_output.dir/bench_tab03_output.cpp.o"
  "CMakeFiles/bench_tab03_output.dir/bench_tab03_output.cpp.o.d"
  "bench_tab03_output"
  "bench_tab03_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab03_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
