# Empty dependencies file for bench_fig08_miss_timeline.
# This may be replaced when dependencies are built.
