file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_miss_timeline.dir/bench_fig08_miss_timeline.cpp.o"
  "CMakeFiles/bench_fig08_miss_timeline.dir/bench_fig08_miss_timeline.cpp.o.d"
  "bench_fig08_miss_timeline"
  "bench_fig08_miss_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_miss_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
