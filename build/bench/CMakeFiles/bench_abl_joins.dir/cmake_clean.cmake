file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_joins.dir/bench_abl_joins.cpp.o"
  "CMakeFiles/bench_abl_joins.dir/bench_abl_joins.cpp.o.d"
  "bench_abl_joins"
  "bench_abl_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
