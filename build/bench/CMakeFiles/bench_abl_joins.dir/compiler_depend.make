# Empty compiler generated dependencies file for bench_abl_joins.
# This may be replaced when dependencies are built.
