file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_range_sizes.dir/bench_fig09_range_sizes.cpp.o"
  "CMakeFiles/bench_fig09_range_sizes.dir/bench_fig09_range_sizes.cpp.o.d"
  "bench_fig09_range_sizes"
  "bench_fig09_range_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_range_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
