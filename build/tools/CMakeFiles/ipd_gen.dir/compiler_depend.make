# Empty compiler generated dependencies file for ipd_gen.
# This may be replaced when dependencies are built.
