file(REMOVE_RECURSE
  "CMakeFiles/ipd_gen.dir/ipd_gen.cpp.o"
  "CMakeFiles/ipd_gen.dir/ipd_gen.cpp.o.d"
  "ipd_gen"
  "ipd_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipd_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
