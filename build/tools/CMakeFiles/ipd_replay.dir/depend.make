# Empty dependencies file for ipd_replay.
# This may be replaced when dependencies are built.
