file(REMOVE_RECURSE
  "CMakeFiles/ipd_replay.dir/ipd_replay.cpp.o"
  "CMakeFiles/ipd_replay.dir/ipd_replay.cpp.o.d"
  "ipd_replay"
  "ipd_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipd_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
