file(REMOVE_RECURSE
  "CMakeFiles/test_netflow_v5.dir/test_netflow_v5.cpp.o"
  "CMakeFiles/test_netflow_v5.dir/test_netflow_v5.cpp.o.d"
  "test_netflow_v5"
  "test_netflow_v5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_netflow_v5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
