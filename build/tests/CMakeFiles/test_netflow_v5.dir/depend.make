# Empty dependencies file for test_netflow_v5.
# This may be replaced when dependencies are built.
