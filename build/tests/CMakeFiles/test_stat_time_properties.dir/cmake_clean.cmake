file(REMOVE_RECURSE
  "CMakeFiles/test_stat_time_properties.dir/test_stat_time_properties.cpp.o"
  "CMakeFiles/test_stat_time_properties.dir/test_stat_time_properties.cpp.o.d"
  "test_stat_time_properties"
  "test_stat_time_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stat_time_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
