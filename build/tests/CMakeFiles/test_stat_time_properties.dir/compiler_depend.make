# Empty compiler generated dependencies file for test_stat_time_properties.
# This may be replaced when dependencies are built.
