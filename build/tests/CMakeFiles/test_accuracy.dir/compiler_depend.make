# Empty compiler generated dependencies file for test_accuracy.
# This may be replaced when dependencies are built.
