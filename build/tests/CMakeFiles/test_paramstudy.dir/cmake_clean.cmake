file(REMOVE_RECURSE
  "CMakeFiles/test_paramstudy.dir/test_paramstudy.cpp.o"
  "CMakeFiles/test_paramstudy.dir/test_paramstudy.cpp.o.d"
  "test_paramstudy"
  "test_paramstudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paramstudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
