# Empty compiler generated dependencies file for test_paramstudy.
# This may be replaced when dependencies are built.
