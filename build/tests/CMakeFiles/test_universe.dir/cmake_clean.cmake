file(REMOVE_RECURSE
  "CMakeFiles/test_universe.dir/test_universe.cpp.o"
  "CMakeFiles/test_universe.dir/test_universe.cpp.o.d"
  "test_universe"
  "test_universe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_universe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
