# Empty dependencies file for test_universe.
# This may be replaced when dependencies are built.
