file(REMOVE_RECURSE
  "CMakeFiles/test_collector.dir/test_collector.cpp.o"
  "CMakeFiles/test_collector.dir/test_collector.cpp.o.d"
  "test_collector"
  "test_collector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
