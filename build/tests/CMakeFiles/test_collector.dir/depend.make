# Empty dependencies file for test_collector.
# This may be replaced when dependencies are built.
