file(REMOVE_RECURSE
  "CMakeFiles/test_rangestats.dir/test_rangestats.cpp.o"
  "CMakeFiles/test_rangestats.dir/test_rangestats.cpp.o.d"
  "test_rangestats"
  "test_rangestats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rangestats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
