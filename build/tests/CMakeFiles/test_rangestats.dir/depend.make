# Empty dependencies file for test_rangestats.
# This may be replaced when dependencies are built.
