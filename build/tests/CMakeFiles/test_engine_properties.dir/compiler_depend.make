# Empty compiler generated dependencies file for test_engine_properties.
# This may be replaced when dependencies are built.
