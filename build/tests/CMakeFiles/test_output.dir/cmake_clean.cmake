file(REMOVE_RECURSE
  "CMakeFiles/test_output.dir/test_output.cpp.o"
  "CMakeFiles/test_output.dir/test_output.cpp.o.d"
  "test_output"
  "test_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
