# Empty compiler generated dependencies file for test_output.
# This may be replaced when dependencies are built.
