file(REMOVE_RECURSE
  "CMakeFiles/test_csv_table.dir/test_csv_table.cpp.o"
  "CMakeFiles/test_csv_table.dir/test_csv_table.cpp.o.d"
  "test_csv_table"
  "test_csv_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csv_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
