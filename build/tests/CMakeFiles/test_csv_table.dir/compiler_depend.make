# Empty compiler generated dependencies file for test_csv_table.
# This may be replaced when dependencies are built.
