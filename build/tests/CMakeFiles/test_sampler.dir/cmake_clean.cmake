file(REMOVE_RECURSE
  "CMakeFiles/test_sampler.dir/test_sampler.cpp.o"
  "CMakeFiles/test_sampler.dir/test_sampler.cpp.o.d"
  "test_sampler"
  "test_sampler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
