file(REMOVE_RECURSE
  "CMakeFiles/test_time.dir/test_time.cpp.o"
  "CMakeFiles/test_time.dir/test_time.cpp.o.d"
  "test_time"
  "test_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
