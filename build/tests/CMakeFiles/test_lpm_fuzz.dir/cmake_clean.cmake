file(REMOVE_RECURSE
  "CMakeFiles/test_lpm_fuzz.dir/test_lpm_fuzz.cpp.o"
  "CMakeFiles/test_lpm_fuzz.dir/test_lpm_fuzz.cpp.o.d"
  "test_lpm_fuzz"
  "test_lpm_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lpm_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
