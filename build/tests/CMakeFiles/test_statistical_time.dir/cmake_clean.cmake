file(REMOVE_RECURSE
  "CMakeFiles/test_statistical_time.dir/test_statistical_time.cpp.o"
  "CMakeFiles/test_statistical_time.dir/test_statistical_time.cpp.o.d"
  "test_statistical_time"
  "test_statistical_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statistical_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
