# Empty compiler generated dependencies file for test_statistical_time.
# This may be replaced when dependencies are built.
