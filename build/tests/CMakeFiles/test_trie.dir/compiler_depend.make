# Empty compiler generated dependencies file for test_trie.
# This may be replaced when dependencies are built.
