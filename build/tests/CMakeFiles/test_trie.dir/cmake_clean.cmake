file(REMOVE_RECURSE
  "CMakeFiles/test_trie.dir/test_trie.cpp.o"
  "CMakeFiles/test_trie.dir/test_trie.cpp.o.d"
  "test_trie"
  "test_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
