file(REMOVE_RECURSE
  "CMakeFiles/test_ipfix.dir/test_ipfix.cpp.o"
  "CMakeFiles/test_ipfix.dir/test_ipfix.cpp.o.d"
  "test_ipfix"
  "test_ipfix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipfix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
