# Empty compiler generated dependencies file for test_ipfix.
# This may be replaced when dependencies are built.
