file(REMOVE_RECURSE
  "CMakeFiles/test_lpm_table.dir/test_lpm_table.cpp.o"
  "CMakeFiles/test_lpm_table.dir/test_lpm_table.cpp.o.d"
  "test_lpm_table"
  "test_lpm_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lpm_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
