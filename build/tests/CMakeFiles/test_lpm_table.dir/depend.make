# Empty dependencies file for test_lpm_table.
# This may be replaced when dependencies are built.
