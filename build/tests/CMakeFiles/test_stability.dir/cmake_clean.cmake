file(REMOVE_RECURSE
  "CMakeFiles/test_stability.dir/test_stability.cpp.o"
  "CMakeFiles/test_stability.dir/test_stability.cpp.o.d"
  "test_stability"
  "test_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
