# Empty compiler generated dependencies file for test_stability.
# This may be replaced when dependencies are built.
