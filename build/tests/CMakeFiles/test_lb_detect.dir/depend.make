# Empty dependencies file for test_lb_detect.
# This may be replaced when dependencies are built.
