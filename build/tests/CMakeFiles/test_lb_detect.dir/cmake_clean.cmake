file(REMOVE_RECURSE
  "CMakeFiles/test_lb_detect.dir/test_lb_detect.cpp.o"
  "CMakeFiles/test_lb_detect.dir/test_lb_detect.cpp.o.d"
  "test_lb_detect"
  "test_lb_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lb_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
