file(REMOVE_RECURSE
  "CMakeFiles/test_bgp.dir/test_bgp.cpp.o"
  "CMakeFiles/test_bgp.dir/test_bgp.cpp.o.d"
  "test_bgp"
  "test_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
