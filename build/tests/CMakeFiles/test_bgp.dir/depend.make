# Empty dependencies file for test_bgp.
# This may be replaced when dependencies are built.
