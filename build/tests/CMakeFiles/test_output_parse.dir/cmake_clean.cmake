file(REMOVE_RECURSE
  "CMakeFiles/test_output_parse.dir/test_output_parse.cpp.o"
  "CMakeFiles/test_output_parse.dir/test_output_parse.cpp.o.d"
  "test_output_parse"
  "test_output_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_output_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
