# Empty compiler generated dependencies file for test_output_parse.
# This may be replaced when dependencies are built.
