# Empty dependencies file for test_text_io.
# This may be replaced when dependencies are built.
