file(REMOVE_RECURSE
  "CMakeFiles/test_text_io.dir/test_text_io.cpp.o"
  "CMakeFiles/test_text_io.dir/test_text_io.cpp.o.d"
  "test_text_io"
  "test_text_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_text_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
