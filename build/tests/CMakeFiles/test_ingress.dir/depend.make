# Empty dependencies file for test_ingress.
# This may be replaced when dependencies are built.
