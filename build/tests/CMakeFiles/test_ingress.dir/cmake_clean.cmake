file(REMOVE_RECURSE
  "CMakeFiles/test_ingress.dir/test_ingress.cpp.o"
  "CMakeFiles/test_ingress.dir/test_ingress.cpp.o.d"
  "test_ingress"
  "test_ingress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ingress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
