file(REMOVE_RECURSE
  "CMakeFiles/test_flow_codec.dir/test_flow_codec.cpp.o"
  "CMakeFiles/test_flow_codec.dir/test_flow_codec.cpp.o.d"
  "test_flow_codec"
  "test_flow_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flow_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
