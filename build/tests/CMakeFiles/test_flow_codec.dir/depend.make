# Empty dependencies file for test_flow_codec.
# This may be replaced when dependencies are built.
