file(REMOVE_RECURSE
  "CMakeFiles/test_lpm_trie.dir/test_lpm_trie.cpp.o"
  "CMakeFiles/test_lpm_trie.dir/test_lpm_trie.cpp.o.d"
  "test_lpm_trie"
  "test_lpm_trie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lpm_trie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
