
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_lpm_trie.cpp" "tests/CMakeFiles/test_lpm_trie.dir/test_lpm_trie.cpp.o" "gcc" "tests/CMakeFiles/test_lpm_trie.dir/test_lpm_trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/ipd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/collector/CMakeFiles/ipd_collector.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ipd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/ipd_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ipd_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/netflow/CMakeFiles/ipd_netflow.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/ipd_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ipd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ipd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
