# Empty dependencies file for test_lpm_trie.
# This may be replaced when dependencies are built.
